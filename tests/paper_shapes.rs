//! Paper-shape regression tests: the qualitative relationships from
//! DESIGN.md §4 that define a successful reproduction, at scales small
//! enough for CI. The bench binaries sweep the full ranges.

use dcn_bench::storage::{run_aio, run_diskmap, run_pread};
use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::kstack::KstackConfig;
use disk_crypt_net::mem::Fidelity;
use disk_crypt_net::simcore::Nanos;
use disk_crypt_net::store::Catalog;
use disk_crypt_net::workload::{run_scenario, FleetConfig, RunMetrics, Scenario, ServerKind};

fn run(server: ServerKind, n: usize, cacheable: bool, seed: u64) -> RunMetrics {
    let sc = Scenario {
        server,
        fleet: FleetConfig {
            n_clients: n,
            cacheable,
            hot_files: 128,
            verify: false,
            ..FleetConfig::default()
        },
        catalog: Catalog::paper(seed),
        warmup: Nanos::from_millis(350),
        duration: Nanos::from_millis(800),
        seed,
        data_loss: 0.0,
        faults: Default::default(),
    };
    run_scenario(&sc)
}

fn atlas(encrypted: bool) -> ServerKind {
    ServerKind::Atlas(AtlasConfig {
        encrypted,
        fidelity: Fidelity::Modeled,
        ..AtlasConfig::default()
    })
}

fn netflix(encrypted: bool) -> ServerKind {
    ServerKind::Kstack(KstackConfig {
        encrypted,
        fidelity: Fidelity::Modeled,
        ..KstackConfig::netflix()
    })
}

fn stock(encrypted: bool) -> ServerKind {
    ServerKind::Kstack(KstackConfig {
        encrypted,
        fidelity: Fidelity::Modeled,
        ..KstackConfig::stock()
    })
}

// ---------------------------------------------------------- Fig 6

#[test]
fn fig6_shape_throughput_saturates_latency_grows() {
    let horizon = Nanos::from_millis(150);
    let w1 = run_diskmap(1, 16 * 1024, 1, horizon, 42);
    let w128 = run_diskmap(1, 16 * 1024, 128, horizon, 42);
    let w512 = run_diskmap(1, 16 * 1024, 512, horizon, 42);
    // Saturation near the device limit by window 128, latency < 1 ms.
    assert!(w128.throughput_gbps > 20.0, "{}", w128.throughput_gbps);
    assert!(w128.mean_latency_us < 1000.0, "{}", w128.mean_latency_us);
    assert!(w1.throughput_gbps < w128.throughput_gbps * 0.2);
    // Past saturation latency grows ~linearly, throughput does not.
    assert!(w512.throughput_gbps < w128.throughput_gbps * 1.1);
    assert!(w512.mean_latency_us > w128.mean_latency_us * 2.5);
}

// ---------------------------------------------------------- Fig 8

#[test]
fn fig8_shape_diskmap_beats_aio_beats_pread_at_small_io() {
    let horizon = Nanos::from_millis(100);
    for size in [4096u64, 16 * 1024] {
        let d = run_diskmap(4, size, 128, horizon, 42);
        let a = run_aio(4, size, 128, horizon, 42);
        let p = run_pread(4, size, horizon, 42);
        assert!(
            d.throughput_gbps > 2.0 * a.throughput_gbps,
            "size {size}: diskmap {:.1} vs aio {:.1}",
            d.throughput_gbps,
            a.throughput_gbps
        );
        assert!(
            a.throughput_gbps > 2.0 * p.throughput_gbps,
            "size {size}: aio {:.1} vs pread {:.1}",
            a.throughput_gbps,
            p.throughput_gbps
        );
    }
}

#[test]
fn fig8_shape_aio_converges_to_diskmap_at_128k() {
    let horizon = Nanos::from_millis(100);
    let d = run_diskmap(4, 128 * 1024, 128, horizon, 42);
    let a = run_aio(4, 128 * 1024, 128, horizon, 42);
    assert!(
        a.throughput_gbps > 0.8 * d.throughput_gbps,
        "aio {:.1} vs diskmap {:.1}",
        a.throughput_gbps,
        d.throughput_gbps
    );
}

// ---------------------------------------------------------- Fig 9

#[test]
fn fig9_shape_diskmap_latency_left_of_aio() {
    let horizon = Nanos::from_millis(120);
    let d = run_diskmap(1, 512, 128, horizon, 42);
    let a = run_aio(1, 512, 128, horizon, 42);
    // The body of the distribution shifts right for aio (interrupt +
    // kevent visibility); deep tails are device-queue-dominated and
    // may cross within bucket noise.
    for q in [0.1, 0.25, 0.5] {
        assert!(
            d.latency.quantile(q) <= a.latency.quantile(q) + 2.6,
            "q{q}: diskmap {:.1}us vs aio {:.1}us",
            d.latency.quantile(q),
            a.latency.quantile(q)
        );
    }
    assert!(d.mean_latency_us < a.mean_latency_us + 3.0);
}

// --------------------------------------------------- macro behaviour

#[test]
fn atlas_is_insensitive_to_buffer_cache_ratio() {
    // Atlas has no buffer cache: cacheable and uncachable workloads
    // must perform alike (§4.1).
    let a0 = run(atlas(false), 300, false, 21);
    let a100 = run(atlas(false), 300, true, 21);
    let ratio = a0.net_gbps / a100.net_gbps.max(1e-9);
    assert!(
        (0.8..1.25).contains(&ratio),
        "0%BC {:.1} vs 100%BC {:.1}",
        a0.net_gbps,
        a100.net_gbps
    );
}

#[test]
fn netflix_beats_stock_on_uncachable_plaintext() {
    // Fig 1: async sendfile + VM fixes nearly double 0%BC throughput
    // (the effect binds once demand exceeds what blocking workers can
    // pump, so measure above the request-response knee).
    let n = run(netflix(false), 1200, false, 22);
    let s = run(stock(false), 1200, false, 22);
    assert!(
        n.net_gbps > 1.3 * s.net_gbps,
        "netflix {:.1} vs stock {:.1}",
        n.net_gbps,
        s.net_gbps
    );
}

#[test]
fn stock_tls_collapses_against_ktls() {
    // Fig 2 / §2.1.4: userspace TLS (two copies + two syscalls per
    // record) falls far behind in-kernel TLS.
    let n = run(netflix(true), 1200, false, 23);
    let s = run(stock(true), 1200, false, 23);
    assert!(
        n.net_gbps > 1.5 * s.net_gbps,
        "netflix-ktls {:.1} vs stock-tls {:.1}",
        n.net_gbps,
        s.net_gbps
    );
}

#[test]
fn atlas_memory_ratio_beats_netflix_encrypted() {
    // Fig 13e: Atlas ≈1.5× read:net, Netflix ≈2.6×. At any load the
    // ordering must hold with clear separation.
    let a = run(atlas(true), 600, false, 24);
    let n = run(netflix(true), 600, false, 24);
    assert!(
        a.read_net_ratio < n.read_net_ratio,
        "atlas ratio {:.2} vs netflix {:.2}",
        a.read_net_ratio,
        n.read_net_ratio
    );
}

#[test]
fn atlas_light_load_is_llc_resident() {
    // §4.1: at 2 000 connections the paper sees memory reads at ~65%
    // of network throughput thanks to DDIO; at a few hundred
    // connections the pipeline fits the LLC almost entirely.
    let a = run(atlas(false), 200, false, 25);
    assert!(a.net_gbps > 5.0, "sanity: {:.1}", a.net_gbps);
    assert!(
        a.read_net_ratio < 0.65,
        "light-load Atlas should be mostly LLC-resident: ratio {:.2}",
        a.read_net_ratio
    );
}

#[test]
fn runs_are_deterministic() {
    let m1 = run(atlas(false), 150, false, 77);
    let m2 = run(atlas(false), 150, false, 77);
    assert_eq!(m1.responses, m2.responses);
    assert_eq!(m1.total_body_bytes, m2.total_body_bytes);
    assert!((m1.net_gbps - m2.net_gbps).abs() < 1e-9);
    assert!((m1.mem_read_gbps - m2.mem_read_gbps).abs() < 1e-9);
}
