//! Randomized tests over the core data structures and protocol
//! invariants. Cases are generated from a seeded [`SimRng`] so every
//! run explores the same (large) input set deterministically — the
//! container builds offline, so this replaces an external
//! property-testing framework with the simulator's own PRNG.

use disk_crypt_net::crypto::{derive_nonce, AesGcm128, RecordCipher, RECORD_PAYLOAD_MAX};
use disk_crypt_net::mem::{
    CostParams, HostMem, Llc, LlcConfig, MemSystem, PhysAddr, PhysRegion, CHUNK_SIZE,
};
use disk_crypt_net::netdev::{SgChunk, SgList};
use disk_crypt_net::packet::{Ipv4Addr, Ipv4Repr, SeqNumber, TcpFlags, TcpRepr};
use disk_crypt_net::simcore::{prf_bytes, Histogram, Nanos, SimRng};

const CASES: u64 = 128;

fn rand_bytes(rng: &mut SimRng, lo: u64, hi: u64) -> Vec<u8> {
    let n = rng.gen_range(lo, hi) as usize;
    let mut v = vec![0u8; n];
    prf_bytes(rng.next_u64(), 0, &mut v);
    v
}

// ------------------------------------------------------ scatter-gather

/// split_front at any point conserves both length and content.
#[test]
fn sg_split_conserves_bytes() {
    let mut rng = SimRng::new(0x5611);
    for case in 0..CASES {
        let mut host = HostMem::new();
        let mut sg = SgList::empty();
        let n_chunks = rng.gen_range(0, 8) as usize;
        for i in 0..n_chunks {
            if rng.chance(0.5) {
                sg.push_bytes(rand_bytes(&mut rng, 0, 64));
            } else {
                let page = rng.gen_range(0, 32);
                let len = rng.gen_range(1, 4096);
                let region =
                    PhysRegion::new(PhysAddr((1000 + 100 * i as u64 + page) * CHUNK_SIZE), len);
                host.fill_region(region, |buf| prf_bytes(i as u64, 0, buf));
                sg.push_region(region);
            }
        }
        let total = sg.len();
        let whole = sg.materialize(&host);
        let at = (total as f64 * rng.next_f64()) as u64;
        let mut rest = sg;
        let front = rest.split_front(at);
        assert_eq!(front.len(), at, "case {case}");
        assert_eq!(rest.len(), total - at, "case {case}");
        let mut rejoined = front.materialize(&host);
        rejoined.extend(rest.materialize(&host));
        assert_eq!(rejoined, whole, "case {case}");
    }
}

// -------------------------------------------------------- wire formats

/// Any TcpRepr emits to bytes and parses back identically, with a
/// checksum that verifies over arbitrary payloads.
#[test]
fn tcp_header_roundtrip() {
    let mut rng = SimRng::new(0x7C9);
    for case in 0..CASES {
        let repr = TcpRepr {
            src_port: rng.next_u64() as u16,
            dst_port: rng.next_u64() as u16,
            seq: SeqNumber(rng.next_u64() as u32),
            ack: SeqNumber(rng.next_u64() as u32),
            flags: TcpFlags(rng.gen_range(0, 32) as u8),
            window: rng.next_u64() as u16,
            mss: rng.chance(0.5).then(|| rng.gen_range(536, 9000) as u16),
            wscale: rng.chance(0.5).then(|| rng.gen_range(0, 15) as u8),
        };
        let payload = rand_bytes(&mut rng, 0, 256);
        let ip = Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 1, 2, 3),
            protocol: disk_crypt_net::packet::IpProtocol::Tcp,
            payload_len: (repr.header_len() + payload.len()) as u16,
            ttl: 64,
        };
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf, ip.pseudo_header_sum(), &payload);
        let mut whole = buf.clone();
        whole.extend_from_slice(&payload);
        let (parsed, off) = TcpRepr::parse(&whole, Some(ip.pseudo_header_sum())).unwrap();
        assert_eq!(parsed, repr, "case {case}");
        assert_eq!(off, repr.header_len(), "case {case}");
    }
}

/// Flipping any single bit of a TCP segment breaks its checksum.
#[test]
fn tcp_checksum_detects_any_bitflip() {
    let mut rng = SimRng::new(0xB17F);
    for case in 0..CASES {
        let repr = TcpRepr {
            src_port: 80,
            dst_port: 9999,
            seq: SeqNumber(1),
            ack: SeqNumber(2),
            flags: TcpFlags::ACK,
            window: 100,
            mss: None,
            wscale: None,
        };
        let payload = rand_bytes(&mut rng, 1, 128);
        let ps = 0xBEEFu32;
        let mut whole = vec![0u8; repr.header_len()];
        repr.emit(&mut whole, ps, &payload);
        whole.extend_from_slice(&payload);
        let idx = rng.gen_range(0, whole.len() as u64) as usize;
        let bit = rng.gen_range(0, 8) as u8;
        whole[idx] ^= 1 << bit;
        // The corruption must never parse cleanly as the SAME header:
        // either the parse fails (checksum/structure) or the repr
        // changed (the flip hit a header field, breaking equality).
        let same_header_survived = matches!(
            TcpRepr::parse(&whole, Some(ps)),
            Ok((parsed, off)) if parsed == repr && off == repr.header_len()
        );
        assert!(!same_header_survived, "case {case} idx {idx} bit {bit}");
    }
}

// -------------------------------------------------------------- crypto

/// Seal/open round-trips for arbitrary payloads, keys, nonces; any
/// tamper of ciphertext is rejected.
#[test]
fn gcm_roundtrip_and_tamper() {
    let mut rng = SimRng::new(0x6C6);
    for case in 0..CASES {
        let mut key = [0u8; 16];
        prf_bytes(rng.next_u64(), 0, &mut key);
        let mut nonce = [0u8; 12];
        prf_bytes(rng.next_u64(), 0, &mut nonce);
        let aad = rand_bytes(&mut rng, 0, 64);
        let mut data = rand_bytes(&mut rng, 0, 512);
        let gcm = AesGcm128::new(&key);
        let original = data.clone();
        let tag = gcm.seal_in_place(&nonce, &aad, &mut data);
        if !original.is_empty() {
            assert_ne!(
                &data, &original,
                "case {case}: ciphertext differs from plaintext"
            );
            let mut tampered = data.clone();
            let idx = rng.gen_range(0, tampered.len() as u64) as usize;
            tampered[idx] ^= 0x01;
            assert!(
                !gcm.open_in_place(&nonce, &aad, &mut tampered, &tag),
                "case {case}: tamper must be rejected"
            );
        }
        assert!(
            gcm.open_in_place(&nonce, &aad, &mut data, &tag),
            "case {case}"
        );
        assert_eq!(data, original, "case {case}");
    }
}

/// Record re-encryption at the same stream offset is bit-identical
/// (the stateless-retransmission property §3.2 rests on).
#[test]
fn record_reencryption_deterministic() {
    let mut rng = SimRng::new(0xD7);
    for case in 0..CASES {
        let mut key = [0u8; 16];
        prf_bytes(rng.next_u64(), 0, &mut key);
        let salt = rng.next_u64() as u32;
        let record_idx = rng.gen_range(0, 1_000_000);
        let data = rand_bytes(&mut rng, 1, 256);
        let rc = RecordCipher::new(&key, salt);
        let off = record_idx * RECORD_PAYLOAD_MAX as u64;
        let mut a = data.clone();
        let mut b = data;
        let ta = rc.seal_record(off, &mut a);
        let tb = rc.seal_record(off, &mut b);
        assert_eq!(a, b, "case {case}");
        assert_eq!(ta, tb, "case {case}");
    }
}

/// Nonce discipline of the stateless-retransmission design: every
/// record of a connection gets a distinct GCM nonce (offset-derived,
/// so no counter state can slip), any byte offset WITHIN a record
/// maps to that record's nonce, and a re-fetch retransmission at the
/// same stream offset reuses the identical nonce — reusing a nonce
/// across different plaintexts would break GCM, while deriving a
/// fresh one on retransmit would desync the client's keystream.
#[test]
fn gcm_nonces_unique_across_records_identical_on_refetch() {
    let mut rng = SimRng::new(0x4E4F);
    for case in 0..CASES {
        let salt = rng.next_u64() as u32;
        let n_records = rng.gen_range(2, 400);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n_records {
            let off = i * RECORD_PAYLOAD_MAX as u64;
            let nonce = derive_nonce(salt, off);
            assert!(
                seen.insert(nonce),
                "case {case}: record {i} repeats an earlier nonce"
            );
            // Any offset inside the record derives the same nonce.
            let within = off + rng.gen_range(0, RECORD_PAYLOAD_MAX as u64);
            assert_eq!(derive_nonce(salt, within), nonce, "case {case}");
        }
        // Original transmission vs re-fetch retransmission: same
        // stream offset, same key → identical nonce, ciphertext, tag.
        let mut key = [0u8; 16];
        prf_bytes(rng.next_u64(), 0, &mut key);
        let rc = RecordCipher::new(&key, salt);
        let record = rng.gen_range(0, n_records);
        let off = record * RECORD_PAYLOAD_MAX as u64;
        let plain = rand_bytes(&mut rng, 1, 512);
        let mut original = plain.clone();
        let mut refetch = plain;
        let tag_orig = rc.seal_record(off, &mut original);
        let tag_retx = rc.seal_record(off, &mut refetch);
        assert_eq!(original, refetch, "case {case}: ciphertext must match");
        assert_eq!(tag_orig, tag_retx, "case {case}: tag must match");
    }
}

// ----------------------------------------------------------------- PRF

/// Content PRF is positional: any sub-range equals the same slice of
/// the whole stream.
#[test]
fn prf_subrange_consistency() {
    let mut rng = SimRng::new(0x9F);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let start = rng.gen_range(0, 500);
        let len = rng.gen_range(1, 200) as usize;
        let mut whole = vec![0u8; 700];
        prf_bytes(seed, 0, &mut whole);
        let mut part = vec![0u8; len];
        prf_bytes(seed, start, &mut part);
        assert_eq!(
            &whole[start as usize..start as usize + len],
            &part[..],
            "case {case}"
        );
    }
}

// ----------------------------------------------------------------- LLC

/// LLC residency never exceeds capacity, and the DDIO population never
/// exceeds its cap, under arbitrary op sequences.
#[test]
fn llc_capacity_invariants() {
    let mut rng = SimRng::new(0x11C);
    for case in 0..CASES {
        let mut llc = Llc::new(LlcConfig {
            capacity_chunks: 16,
            ddio_chunks: 4,
        });
        let ops = rng.gen_range(1, 300);
        for _ in 0..ops {
            let chunk = rng.gen_range(0, 64);
            match rng.gen_range(0, 5) {
                0 => {
                    llc.insert_dma(chunk);
                }
                1 => {
                    llc.insert_cpu(chunk, false);
                }
                2 => {
                    llc.insert_cpu(chunk, true);
                }
                3 => {
                    llc.touch(chunk, false);
                }
                _ => {
                    llc.invalidate(chunk);
                }
            }
            assert!(llc.resident() <= 16, "case {case}: capacity exceeded");
            assert!(llc.dma_resident() <= 4, "case {case}: DDIO cap exceeded");
            assert!(llc.dma_resident() <= llc.resident(), "case {case}");
        }
    }
}

/// DRAM traffic conservation: bytes read via CPU misses equal the
/// counter total; discarding never writes back.
#[test]
fn mem_counters_track_misses() {
    let mut rng = SimRng::new(0x77);
    for case in 0..CASES {
        let mut mem = MemSystem::new(
            LlcConfig {
                capacity_chunks: 32,
                ddio_chunks: 8,
            },
            CostParams::default(),
            Nanos::from_millis(1),
        );
        let mut expect_rd = 0u64;
        let n = rng.gen_range(1, 100);
        for _ in 0..n {
            let p = rng.gen_range(0, 512);
            let r = PhysRegion::new(PhysAddr(p * CHUNK_SIZE), CHUNK_SIZE);
            let out = mem.cpu_read(Nanos::ZERO, r);
            expect_rd += out.dram_read_bytes;
        }
        assert_eq!(
            mem.counters.totals().dram_read_bytes,
            expect_rd,
            "case {case}"
        );
    }
}

// ----------------------------------------------------------- statistics

/// Histogram quantiles are monotone in q and bounded by the range.
#[test]
fn histogram_quantiles_monotone() {
    let mut rng = SimRng::new(0x415);
    for case in 0..CASES {
        let mut h = Histogram::new(0.0, 100.0, 64);
        let n = rng.gen_range(1, 200);
        for _ in 0..n {
            h.add(rng.next_f64() * 100.0);
        }
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "case {case}: quantiles must be monotone");
            assert!((0.0..=100.0).contains(&v), "case {case}");
            last = v;
        }
    }
}

#[test]
fn sg_chunks_are_well_formed() {
    // Anchor: an empty SgList materializes to nothing.
    let host = HostMem::new();
    assert!(SgList::empty().materialize(&host).is_empty());
    let sg = SgList(vec![SgChunk::Bytes(vec![1, 2, 3])]);
    assert_eq!(sg.materialize(&host), vec![1, 2, 3]);
}

// ------------------------------------------------------------- catalog

/// Catalog placement invariants, over random catalog shapes: every
/// extent is LBA-aligned, extents on one disk never overlap, every
/// extent fits inside the NVMe namespace, and the round-robin stripe
/// spreads files evenly (per-disk counts differ by at most one).
#[test]
fn catalog_placement_invariants() {
    use disk_crypt_net::nvme::{NvmeConfig, LBA_SIZE};
    use disk_crypt_net::store::{Catalog, FileId};

    let ns_bytes = NvmeConfig::default().ns_lbas * LBA_SIZE;
    let mut rng = SimRng::new(0xCA7A);
    for case in 0..CASES {
        let n_files = rng.gen_range(1, 5_000);
        let file_size = rng.gen_range(1, 2 * 1024 * 1024);
        let n_disks = rng.gen_range(1, 9) as usize;
        let c = Catalog::new(n_files, file_size, n_disks, rng.next_u64());
        let extent_bytes = file_size.div_ceil(LBA_SIZE) * LBA_SIZE;

        // Per-disk extents as (start, end) on the namespace, plus the
        // stripe census.
        let mut per_disk: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_disks];
        for f in 0..n_files {
            let loc = c.locate(FileId(f), 0);
            assert!(loc.disk < n_disks, "case {case}");
            assert_eq!(
                loc.dev_offset % LBA_SIZE,
                0,
                "case {case}: unaligned extent"
            );
            assert!(
                loc.dev_offset + extent_bytes <= ns_bytes,
                "case {case}: file {f} spills past the namespace"
            );
            // Every byte of the file lands inside that extent, on the
            // same disk (spot-check a random interior offset).
            let off = rng.gen_range(0, file_size);
            let mid = c.locate(FileId(f), off);
            assert_eq!(mid.disk, loc.disk, "case {case}");
            assert!(
                mid.dev_offset >= loc.dev_offset
                    && mid.dev_offset + LBA_SIZE <= loc.dev_offset + extent_bytes,
                "case {case}: offset {off} escapes the extent"
            );
            per_disk[loc.disk].push((loc.dev_offset, loc.dev_offset + extent_bytes));
        }

        // No overlap between extents sharing a disk.
        for (disk, extents) in per_disk.iter_mut().enumerate() {
            extents.sort_unstable();
            for w in extents.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "case {case}: overlapping extents on disk {disk}: {w:?}"
                );
            }
        }

        // Round-robin balance: max and min per-disk file counts are
        // at most one apart.
        let counts: Vec<usize> = per_disk.iter().map(Vec::len).collect();
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(hi - lo <= 1, "case {case}: uneven stripe {counts:?}");
    }
}
