//! Property-based tests over the core data structures and protocol
//! invariants (proptest).

use disk_crypt_net::crypto::{AesGcm128, RecordCipher, RECORD_PAYLOAD_MAX};
use disk_crypt_net::mem::{CostParams, HostMem, Llc, LlcConfig, MemSystem, PhysAddr, PhysRegion, CHUNK_SIZE};
use disk_crypt_net::netdev::{SgChunk, SgList};
use disk_crypt_net::packet::{Ipv4Addr, Ipv4Repr, SeqNumber, TcpFlags, TcpRepr};
use disk_crypt_net::simcore::{prf_bytes, Histogram, Nanos};
use proptest::prelude::*;

proptest! {
    // ------------------------------------------------- scatter-gather

    /// split_front at any point conserves both length and content.
    #[test]
    fn sg_split_conserves_bytes(
        chunks in prop::collection::vec(
            prop_oneof![
                prop::collection::vec(any::<u8>(), 0..64).prop_map(SgChunkKind::Bytes),
                (0u64..32, 1u64..4096).prop_map(|(page, len)| SgChunkKind::Region(page, len)),
            ],
            0..8,
        ),
        split_frac in 0.0f64..=1.0,
    ) {
        let mut host = HostMem::new();
        let mut sg = SgList::empty();
        for (i, c) in chunks.iter().enumerate() {
            match c {
                SgChunkKind::Bytes(b) => sg.push_bytes(b.clone()),
                SgChunkKind::Region(page, len) => {
                    let region = PhysRegion::new(PhysAddr((1000 + 100 * i as u64 + page) * CHUNK_SIZE), *len);
                    host.fill_region(region, |buf| {
                        prf_bytes(i as u64, 0, buf);
                    });
                    sg.push_region(region);
                }
            }
        }
        let total = sg.len();
        let whole = sg.materialize(&host);
        let at = (total as f64 * split_frac) as u64;
        let mut rest = sg;
        let front = rest.split_front(at);
        prop_assert_eq!(front.len(), at);
        prop_assert_eq!(rest.len(), total - at);
        let mut rejoined = front.materialize(&host);
        rejoined.extend(rest.materialize(&host));
        prop_assert_eq!(rejoined, whole);
    }

    // ----------------------------------------------------- wire formats

    /// Any TcpRepr emits to bytes and parses back identically, with a
    /// checksum that verifies over arbitrary payloads.
    #[test]
    fn tcp_header_roundtrip(
        src in any::<u16>(),
        dst in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in 0u8..32,
        window in any::<u16>(),
        mss in prop::option::of(536u16..9000),
        wscale in prop::option::of(0u8..15),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let repr = TcpRepr {
            src_port: src,
            dst_port: dst,
            seq: SeqNumber(seq),
            ack: SeqNumber(ack),
            flags: TcpFlags(flags),
            window,
            mss,
            wscale,
        };
        let ip = Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 1, 2, 3),
            protocol: disk_crypt_net::packet::IpProtocol::Tcp,
            payload_len: (repr.header_len() + payload.len()) as u16,
            ttl: 64,
        };
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf, ip.pseudo_header_sum(), &payload);
        let mut whole = buf.clone();
        whole.extend_from_slice(&payload);
        let (parsed, off) = TcpRepr::parse(&whole, Some(ip.pseudo_header_sum())).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(off, repr.header_len());
    }

    /// Flipping any single bit of a TCP segment breaks its checksum.
    #[test]
    fn tcp_checksum_detects_any_bitflip(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        flip in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let repr = TcpRepr {
            src_port: 80,
            dst_port: 9999,
            seq: SeqNumber(1),
            ack: SeqNumber(2),
            flags: TcpFlags::ACK,
            window: 100,
            mss: None,
            wscale: None,
        };
        let ps = 0xBEEFu32;
        let mut whole = vec![0u8; repr.header_len()];
        repr.emit(&mut whole, ps, &payload);
        whole.extend_from_slice(&payload);
        let idx = flip.index(whole.len());
        whole[idx] ^= 1 << bit;
        // Either the parse fails outright (header structure) or the
        // checksum rejects it; it must never parse cleanly as the
        // SAME header with intact payload.
        // The corruption must never parse cleanly as the SAME header:
        // either the parse fails (checksum/structure) or the repr
        // changed (the flip hit a header field, breaking equality).
        let same_header_survived = matches!(
            TcpRepr::parse(&whole, Some(ps)),
            Ok((parsed, off)) if parsed == repr && off == repr.header_len()
        );
        prop_assert!(!same_header_survived);
    }

    // --------------------------------------------------------- crypto

    /// Seal/open round-trips for arbitrary payloads, keys, nonces;
    /// any tamper of ciphertext or tag is rejected.
    #[test]
    fn gcm_roundtrip_and_tamper(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 12]>(),
        mut data in prop::collection::vec(any::<u8>(), 0..512),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        tamper in any::<proptest::sample::Index>(),
    ) {
        let gcm = AesGcm128::new(&key);
        let original = data.clone();
        let tag = gcm.seal_in_place(&nonce, &aad, &mut data);
        if !original.is_empty() {
            prop_assert_ne!(&data, &original, "ciphertext differs from plaintext");
            // Tamper one ciphertext byte: open must fail.
            let mut tampered = data.clone();
            let idx = tamper.index(tampered.len());
            tampered[idx] ^= 0x01;
            prop_assert!(!gcm.open_in_place(&nonce, &aad, &mut tampered, &tag));
        }
        prop_assert!(gcm.open_in_place(&nonce, &aad, &mut data, &tag));
        prop_assert_eq!(data, original);
    }

    /// Record re-encryption at the same stream offset is bit-identical
    /// (the stateless-retransmission property §3.2 rests on).
    #[test]
    fn record_reencryption_deterministic(
        key in any::<[u8; 16]>(),
        salt in any::<u32>(),
        record_idx in 0u64..1_000_000,
        data in prop::collection::vec(any::<u8>(), 1..256),
    ) {
        let rc = RecordCipher::new(&key, salt);
        let off = record_idx * RECORD_PAYLOAD_MAX as u64;
        let mut a = data.clone();
        let mut b = data.clone();
        let ta = rc.seal_record(off, &mut a);
        let tb = rc.seal_record(off, &mut b);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ta, tb);
    }

    // ------------------------------------------------------------- PRF

    /// Content PRF is positional: any sub-range equals the same slice
    /// of the whole stream.
    #[test]
    fn prf_subrange_consistency(seed in any::<u64>(), start in 0u64..500, len in 1usize..200) {
        let mut whole = vec![0u8; 700];
        prf_bytes(seed, 0, &mut whole);
        let mut part = vec![0u8; len];
        prf_bytes(seed, start, &mut part);
        prop_assert_eq!(&whole[start as usize..start as usize + len], &part[..]);
    }

    // ------------------------------------------------------------- LLC

    /// LLC residency never exceeds capacity, and the DDIO population
    /// never exceeds its cap, under arbitrary op sequences.
    #[test]
    fn llc_capacity_invariants(ops in prop::collection::vec((0u8..5, 0u64..64), 1..300)) {
        let mut llc = Llc::new(LlcConfig { capacity_chunks: 16, ddio_chunks: 4 });
        for (op, chunk) in ops {
            match op {
                0 => { llc.insert_dma(chunk); }
                1 => { llc.insert_cpu(chunk, false); }
                2 => { llc.insert_cpu(chunk, true); }
                3 => { llc.touch(chunk, false); }
                _ => { llc.invalidate(chunk); }
            }
            prop_assert!(llc.resident() <= 16, "capacity exceeded");
            prop_assert!(llc.dma_resident() <= 4, "DDIO cap exceeded");
            prop_assert!(llc.dma_resident() <= llc.resident());
        }
    }

    /// DRAM traffic conservation: bytes read via CPU misses equal the
    /// counter total; discarding never writes back.
    #[test]
    fn mem_counters_track_misses(pages in prop::collection::vec(0u64..512, 1..100)) {
        let mut mem = MemSystem::new(
            LlcConfig { capacity_chunks: 32, ddio_chunks: 8 },
            CostParams::default(),
            Nanos::from_millis(1),
        );
        let mut expect_rd = 0u64;
        for p in pages {
            let r = PhysRegion::new(PhysAddr(p * CHUNK_SIZE), CHUNK_SIZE);
            let out = mem.cpu_read(Nanos::ZERO, r);
            expect_rd += out.dram_read_bytes;
        }
        prop_assert_eq!(mem.counters.total_dram_rd, expect_rd);
    }

    // ------------------------------------------------------ statistics

    /// Histogram quantiles are monotone in q and bounded by the range.
    #[test]
    fn histogram_quantiles_monotone(samples in prop::collection::vec(0.0f64..100.0, 1..200)) {
        let mut h = Histogram::new(0.0, 100.0, 64);
        for s in &samples {
            h.add(*s);
        }
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantiles must be monotone");
            prop_assert!((0.0..=100.0).contains(&v));
            last = v;
        }
    }
}

/// Local helper enum for the SgList strategy.
#[derive(Clone, Debug)]
enum SgChunkKind {
    Bytes(Vec<u8>),
    Region(u64, u64),
}

#[test]
fn sg_chunks_are_well_formed() {
    // Anchor: an empty SgList materializes to nothing.
    let host = HostMem::new();
    assert!(SgList::empty().materialize(&host).is_empty());
    let sg = SgList(vec![SgChunk::Bytes(vec![1, 2, 3])]);
    assert_eq!(sg.materialize(&host), vec![1, 2, 3]);
}
