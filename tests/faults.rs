//! Seeded fault-injection regression matrix.
//!
//! Every scenario here is a pure function of its seed: the fault
//! schedule (which frames drop, which reads error, which syncs
//! reject) replays bit-identically, so a failure reproduces exactly.
//! The matrix crosses loss process {uniform, Gilbert–Elliott bursty}
//! × loss rate {0.1%, 1%} × crypto {plaintext, TLS} and checks the
//! three invariants the paper's design owes under faults: the run
//! completes, every delivered byte is correct, and no DMA buffer
//! leaks through any error path.

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::faults::{FaultConfig, LossModel};
use disk_crypt_net::simcore::Nanos;
use disk_crypt_net::workload::{run_scenario, RunMetrics, Scenario, ServerKind};

fn atlas(encrypted: bool) -> ServerKind {
    ServerKind::Atlas(AtlasConfig {
        encrypted,
        ..AtlasConfig::default()
    })
}

fn run_with(server: ServerKind, faults: FaultConfig, seed: u64) -> RunMetrics {
    let mut sc = Scenario::smoke(server, 12, seed);
    sc.duration = Nanos::from_millis(1000);
    sc.warmup = Nanos::from_millis(300);
    sc.faults = faults;
    run_scenario(&sc)
}

#[test]
fn loss_matrix_completes_correctly_and_degrades_monotonically() {
    for encrypted in [false, true] {
        for bursty in [false, true] {
            let mut goodputs = Vec::new();
            for rate in [0.0, 0.001, 0.01] {
                let mut faults = FaultConfig::default();
                if rate > 0.0 {
                    faults.net.loss = if bursty {
                        LossModel::gilbert_elliott_for(rate)
                    } else {
                        LossModel::Uniform(rate)
                    };
                }
                let m = run_with(atlas(encrypted), faults, 41);
                eprintln!(
                    "enc={encrypted} bursty={bursty} rate={rate}: gbps={:.3} resp={} \
                     dropped={} refetch={} vf={} leaked={}",
                    m.net_gbps,
                    m.responses,
                    m.faults.net_dropped,
                    m.retransmit_fetches,
                    m.verify_failures,
                    m.leaked_buffers
                );
                // The run completes and every client byte stream is
                // byte-perfect, whatever the loss process did.
                assert!(m.responses > 0, "run must make progress");
                assert_eq!(m.verify_failures, 0, "delivered bytes must be correct");
                assert!(m.verified_bytes > 0);
                assert_eq!(m.leaked_buffers, 0, "no error path may leak a buffer");
                if rate > 0.0 {
                    assert!(m.faults.net_dropped > 0, "loss model must actually fire");
                    assert!(m.retransmit_fetches > 0, "recovery re-fetches from disk");
                }
                goodputs.push(m.net_gbps);
            }
            // Goodput degrades monotonically with the loss rate.
            assert!(
                goodputs[0] > goodputs[1] && goodputs[1] > goodputs[2],
                "goodput must fall as loss rises (enc={encrypted} bursty={bursty}): {goodputs:?}"
            );
        }
    }
}

#[test]
fn acceptance_bursty_loss_with_disk_errors_tls() {
    // The issue's acceptance scenario: 1% bursty link loss plus 0.1%
    // NVMe unrecoverable-read-error rate against the TLS Atlas server.
    let m = run_with(atlas(true), FaultConfig::bursty_with_disk_errors(), 97);
    eprintln!("{m:?}");
    assert!(m.responses > 0, "scenario completes");
    assert_eq!(m.verify_failures, 0, "client byte streams correct");
    assert!(m.verified_bytes > 0);
    assert_eq!(m.leaked_buffers, 0, "zero leaked buffers");
    // Both fault classes fired and both recovery paths ran, visible
    // in the unified registry's counters.
    assert!(m.faults.net_dropped > 0, "link loss fired");
    assert!(m.faults.nvme_read_errors > 0, "device errors fired");
    assert!(
        m.retransmit_fetches > 0,
        "loss recovery re-fetched from disk"
    );
    assert!(
        m.faults.fetch_retries > 0 || m.faults.rto_fired > 0,
        "device-error recovery ran (retry or RTO re-drive)"
    );
}

#[test]
fn nvme_error_recovery_is_invisible_to_clients() {
    // Device errors alone (no link faults): bounded retry-with-backoff
    // absorbs every failed read; clients see full-rate correct bytes.
    let mut faults = FaultConfig::default();
    faults.nvme.read_error_p = 0.01;
    let m = run_with(atlas(true), faults, 43);
    eprintln!("{m:?}");
    assert!(m.faults.nvme_read_errors > 0, "errors must fire at 1%");
    assert!(m.faults.fetch_retries > 0, "failed fresh fetches retry");
    assert_eq!(m.verify_failures, 0);
    assert!(m.responses > 0);
    assert_eq!(
        m.leaked_buffers, 0,
        "failed reads must return their buffers"
    );
    assert_eq!(m.faults.conns_aborted, 0, "1% errors never exhaust retries");
}

#[test]
fn latency_spikes_slow_but_do_not_corrupt() {
    let mut faults = FaultConfig::default();
    faults.nvme.latency_spike_p = 0.02;
    let m = run_with(atlas(false), faults, 47);
    eprintln!("{m:?}");
    assert!(m.faults.nvme_latency_spikes > 0);
    assert_eq!(m.verify_failures, 0);
    assert!(m.responses > 0);
    assert_eq!(m.leaked_buffers, 0);
}

#[test]
fn sq_backpressure_resubmits_staged_commands() {
    // Injected QueueFull on 5% of sqsync calls: staged commands must
    // survive and resubmit (never vanish, never double-submit — either
    // would show up as a verify failure or a stall).
    let mut faults = FaultConfig::default();
    faults.nvme.sq_reject_p = 0.05;
    let m = run_with(atlas(true), faults, 53);
    eprintln!("{m:?}");
    assert!(m.faults.sq_rejects > 0, "rejects must fire at 5%");
    assert_eq!(m.verify_failures, 0);
    assert!(m.responses > 0);
    assert_eq!(m.leaked_buffers, 0);
}

#[test]
fn client_stalls_defer_but_never_lose_bytes() {
    let mut faults = FaultConfig::default();
    faults.client.stall_p = 0.02;
    faults.client.stall = Nanos::from_micros(800);
    let m = run_with(atlas(false), faults, 59);
    eprintln!("{m:?}");
    assert!(m.faults.client_stalls > 0, "stalls must fire at 2%");
    assert_eq!(
        m.verify_failures, 0,
        "deferred delivery is still in-order TCP"
    );
    assert!(m.responses > 0);
    assert_eq!(m.leaked_buffers, 0);
}

#[test]
fn duplication_and_corruption_are_absorbed() {
    // Duplicated frames are discarded by TCP sequence logic; corrupt
    // frames die at the FCS (corrupt bytes must NEVER reach a client,
    // which parses without checksums).
    let mut faults = FaultConfig::default();
    faults.net.dup_p = 0.01;
    faults.net.corrupt_p = 0.005;
    let m = run_with(atlas(true), faults, 61);
    eprintln!("{m:?}");
    assert!(m.faults.net_duplicated > 0);
    assert!(m.faults.net_corrupt_dropped > 0);
    assert_eq!(
        m.verify_failures, 0,
        "duplicates/corruption must not corrupt streams"
    );
    assert!(m.responses > 0);
    assert_eq!(m.leaked_buffers, 0);
}

#[test]
fn bypassed_fcs_delivers_corruption_and_the_verifier_catches_it() {
    // Negative control for the whole verification apparatus: disable
    // the NIC's FCS so corrupt frames are DELIVERED instead of
    // dropped, and demand the StreamVerifier actually flags the
    // flipped bytes. If this test ever passes with zero failures the
    // oracle has gone blind and every "verify_failures == 0"
    // assertion in this file is vacuous.
    let mut faults = FaultConfig::default();
    faults.net.corrupt_p = 0.02;
    faults.net.fcs_check = false;
    let m = run_with(atlas(false), faults, 67);
    eprintln!("{m:?}");
    assert!(
        m.faults.net_corrupt_delivered > 0,
        "bypassed FCS must deliver corrupt frames"
    );
    assert_eq!(m.faults.net_corrupt_dropped, 0, "nothing drops at the FCS");
    assert!(
        m.verify_failures > 0,
        "verifier must flag delivered corruption: {m:?}"
    );
    // Detection is not immunity: the run still makes progress and the
    // server-side accounting stays clean.
    assert!(m.responses > 0);
    assert_eq!(m.leaked_buffers, 0);
}

#[test]
fn same_seed_same_faults_same_run() {
    // The whole point of seeded injection: an identical config
    // replays to identical metrics, fault counters included.
    let a = run_with(atlas(true), FaultConfig::bursty_with_disk_errors(), 71);
    let b = run_with(atlas(true), FaultConfig::bursty_with_disk_errors(), 71);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    // And a different seed draws a different schedule.
    let c = run_with(atlas(true), FaultConfig::bursty_with_disk_errors(), 72);
    assert_ne!(
        (a.faults.net_dropped, a.faults.nvme_read_errors),
        (c.faults.net_dropped, c.faults.nvme_read_errors),
        "different seeds should differ somewhere in the schedule"
    );
}
