//! Tiered-catalog gate: million-object catalog split across a hot
//! NVMe tier and a simulated cold object store.
//!
//! The invariants the tier engine owes:
//!
//! * the Zipf workload is a pure function of its seed (and its rank
//!   permutation matches the tier's seeded hot set, so "popular"
//!   means the same objects on both sides);
//! * at the paper-adjacent operating point — 1M objects, Zipf(0.9) —
//!   the hot tier absorbs ≥90% of requests on Atlas, the kstack
//!   baselines, and the cluster;
//! * cold-miss bytes are bit-exact end to end (full-fidelity stream
//!   verification against the catalog oracle, which never saw a
//!   disk placement for cold objects);
//! * no DMA buffer leaks through any cold-miss path;
//! * a faulted tiered run replays to byte-identical metrics.

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::cluster::{run_cluster, ClusterConfig};
use disk_crypt_net::faults::FaultConfig;
use disk_crypt_net::httpd::RequestDriver;
use disk_crypt_net::kstack::KstackConfig;
use disk_crypt_net::mem::Fidelity;
use disk_crypt_net::simcore::{Nanos, RankPerm, SimRng};
use disk_crypt_net::store::Catalog;
use disk_crypt_net::tier::TierConfig;
use disk_crypt_net::workload::{
    run_scenario, FleetConfig, RunMetrics, Scenario, ServerKind, TierMetrics,
};
use std::collections::HashSet;

/// The shared default rank-permutation seed (FleetConfig and
/// TierConfig must agree or the seeded hot set misses the Zipf head).
const PERM_SEED: u64 = 0x007E_1A11;

// ---------------------------------------------------------- sampler

#[test]
fn zipf_workload_is_seed_deterministic_and_head_heavy() {
    let n: u64 = 1_000_000;
    let draw = |rng_seed: u64| -> Vec<u64> {
        let mut d = RequestDriver::zipf_perm(n, 0.9, PERM_SEED, SimRng::new(rng_seed));
        (0..10_000).map(|_| d.next_file().0).collect()
    };
    let a = draw(17);
    let b = draw(17);
    assert_eq!(a, b, "same seed must draw the same request sequence");
    let c = draw(18);
    assert_ne!(a, c, "different seeds must draw different sequences");

    // The permuted Zipf head must carry the mass: the top 10% of
    // ranks hold ~79% of Zipf(0.9) over 1M objects, and they must be
    // the *permuted* ids (the same ids the tier engine seeds hot).
    let perm = RankPerm::new(n, PERM_SEED);
    let head: HashSet<u64> = (0..n / 10).map(|r| perm.apply(r)).collect();
    let in_head = a.iter().filter(|f| head.contains(f)).count();
    assert!(
        in_head as f64 / a.len() as f64 > 0.70,
        "Zipf head under-represented: {in_head}/10000"
    );
    // And the ids are spread by the permutation, not clustered at the
    // low end of the namespace.
    let low_ids = a.iter().filter(|&&f| f < n / 10).count();
    assert!(
        (low_ids as f64) < 0.25 * a.len() as f64,
        "rank permutation missing: {low_ids}/10000 ids in the low tenth"
    );
}

// --------------------------------------------------- million-object

/// 1M objects, Zipf(0.9), hot tier provisioned for 55% of the
/// catalog: the seeded head must absorb ≥90% of requests.
fn million_tier() -> TierConfig {
    TierConfig {
        hot_frac: 0.55,
        ..TierConfig::default()
    }
}

fn million_scenario(server: ServerKind, seed: u64) -> Scenario {
    Scenario {
        server,
        fleet: FleetConfig {
            n_clients: 48,
            verify: false, // modeled fidelity
            zipf: Some(0.9),
            ..FleetConfig::default()
        },
        catalog: Catalog::new(1_000_000, 300 * 1024, 4, seed),
        warmup: Nanos::from_millis(250),
        duration: Nanos::from_millis(700),
        seed,
        data_loss: 0.0,
        faults: FaultConfig::default(),
    }
}

fn assert_million_invariants(m: &RunMetrics) -> TierMetrics {
    let t = m.tier.expect("tier engine configured");
    assert!(m.responses > 0, "no progress: {m:?}");
    assert_eq!(m.leaked_buffers, 0, "cold-miss path leaked buffers");
    assert!(
        t.cold_misses > 0,
        "tier never exercised — cold tail unreachable? {t:?}"
    );
    assert!(
        t.hit_ratio >= 0.90,
        "hot tier must absorb >=90% of Zipf(0.9): {t:?}"
    );
    assert!(t.cold_bytes > 0 && t.cold_requests > 0 && t.cold_cost_ucents > 0);
    t
}

#[test]
fn million_object_zipf_on_atlas_hits_hot_tier() {
    let cfg = AtlasConfig {
        fidelity: Fidelity::Modeled,
        tier: Some(million_tier()),
        ..AtlasConfig::default()
    };
    let m = run_scenario(&million_scenario(ServerKind::Atlas(cfg), 83));
    let t = assert_million_invariants(&m);
    eprintln!("atlas 1M: {t:?}");
}

#[test]
fn million_object_zipf_on_kstack_hits_hot_tier() {
    let cfg = KstackConfig {
        fidelity: Fidelity::Modeled,
        tier: Some(million_tier()),
        ..KstackConfig::netflix()
    };
    let m = run_scenario(&million_scenario(ServerKind::Kstack(cfg), 84));
    let t = assert_million_invariants(&m);
    assert_eq!(
        (t.cache_hits, t.cache_misses),
        (0, 0),
        "kstack has no DMA cache — the buffer cache plays that role"
    );
    eprintln!("kstack 1M: {t:?}");
}

#[test]
fn million_object_zipf_on_cluster_hits_hot_tier() {
    let mut sc = ClusterConfig::smoke(3, 18, 85);
    sc.catalog = Catalog::new(1_000_000, 300 * 1024, 4, 85);
    sc.fleet.zipf = Some(0.9);
    sc.atlas = AtlasConfig {
        tier: Some(million_tier()),
        ..AtlasConfig::default()
    };
    let m = run_cluster(&sc);
    assert!(m.responses > 0);
    assert_eq!(m.verify_failures, 0, "cold bytes corrupted: {m:?}");
    assert!(m.verified_bytes > 0);
    // Hit ratio weighted by each shard's traffic: the dispatcher
    // splits the catalog but every shard keeps its own Zipf head hot.
    let (mut hits_w, mut resp) = (0.0, 0u64);
    for s in &m.per_server {
        assert_eq!(s.leaked_buffers, 0, "server {} leaked", s.server);
        hits_w += s.tier_hit_ratio * s.responses as f64;
        resp += s.responses;
        assert!(s.responses > 0, "server {} idle: {m:?}", s.server);
    }
    let hit = hits_w / resp as f64;
    assert!(
        hit >= 0.90,
        "cluster-wide hot-tier hit ratio {hit:.3} < 0.90"
    );
    let cold: u64 = m.per_server.iter().map(|s| s.tier_cold_bytes).sum();
    assert!(cold > 0, "cluster never touched the cold store");
}

// ------------------------------------------------- cold-path bytes

/// Full fidelity, tiny hot tier (10%): most requests miss to the
/// cold store, and every delivered byte must still verify against
/// the catalog oracle — which derives expected bytes from (object,
/// offset) alone and never saw a disk placement for cold objects.
fn cold_heavy_scenario(server: ServerKind, seed: u64) -> Scenario {
    let mut sc = Scenario::smoke(server, 12, seed);
    sc.catalog = Catalog::new(2_000, 300 * 1024, 4, seed);
    sc
}

fn assert_cold_bytes_exact(m: &RunMetrics) {
    let t = m.tier.expect("tier engine configured");
    assert!(t.cold_misses > 0, "cold path never taken: {t:?}");
    assert_eq!(m.verify_failures, 0, "cold bytes corrupted: {m:?}");
    assert!(m.verified_bytes > 0);
    assert_eq!(m.leaked_buffers, 0);
}

#[test]
fn cold_miss_bytes_verify_bit_exact_on_atlas() {
    for encrypted in [false, true] {
        let cfg = AtlasConfig {
            encrypted,
            tier: Some(TierConfig {
                hot_frac: 0.1,
                ..TierConfig::default()
            }),
            ..AtlasConfig::default()
        };
        let m = run_scenario(&cold_heavy_scenario(ServerKind::Atlas(cfg), 91));
        assert_cold_bytes_exact(&m);
    }
}

#[test]
fn cold_miss_bytes_verify_bit_exact_on_kstack() {
    // Netflix (async sendfile) and Stock (synchronous sendfile — the
    // blocking semantics must hold for WAN-latency cold reads too).
    for stock in [false, true] {
        let base = if stock {
            KstackConfig::stock()
        } else {
            KstackConfig::netflix()
        };
        let cfg = KstackConfig {
            encrypted: true,
            tier: Some(TierConfig {
                hot_frac: 0.1,
                ..TierConfig::default()
            }),
            ..base
        };
        let m = run_scenario(&cold_heavy_scenario(ServerKind::Kstack(cfg), 92));
        assert_cold_bytes_exact(&m);
    }
}

// ---------------------------------------------------------- replay

#[test]
fn tiered_run_replays_bit_identical_under_faults() {
    let scenario = || {
        let cfg = AtlasConfig {
            encrypted: true,
            fidelity: Fidelity::Modeled,
            tier: Some(TierConfig {
                hot_frac: 0.3,
                ..TierConfig::default()
            }),
            ..AtlasConfig::default()
        };
        let mut sc = million_scenario(ServerKind::Atlas(cfg), 93);
        sc.catalog = Catalog::new(100_000, 300 * 1024, 4, 93);
        sc.faults = FaultConfig::bursty_with_disk_errors();
        sc
    };
    let a = run_scenario(&scenario());
    let b = run_scenario(&scenario());
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "tiered + faulted run must replay bit-identically"
    );
    let t = a.tier.as_ref().expect("tier metrics");
    assert!(t.cold_misses > 0, "replay test never hit the cold path");
    assert!(
        a.faults.net_dropped > 0 || a.faults.nvme_read_errors > 0,
        "fault schedule never fired: {:?}",
        a.faults
    );
}
