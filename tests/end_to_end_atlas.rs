//! End-to-end integration: the Atlas stack serves verified content to
//! a client fleet over the simulated testbed.

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::workload::{run_scenario, Scenario, ServerKind};

#[test]
fn atlas_plaintext_serves_verified_content() {
    let sc = Scenario::smoke(ServerKind::Atlas(AtlasConfig::default()), 16, 42);
    let m = run_scenario(&sc);
    eprintln!("{m:?}");
    assert!(m.responses > 10, "responses={}", m.responses);
    assert_eq!(m.verify_failures, 0);
    assert!(
        m.verified_bytes > 3_000_000,
        "verified={}",
        m.verified_bytes
    );
    assert!(m.live_fraction > 0.9, "live={}", m.live_fraction);
    assert!(m.net_gbps > 0.5, "net={}", m.net_gbps);
}

#[test]
fn atlas_encrypted_serves_verified_content() {
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let sc = Scenario::smoke(ServerKind::Atlas(cfg), 16, 43);
    let m = run_scenario(&sc);
    eprintln!("{m:?}");
    assert!(m.responses > 10, "responses={}", m.responses);
    assert_eq!(m.verify_failures, 0, "GCM verification failed");
    assert!(
        m.verified_bytes > 3_000_000,
        "verified={}",
        m.verified_bytes
    );
}
