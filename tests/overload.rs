//! Overload-hardening regression suite: admission control, slow-client
//! defense, graceful shedding, and the buffer economy under attack.
//!
//! Every scenario deliberately pushes a server past some resource
//! limit — connection cap, DMA-pool watermark, malicious clients —
//! and checks the three invariants overload handling owes: admitted
//! connections still verify byte-identical, no DMA buffer leaks
//! through any shed/reap/abort path, and the shedding itself is
//! visible in the `atlas.overload.*` counters.

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::kstack::KstackConfig;
use disk_crypt_net::simcore::Nanos;
use disk_crypt_net::workload::{
    run_scenario, run_scenario_observed, ObsOptions, RunMetrics, Scenario, ServerKind,
};

/// Atlas with a small per-core admission cap so floods at test scale
/// actually hit it (default 4096/core never would).
fn capped_atlas(encrypted: bool, conns_per_core: usize) -> AtlasConfig {
    let mut cfg = AtlasConfig {
        encrypted,
        ..AtlasConfig::default()
    };
    cfg.admission.max_conns_per_core = conns_per_core;
    cfg
}

fn assert_overload_invariants(m: &RunMetrics) {
    assert!(m.responses > 0, "run must make progress: {m:?}");
    assert_eq!(
        m.verify_failures, 0,
        "admitted streams must verify byte-identical"
    );
    assert!(m.verified_bytes > 0);
    assert_eq!(m.leaked_buffers, 0, "no shed path may leak a DMA buffer");
}

#[test]
fn syn_flood_is_shed_at_admission_without_hurting_goodput() {
    // 4x the connection cap, all arriving at t=0 (aggressive_open):
    // surplus SYNs bounce off admission with an RST; the admitted set
    // streams at full rate and verifies clean.
    let cap = 8 * AtlasConfig::default().cores;
    let mut sc = Scenario::smoke(ServerKind::Atlas(capped_atlas(true, 8)), 4 * cap, 31);
    sc.faults.client.aggressive_open = true;
    let m = run_scenario(&sc);
    eprintln!("{:?}", m.overload);
    assert_overload_invariants(&m);
    assert!(
        m.overload.shed_new > 0,
        "flood must be shed: {:?}",
        m.overload
    );
    assert!(
        m.overload.client_resets > 0,
        "refused clients must see the RST"
    );

    // Same server at exactly its capacity: the overloaded run's
    // goodput must hold the plateau (>= 90% of the uncontended run).
    let base = run_scenario(&Scenario::smoke(
        ServerKind::Atlas(capped_atlas(true, 8)),
        cap,
        31,
    ));
    assert!(
        m.net_gbps >= 0.9 * base.net_gbps,
        "goodput collapsed under flood: {:.3} vs {:.3} Gbps",
        m.net_gbps,
        base.net_gbps
    );
}

#[test]
fn slowloris_readers_are_reaped_and_buffers_audited() {
    // Six attackers handshake, dribble a truncated request head, and
    // go silent, pinning connection slots forever on a naive server.
    // The header-read timeout must reap them, the honest clients must
    // be unaffected, and the end-of-run buffer audit must be clean.
    let mut sc = Scenario::smoke(ServerKind::Atlas(capped_atlas(true, 8)), 18, 37);
    sc.faults.client.slowloris_conns = 6;
    sc.duration = Nanos::from_millis(1500);
    let m = run_scenario(&sc);
    eprintln!("{:?}", m.overload);
    assert_overload_invariants(&m);
    assert!(
        m.overload.reaped_idle >= 6,
        "all six slowloris conns must hit the header timeout: {:?}",
        m.overload
    );
    assert!(
        m.overload.client_resets >= 6,
        "reaped attackers observe the RST"
    );
}

#[test]
fn resource_shedding_sends_503_and_clients_retry_to_completion() {
    // Force the DMA-pool watermark to latch essentially immediately
    // (enter below 60% free — the steady-state pool always dips past
    // that) so admitted connections see 503 + Retry-After on their
    // next request. The driver must hold the request, back off, and
    // retry; the eventual 200 verifies against the same oracle entry.
    let mut cfg = capped_atlas(false, 64);
    cfg.bufs_per_queue = 24;
    cfg.admission.pool_low_enter = 0.50;
    cfg.admission.pool_low_exit = 0.75;
    let mut sc = Scenario::smoke(ServerKind::Atlas(cfg), 16, 41);
    sc.duration = Nanos::from_millis(1500);
    let m = run_scenario(&sc);
    eprintln!("{:?}", m.overload);
    assert_overload_invariants(&m);
    assert!(
        m.overload.retry_503 > 0,
        "watermark shedding must answer 503: {:?}",
        m.overload
    );
    assert_eq!(
        m.overload.retry_503, m.overload.client_503s,
        "every 503 the server sent reaches a client"
    );
    assert!(
        m.overload.client_retries > 0,
        "clients must honor Retry-After and re-request"
    );
}

#[test]
fn retransmit_fetches_keep_priority_under_admission_pressure() {
    // Loss recovery competes with fresh fetches for DMA buffers. With
    // a deliberately tiny pool (16 bufs/queue) plus 1% loss, fresh
    // fetches park on the empty pool (`bufpool.empty_waits`) while
    // the retx reserve keeps RTO recovery moving: retransmit fetches
    // complete and no stream is ever corrupted or stalled out.
    let mut cfg = capped_atlas(true, 16);
    cfg.bufs_per_queue = 16;
    let mut sc = Scenario::smoke(ServerKind::Atlas(cfg), 24, 43);
    sc.data_loss = 0.01;
    sc.duration = Nanos::from_millis(1500);
    let m = run_scenario(&sc);
    eprintln!("{:?} empty_waits={}", m.overload, m.overload.empty_waits);
    assert_overload_invariants(&m);
    assert!(
        m.overload.empty_waits > 0,
        "tiny pool must actually exhaust: {:?}",
        m.overload
    );
    assert!(
        m.retransmit_fetches > 0,
        "retx fetches must still get buffers while fresh fetches park"
    );
}

#[test]
fn two_x_overload_smoke() {
    // The CI smoke contract: 2x offered load over the connection cap,
    // TLS, full fidelity. Zero leaked buffers, zero verifier
    // failures, and shedding visibly engaged.
    let cap = 8 * AtlasConfig::default().cores;
    let sc = Scenario::smoke(ServerKind::Atlas(capped_atlas(true, 8)), 2 * cap, 47);
    let m = run_scenario(&sc);
    eprintln!("{:?}", m.overload);
    assert_overload_invariants(&m);
    assert!(
        m.overload.shed_new > 0,
        "2x load must trip admission: {:?}",
        m.overload
    );
}

#[test]
fn kstack_admission_sheds_surplus_syns_too() {
    // The kernel-stack baseline shares the admission policy: SYNs
    // past the cap get RST, streams on admitted conns stay correct.
    let mut cfg = KstackConfig::netflix();
    cfg.admission.max_conns_per_core = 4;
    let cap = 4 * cfg.cores;
    let sc = Scenario::smoke(ServerKind::Kstack(cfg), 3 * cap, 53);
    let m = run_scenario(&sc);
    eprintln!("{:?}", m.overload);
    assert_overload_invariants(&m);
    assert!(
        m.overload.shed_new > 0,
        "kstack must shed past its cap: {:?}",
        m.overload
    );
    assert!(m.overload.client_resets > 0);
}

#[test]
fn overload_counters_export_via_metrics_csv() {
    // The `--metrics-out` CSV must carry the per-core overload series
    // so a shedding incident is diagnosable after the fact.
    let cap = 8 * AtlasConfig::default().cores;
    let sc = Scenario::smoke(ServerKind::Atlas(capped_atlas(false, 8)), 2 * cap, 59);
    let csv = std::env::temp_dir().join("dcn_overload_test_metrics.csv");
    let obs = ObsOptions {
        metrics_out: Some(csv.clone()),
        ..ObsOptions::disabled()
    };
    let (m, _) = run_scenario_observed(&sc, &obs);
    assert_overload_invariants(&m);
    assert!(m.overload.shed_new > 0);
    let body = std::fs::read_to_string(&csv).expect("csv written");
    for series in [
        "atlas.overload.shed_new{core=0}",
        "atlas.overload.reaped_idle{core=0}",
        "atlas.overload.aborted_slow{core=0}",
        "atlas.overload.retry_503{core=0}",
        "atlas.bufpool.empty_waits{core=0}",
    ] {
        assert!(body.contains(series), "missing series {series}");
    }
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn overload_runs_replay_bit_identically() {
    // Shedding, reaping, and deferred 503 retries all ride the seeded
    // event loop: the same overloaded scenario must replay to
    // identical metrics, overload counters included.
    let cap = 8 * AtlasConfig::default().cores;
    let mut sc = Scenario::smoke(ServerKind::Atlas(capped_atlas(true, 8)), 3 * cap, 61);
    sc.faults.client.slowloris_conns = 4;
    // Long enough for the 1s header-read timeout to reap the
    // slowloris conns, so the replay covers the abort paths too.
    sc.duration = Nanos::from_millis(1500);
    let a = run_scenario(&sc);
    let b = run_scenario(&sc);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(a.overload.shed_new > 0 && a.overload.reaped_idle > 0);
}

#[test]
fn abr_on_off_bursts_do_not_trip_admission_at_sub_capacity() {
    // DASH's on-off cadence is the overload ladder's nightmare
    // workload: every client pauses at a full playout buffer and a
    // shared resume threshold re-synchronizes their "on" edges into
    // fleet-wide request bursts. At sub-capacity (default admission
    // caps, a modest fleet on the fixed lowest rung) none of that
    // burstiness may register as overload: no SYN shed, no 503s, no
    // slow-client aborts — and the burst edges must not leak a single
    // DMA buffer.
    use disk_crypt_net::workload::AbrConfig;
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let mut sc = Scenario::smoke(ServerKind::Atlas(cfg), 24, 67);
    sc.fleet.abr = Some(AbrConfig::fixed(0));
    // Long enough for several full on-off cycles (fill to 250 ms,
    // drain to 150 ms, repeat).
    sc.duration = Nanos::from_millis(2000);
    let m = run_scenario(&sc);
    eprintln!(
        "{:?} paced={:?}",
        m.overload,
        m.abr.as_ref().map(|a| a.paced_wakes)
    );
    assert_overload_invariants(&m);
    let abr = m.abr.as_ref().expect("adaptive fleet");
    assert!(
        abr.paced_wakes >= 24,
        "the on-off cadence never engaged: {abr:?}"
    );
    assert_eq!(m.overload.shed_new, 0, "sub-capacity bursts must admit");
    assert_eq!(m.overload.retry_503, 0, "…and never hit the 503 ladder");
    assert_eq!(
        m.overload.aborted_slow, 0,
        "paused clients are not slow readers"
    );
    assert_eq!(abr.qoe.sessions, 24);
    assert_eq!(abr.qoe.started, 24, "every client reaches steady playback");
}
