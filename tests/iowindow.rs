//! I/O-window autotuner and zero-alloc steady-state invariants.
//!
//! The online autotuner (DESIGN.md §12) adjusts the fetch watermark
//! and in-flight cap from completion latency and SQ occupancy. It is
//! seeded and driven entirely by virtual time, so it must preserve
//! the simulator's bit-identical-replay property; and with the tuner
//! disabled the server must behave exactly as it did with the paper's
//! fixed 10×MSS watermark. Separately, the scratch-arena work asserts
//! that after warm-up neither server grows any of its per-sweep
//! buffers (the `dcn_obs::steady` counter, reset by the harness at
//! the warm-up boundary, stays zero).

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::kstack::KstackConfig;
use disk_crypt_net::mem::Fidelity;
use disk_crypt_net::srvcore::AutotuneConfig;
use disk_crypt_net::workload::{run_scenario, Scenario, ServerKind};

fn atlas_cfg(autotune: AutotuneConfig) -> AtlasConfig {
    AtlasConfig {
        encrypted: true,
        fidelity: Fidelity::Modeled,
        autotune,
        ..AtlasConfig::default()
    }
}

#[test]
fn autotune_on_replays_bit_identically() {
    let run = || {
        let sc = Scenario::smoke(ServerKind::Atlas(atlas_cfg(AutotuneConfig::on())), 24, 9090);
        format!("{:?}", run_scenario(&sc))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "autotuned runs must replay bit-identically");
}

#[test]
fn autotune_off_is_a_pass_through() {
    // A disabled tuner must reproduce the fixed-watermark behavior
    // exactly, whatever floor/ceiling it was configured with — the
    // paper's 10×MSS operating point is untouched unless the tuner is
    // switched on.
    let baseline = {
        let sc = Scenario::smoke(
            ServerKind::Atlas(atlas_cfg(AutotuneConfig::default())),
            24,
            7171,
        );
        format!("{:?}", run_scenario(&sc))
    };
    let weird_but_off = AutotuneConfig {
        enabled: false,
        ..AutotuneConfig::on()
    };
    let off = {
        let sc = Scenario::smoke(ServerKind::Atlas(atlas_cfg(weird_but_off)), 24, 7171);
        format!("{:?}", run_scenario(&sc))
    };
    assert_eq!(
        baseline, off,
        "disabled tuner must not perturb the fixed-watermark run"
    );
}

#[test]
fn autotune_raises_modeled_atlas_throughput() {
    let chunks = |autotune: AutotuneConfig| {
        let sc = Scenario::smoke(ServerKind::Atlas(atlas_cfg(autotune)), 24, 5151);
        run_scenario(&sc).disk_reads
    };
    let fixed = chunks(AutotuneConfig::default());
    let tuned = chunks(AutotuneConfig::on());
    assert!(
        tuned > fixed,
        "autotuner should beat the fixed watermark: tuned={tuned} fixed={fixed}"
    );
}

#[test]
fn atlas_steady_state_is_zero_alloc() {
    let cfg = AtlasConfig {
        encrypted: true,
        autotune: AutotuneConfig::on(),
        ..AtlasConfig::default()
    };
    let sc = Scenario::smoke(ServerKind::Atlas(cfg), 16, 4242);
    let m = run_scenario(&sc);
    assert!(
        m.disk_reads >= 1_000,
        "want ≥1k chunks, got {}",
        m.disk_reads
    );
    assert_eq!(m.verify_failures, 0);
    assert_eq!(
        disk_crypt_net::obs::steady::count(),
        0,
        "Atlas grew a scratch arena after warm-up"
    );
}

#[test]
fn kstack_steady_state_is_zero_alloc() {
    let cfg = KstackConfig {
        encrypted: true,
        ..KstackConfig::netflix()
    };
    let fill = cfg.fill_bytes;
    let sc = Scenario::smoke(ServerKind::Kstack(cfg), 16, 4343);
    let m = run_scenario(&sc);
    let fills = m.disk_read_bytes / fill.max(1);
    assert!(fills * 8 >= 1_000, "want ≥1k records, got {fills} fills");
    assert_eq!(m.verify_failures, 0);
    assert_eq!(
        disk_crypt_net::obs::steady::count(),
        0,
        "kstack grew a scratch arena after warm-up"
    );
}
