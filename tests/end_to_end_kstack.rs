//! End-to-end integration: the conventional-stack baselines serve
//! verified content over the same testbed.

use disk_crypt_net::kstack::KstackConfig;
use disk_crypt_net::workload::{run_scenario, Scenario, ServerKind};

#[test]
fn netflix_plaintext_serves_verified_content() {
    let sc = Scenario::smoke(ServerKind::Kstack(KstackConfig::netflix()), 16, 42);
    let m = run_scenario(&sc);
    eprintln!("{m:?}");
    assert!(m.responses > 10, "responses={}", m.responses);
    assert_eq!(m.verify_failures, 0);
    assert!(
        m.verified_bytes > 3_000_000,
        "verified={}",
        m.verified_bytes
    );
    assert!(m.live_fraction > 0.9);
}

#[test]
fn netflix_encrypted_serves_verified_content() {
    let cfg = KstackConfig {
        encrypted: true,
        ..KstackConfig::netflix()
    };
    let sc = Scenario::smoke(ServerKind::Kstack(cfg), 16, 43);
    let m = run_scenario(&sc);
    eprintln!("{m:?}");
    assert!(m.responses > 10, "responses={}", m.responses);
    assert_eq!(m.verify_failures, 0, "kTLS GCM verification failed");
}

#[test]
fn stock_plaintext_serves_verified_content() {
    let sc = Scenario::smoke(ServerKind::Kstack(KstackConfig::stock()), 16, 44);
    let m = run_scenario(&sc);
    eprintln!("{m:?}");
    assert!(m.responses > 5, "responses={}", m.responses);
    assert_eq!(m.verify_failures, 0);
}

#[test]
fn cacheable_workload_hits_buffer_cache() {
    // 100% BC: a hot set that fits in cache must stop generating disk
    // traffic once warm.
    let mut sc = Scenario::smoke(ServerKind::Kstack(KstackConfig::netflix()), 8, 45);
    sc.fleet.cacheable = true;
    sc.fleet.hot_files = 16;
    let m = run_scenario(&sc);
    eprintln!("{m:?}");
    assert!(m.responses > 10);
    assert_eq!(m.verify_failures, 0);
}
