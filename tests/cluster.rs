//! Cluster smoke: multi-server scale-out, sharding, failover.
//!
//! Every scenario is a pure function of its seed. The invariants: the
//! cluster serves correct bytes (stream verification against the
//! catalog oracle, across reconnects), requests spread over the
//! servers the ring assigns, aggregate goodput scales with servers
//! when one server is the bottleneck, and a fail-stop kill
//! re-converges — zero verification failures and zero leaked DMA
//! buffers on every survivor.

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::cluster::{run_cluster, ClusterConfig, ClusterMetrics};
use disk_crypt_net::faults::{ClusterFaults, ServerFault};
use disk_crypt_net::mem::Fidelity;
use disk_crypt_net::simcore::{Bandwidth, Nanos};

fn smoke(n_servers: usize, n_clients: usize, encrypted: bool, seed: u64) -> ClusterConfig {
    let mut sc = ClusterConfig::smoke(n_servers, n_clients, seed);
    sc.atlas = AtlasConfig {
        encrypted,
        ..AtlasConfig::default()
    };
    sc
}

fn assert_clean(m: &ClusterMetrics) {
    assert_eq!(m.verify_failures, 0, "corrupted bytes delivered: {m:?}");
    assert!(m.verified_bytes > 0, "nothing verified: {m:?}");
    for s in &m.per_server {
        if s.alive {
            assert_eq!(
                s.leaked_buffers, 0,
                "server {} leaked DMA buffers: {m:?}",
                s.server
            );
        }
    }
}

#[test]
fn healthy_cluster_serves_and_shards() {
    for encrypted in [false, true] {
        let m = run_cluster(&smoke(3, 24, encrypted, 11));
        assert_clean(&m);
        assert!(m.responses > 0);
        assert!(m.live_fraction > 0.9, "stuck clients: {m:?}");
        assert_eq!(m.failovers, 0);
        assert_eq!(m.fallback_routes, 0, "no failures → primary routing only");
        // The uniform workload must actually spread: every server
        // serves a nontrivial share.
        for s in &m.per_server {
            assert!(s.responses > 0, "server {} served nothing: {m:?}", s.server);
        }
    }
}

#[test]
fn single_server_cluster_matches_its_own_budget() {
    // Degenerate cluster (n=1) must behave like a plain Atlas run:
    // everything routes to server 0, nothing fails over.
    let m = run_cluster(&smoke(1, 16, true, 5));
    assert_clean(&m);
    assert_eq!(m.per_server.len(), 1);
    assert_eq!(m.per_server[0].responses, m.responses);
    assert_eq!(m.fallback_routes + m.overflow_routes, 0);
}

#[test]
fn kill_one_server_reconverges_without_corruption() {
    // Cacheable (hot-set) workload with replication 2: the killed
    // server's popular files already live on a replica.
    let mut sc = smoke(3, 24, true, 23);
    sc.fleet.cacheable = true;
    sc.fleet.hot_files = 64;
    sc.warmup = Nanos::from_millis(250);
    sc.duration = Nanos::from_millis(1200);
    sc.faults.cluster = ClusterFaults {
        kill: Some(ServerFault {
            server: 1,
            at: Nanos::from_millis(500),
        }),
        drain: None,
    };
    let m = run_cluster(&sc);
    assert_clean(&m);
    assert!(m.failovers > 0, "kill severed nobody: {m:?}");
    assert!(
        m.fallback_routes > 0,
        "hot files never failed over to a replica: {m:?}"
    );
    assert_eq!(m.unroutable, 0, "two healthy servers remain");
    let r = m.recovery.expect("kill inside the window → recovery stats");
    assert!(r.post_recovery_gbps > 0.0, "cluster never recovered: {m:?}");
    // Survivors keep serving after the kill; the dead server's
    // counters froze at the kill point.
    assert!(!m.per_server[1].alive);
    assert!(m.per_server[0].alive && m.per_server[2].alive);
}

#[test]
fn kill_resumes_interrupted_streams_mid_body() {
    // Many clients streaming when the server dies: at least one
    // in-flight response should have bytes on the ground and resume
    // via a range request rather than restarting from zero.
    let mut sc = smoke(2, 32, true, 7);
    sc.fleet.cacheable = true;
    sc.fleet.hot_files = 32;
    sc.replication = 2;
    sc.duration = Nanos::from_millis(1200);
    sc.faults.cluster = ClusterFaults {
        kill: Some(ServerFault {
            server: 0,
            at: Nanos::from_millis(600),
        }),
        drain: None,
    };
    let m = run_cluster(&sc);
    assert_clean(&m);
    assert!(m.failovers > 0);
    assert!(
        m.resumed_responses > 0,
        "no interrupted stream resumed mid-body: {m:?}"
    );
    assert!(m.resumed_bytes_saved > 0);
}

#[test]
fn drained_server_finishes_but_takes_no_new_work() {
    let mut sc = smoke(3, 24, false, 31);
    sc.duration = Nanos::from_millis(1200);
    sc.faults.cluster = ClusterFaults {
        kill: None,
        drain: Some(ServerFault {
            server: 2,
            at: Nanos::from_millis(400),
        }),
    };
    let m = run_cluster(&sc);
    assert_clean(&m);
    // Draining is not a failure: no connection is severed.
    assert_eq!(m.failovers, 0);
    // New requests route around the drained server (its primaries go
    // to a replica or overflow).
    assert!(m.fallback_routes + m.overflow_routes > 0, "{m:?}");
}

#[test]
fn goodput_scales_with_servers() {
    // The edge-pod shape from `ablation_cluster`: small per-server
    // NICs (2×5 GbE), clients a few ms away, oversubscribed closed
    // loop. One server saturates its NIC, so adding servers must add
    // goodput (~linear until the demand is met). At the paper's WAN
    // delays (10–40 ms) this inverts — each client's N per-server
    // connections stay cold and slow-start dominates — which is why
    // the scaling claim is pinned to this shape (DESIGN.md §9).
    //
    // Modeled fidelity: capacity is the question, not byte
    // correctness (the other tests cover that at Full).
    let g = |n: usize| {
        let mut sc = smoke(n, 300, true, 13);
        sc.atlas.fidelity = Fidelity::Modeled;
        sc.atlas.nic.port_rate = Bandwidth::from_gbps(5.0);
        sc.client_delay = (Nanos::from_millis(2), Nanos::from_millis(8));
        sc.fleet.cacheable = false;
        sc.fleet.verify = false;
        sc.vnodes = 512;
        sc.warmup = Nanos::from_millis(300);
        sc.duration = Nanos::from_millis(800);
        let m = run_cluster(&sc);
        for s in &m.per_server {
            assert_eq!(
                s.leaked_buffers, 0,
                "server {} leaked DMA buffers: {m:?}",
                s.server
            );
        }
        (m.net_gbps, m)
    };
    let (g1, _) = g(1);
    let (g4, m4) = g(4);
    assert!(g1 > 0.0);
    assert!(
        g4 > 3.0 * g1,
        "4 servers should far outrun 1: {g1:.2} → {g4:.2} Gbps\n{m4:?}"
    );
}
