//! Cross-stack observability, end to end: the chunk-lifecycle tracer
//! must (a) see the paper's disk→LLC→wire path — chunks still
//! LLC-resident when the CPU starts the in-place encrypt, (b) record
//! loss-driven retransmit fetches as a distinct chunk kind, and
//! (c) perturb nothing: the same seed with tracing on or off yields
//! bit-identical run metrics.

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::simcore::Nanos;
use disk_crypt_net::workload::{
    run_scenario, run_scenario_observed, ObsOptions, Scenario, ServerKind,
};
use std::path::PathBuf;

fn trace_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dcn_obs_test_{name}.jsonl"))
}

fn trace_only(path: &std::path::Path) -> ObsOptions {
    ObsOptions {
        trace_out: Some(path.to_path_buf()),
        ..ObsOptions::disabled()
    }
}

#[test]
fn encrypt_time_reads_are_llc_resident() {
    // Full-fidelity TLS Atlas run: DDIO lands the disk DMA in the
    // LLC and the ACK-clocked watermark keeps the working set small,
    // so when encryption starts the chunk should still be there
    // (§3.3 / Fig 12's "resident" class).
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let sc = Scenario::smoke(ServerKind::Atlas(cfg), 16, 43);
    let path = trace_path("llc");
    let (m, report) = run_scenario_observed(&sc, &trace_only(&path));
    assert!(m.responses > 10, "responses={}", m.responses);
    assert_eq!(m.verify_failures, 0);
    assert!(
        report.traced_chunks > 100,
        "traced={}",
        report.traced_chunks
    );
    assert!(report.stage_summary.contains("encrypt_end"));

    let body = std::fs::read_to_string(&path).expect("trace written");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), report.traced_chunks);
    let flagged = lines
        .iter()
        .filter(|l| l.contains("\"llc_at_encrypt\":true") || l.contains("\"llc_at_encrypt\":false"))
        .count();
    let resident = lines
        .iter()
        .filter(|l| l.contains("\"llc_at_encrypt\":true"))
        .count();
    assert!(flagged > 100, "flagged={flagged}");
    let frac = resident as f64 / flagged as f64;
    assert!(
        frac >= 0.90,
        "LLC-resident at encrypt: {resident}/{flagged} = {frac:.3}"
    );
    // Every trace line carries the full stage clock.
    for key in [
        "ack_arrival",
        "nvme_submit",
        "firmware_complete",
        "buffer_recycle",
    ] {
        assert!(lines[0].contains(&format!("\"{key}\":")), "missing {key}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn retransmit_fetches_trace_as_distinct_kind() {
    // Stateless retransmission (§3.2) goes back to disk; those
    // fetches must be classified RetransmitFetch, not Fresh, and
    // must legitimately skip the watermark stage.
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let mut sc = Scenario::smoke(ServerKind::Atlas(cfg), 8, 7);
    sc.data_loss = 0.02;
    sc.duration = Nanos::from_millis(1200);
    sc.warmup = Nanos::from_millis(300);
    let path = trace_path("retx");
    let (m, report) = run_scenario_observed(&sc, &trace_only(&path));
    assert!(m.responses > 5, "progress under loss: {}", m.responses);
    assert_eq!(m.verify_failures, 0);
    assert!(report.traced_chunks > 0);

    let body = std::fs::read_to_string(&path).expect("trace written");
    let fresh = body
        .lines()
        .filter(|l| l.contains("\"kind\":\"fresh\""))
        .count();
    let retx: Vec<&str> = body
        .lines()
        .filter(|l| l.contains("\"kind\":\"retransmit_fetch\""))
        .collect();
    assert!(fresh > 0, "no fresh chunks traced");
    assert!(!retx.is_empty(), "2% loss must produce retransmit fetches");
    for l in &retx {
        assert!(
            l.contains("\"watermark_trigger\":null"),
            "retransmit fetches are loss-driven, not watermark-driven: {l}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn tracing_does_not_perturb_the_run() {
    // The acceptance bar for "zero-overhead when disabled" has a
    // stronger cousin: even when ENABLED the tracer only observes
    // (non-mutating LLC probes, no extra memory traffic), so the
    // metrics must be bit-identical with tracing on or off.
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let sc = Scenario::smoke(ServerKind::Atlas(cfg), 12, 99);
    let base = run_scenario(&sc);
    let path = trace_path("det");
    let (traced, report) = run_scenario_observed(&sc, &trace_only(&path));
    assert!(report.traced_chunks > 0);
    assert_eq!(
        format!("{base:?}"),
        format!("{traced:?}"),
        "tracing changed the simulation"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_schedule_replays_bit_identically_under_observation() {
    // Seeded fault injection composed with the tracer: two runs of the
    // same scenario — same seed, nonzero fault schedule (bursty loss +
    // NVMe read errors) — must emit byte-identical JSONL traces and
    // metrics CSVs. Any hidden nondeterminism in the fault streams,
    // the recovery paths, or the observer itself shows up as a diff.
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let mut sc = Scenario::smoke(ServerKind::Atlas(cfg), 12, 83);
    sc.faults = disk_crypt_net::faults::FaultConfig::bursty_with_disk_errors();
    let mut outputs = Vec::new();
    for run in ["a", "b"] {
        let trace = trace_path(&format!("replay_{run}"));
        let csv = std::env::temp_dir().join(format!("dcn_obs_test_replay_{run}.csv"));
        let obs = ObsOptions {
            trace_out: Some(trace.clone()),
            metrics_out: Some(csv.clone()),
            ..ObsOptions::disabled()
        };
        let (m, report) = run_scenario_observed(&sc, &obs);
        assert!(m.responses > 0, "progress under faults");
        assert_eq!(m.verify_failures, 0);
        assert_eq!(m.leaked_buffers, 0);
        assert!(m.faults.net_dropped > 0, "fault schedule must be nonzero");
        assert!(m.faults.nvme_read_errors > 0);
        assert!(report.traced_chunks > 0);
        let trace_body = std::fs::read_to_string(&trace).expect("trace written");
        let csv_body = std::fs::read_to_string(&csv).expect("csv written");
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&csv);
        outputs.push((format!("{m:?}"), trace_body, csv_body));
    }
    let (m_a, trace_a, csv_a) = &outputs[0];
    let (m_b, trace_b, csv_b) = &outputs[1];
    assert_eq!(m_a, m_b, "run metrics must replay identically");
    assert_eq!(trace_a, trace_b, "chunk trace must replay byte-identically");
    assert_eq!(csv_a, csv_b, "metrics CSV must replay byte-identically");
}

#[test]
fn unstamped_chunk_json_round_trips() {
    // A chunk that died before reaching any stage serializes every
    // stage as `null`, and the emitted JSONL line must parse back
    // through the bench harness's own JSON reader (the same parser
    // the perf gate uses), preserving nulls and numeric fields.
    use disk_crypt_net::bench::perf::{parse_json, Json};
    use disk_crypt_net::obs::export::chunk_to_json;
    use disk_crypt_net::obs::{ChunkKind, ChunkTrace, Stage, STAGE_COUNT};

    let t = ChunkTrace {
        chunk: 17,
        conn: 3,
        core: 2,
        offset: 65_536,
        len: 16_384,
        kind: ChunkKind::Fresh,
        stamps: [u64::MAX; STAGE_COUNT],
        llc_at_encrypt: None,
        llc_at_nic_dma: None,
    };
    let line = chunk_to_json(&t);
    let doc = parse_json(&line).expect("JSONL line must be valid JSON");

    assert_eq!(doc.num("chunk"), Some(17.0));
    assert_eq!(doc.num("conn"), Some(3.0));
    assert_eq!(doc.num("core"), Some(2.0));
    assert_eq!(doc.num("offset"), Some(65_536.0));
    assert_eq!(doc.num("len"), Some(16_384.0));
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("fresh"));
    for section in ["stages_ns", "latency_ns"] {
        let obj = doc.get(section).expect(section);
        for st in Stage::ALL {
            assert!(
                matches!(obj.get(st.name()), Some(Json::Null)),
                "{section}.{} should be null on an unstamped chunk",
                st.name()
            );
        }
    }
    for key in ["llc_at_encrypt", "llc_at_nic_dma", "total_ns"] {
        assert!(
            matches!(doc.get(key), Some(Json::Null)),
            "{key} should be null"
        );
    }

    // And a partially stamped chunk keeps stamped values numeric
    // while later stages stay null.
    let mut t2 = t.clone();
    t2.stamps[Stage::AckArrival as usize] = 5_000;
    let doc2 = parse_json(&chunk_to_json(&t2)).unwrap();
    assert_eq!(
        doc2.get("stages_ns").unwrap().num("ack_arrival"),
        Some(5_000.0)
    );
    assert!(matches!(
        doc2.get("stages_ns").unwrap().get("nvme_submit"),
        Some(Json::Null)
    ));
    assert_eq!(doc2.num("total_ns"), Some(0.0));
}

#[test]
fn profiling_does_not_perturb_the_run() {
    // The stage profiler mirrors the accounting the simulation
    // already does; with `profile: true` the run must make byte-for-
    // byte identical decisions and only *add* the ProfReport.
    for encrypted in [false, true] {
        let base_cfg = AtlasConfig {
            encrypted,
            ..AtlasConfig::default()
        };
        let prof_cfg = AtlasConfig {
            profile: true,
            ..base_cfg.clone()
        };
        let sc_base = Scenario::smoke(ServerKind::Atlas(base_cfg), 12, 61);
        let sc_prof = Scenario::smoke(ServerKind::Atlas(prof_cfg), 12, 61);
        let base = run_scenario(&sc_base);
        let mut prof = run_scenario(&sc_prof);
        let report = prof.perf.take().expect("profile:true yields a ProfReport");
        assert!(base.perf.is_none(), "profile:false installs no profiler");
        assert!(report.total_chunks() > 0, "profiler saw no chunks");
        assert!(report.total_cycles() > 0, "profiler saw no cycles");
        assert_eq!(
            format!("{base:?}"),
            format!("{prof:?}"),
            "profiling changed the simulation (encrypted={encrypted})"
        );
    }
}

#[test]
fn metrics_csv_has_per_core_series() {
    // The CSV export must carry per-core labelled registry series,
    // including at least one previously uninstrumented signal (TCP
    // RTO firings and the buffer-pool depth).
    let cfg = AtlasConfig::default();
    let sc = Scenario::smoke(ServerKind::Atlas(cfg), 8, 5);
    let csv = std::env::temp_dir().join("dcn_obs_test_metrics.csv");
    let obs = ObsOptions {
        metrics_out: Some(csv.clone()),
        ..ObsOptions::disabled()
    };
    let (m, _) = run_scenario_observed(&sc, &obs);
    assert!(m.responses > 5);
    let body = std::fs::read_to_string(&csv).expect("csv written");
    assert!(body.starts_with("t_ms,metric,value"));
    for series in [
        "atlas.responses{core=0}",
        "tcp.rto_fired{core=0}",
        "atlas.pool_free_bufs{core=0}",
        "mem.dram_read_bytes",
        "diskmap.syscalls",
    ] {
        assert!(body.contains(series), "missing series {series}");
    }
    let _ = std::fs::remove_file(&csv);
}
