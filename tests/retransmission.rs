//! The paper's stateless-retransmission property (§3.2), end to end:
//! Atlas keeps no socket buffers, so a lost segment is re-fetched
//! from disk and (for TLS) re-encrypted with the nonce derived from
//! its stream offset. With frame loss injected on the data path,
//! every client must still receive byte-perfect content.

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::faults::LossModel;
use disk_crypt_net::kstack::KstackConfig;
use disk_crypt_net::simcore::Nanos;
use disk_crypt_net::workload::{run_scenario, Scenario, ServerKind};

fn lossy(server: ServerKind, seed: u64) -> Scenario {
    let mut sc = Scenario::smoke(server, 8, seed);
    sc.data_loss = 0.02; // 2% of data frames vanish
    sc.duration = Nanos::from_millis(1200);
    sc.warmup = Nanos::from_millis(300);
    sc
}

#[test]
fn atlas_plaintext_survives_loss_by_refetching_from_disk() {
    let m = run_scenario(&lossy(ServerKind::Atlas(AtlasConfig::default()), 7));
    eprintln!("{m:?}");
    assert!(m.responses > 5, "progress under loss: {}", m.responses);
    assert_eq!(
        m.verify_failures, 0,
        "retransmitted bytes must be identical"
    );
    assert!(m.verified_bytes > 1_000_000);
}

#[test]
fn atlas_encrypted_retransmissions_reencrypt_identically() {
    // The sharp edge: the GCM keystream of a re-fetched record must
    // match what the client derived from the first transmission's
    // offset. Any nonce-derivation slip fails the tag check.
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let m = run_scenario(&lossy(ServerKind::Atlas(cfg), 8));
    eprintln!("{m:?}");
    assert!(m.responses > 5, "progress under loss: {}", m.responses);
    assert_eq!(m.verify_failures, 0, "re-encryption must be byte-identical");
}

#[test]
fn kstack_retransmits_from_socket_buffers() {
    // The conventional stack retransmits from memory — same
    // observable correctness, different mechanism.
    let m = run_scenario(&lossy(ServerKind::Kstack(KstackConfig::netflix()), 9));
    eprintln!("{m:?}");
    assert!(m.responses > 5, "progress under loss: {}", m.responses);
    assert_eq!(m.verify_failures, 0);
}

#[test]
fn every_retransmission_is_a_fresh_disk_fetch() {
    // Atlas keeps zero payload bytes server-side — no socket buffer,
    // no record cache (the TCB stores layouts, not data). So every
    // retransmitted range MUST show up as an additional disk read:
    // successful reads ≥ (records needed for the bytes delivered) +
    // (retransmit fetches issued). A stack that served retransmits
    // from any payload cache would fail this inequality.
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let m = run_scenario(&lossy(ServerKind::Atlas(cfg), 13));
    eprintln!("{m:?}");
    assert!(m.faults.net_dropped > 0, "loss was injected");
    assert!(m.retransmit_fetches > 0, "losses forced re-fetches");
    let fresh_records_lower_bound = m.total_body_bytes / 16384;
    assert!(
        m.disk_reads >= fresh_records_lower_bound + m.retransmit_fetches,
        "disk reads ({}) must cover fresh records (≥{}) plus every \
         retransmit fetch ({}) — no payload cache may absorb them",
        m.disk_reads,
        fresh_records_lower_bound,
        m.retransmit_fetches,
    );
    assert_eq!(m.verify_failures, 0);
}

#[test]
fn bursty_tail_loss_forces_rto_driven_refetch() {
    // Gilbert–Elliott loss takes out whole windows, so dup-ACK-driven
    // fast retransmit often has nothing behind it to generate dup
    // ACKs — the retransmission timer must fire, and its re-fetch
    // comes from disk like any other.
    let mut sc = Scenario::smoke(ServerKind::Atlas(AtlasConfig::default()), 8, 17);
    sc.duration = Nanos::from_millis(1200);
    sc.warmup = Nanos::from_millis(300);
    sc.faults.net.loss = LossModel::gilbert_elliott_for(0.03);
    let m = run_scenario(&sc);
    eprintln!("{m:?}");
    assert!(m.responses > 5, "progress under bursty loss");
    assert!(m.faults.rto_fired > 0, "bursts must exhaust fast recovery");
    assert!(m.retransmit_fetches > 0);
    assert_eq!(m.verify_failures, 0);
    assert_eq!(m.leaked_buffers, 0);
}

#[test]
fn losing_the_retransmission_itself_still_recovers() {
    // Targeted two-stage fault on a single connection: drop one data
    // frame mid-response, then drop the first retransmission of it as
    // well. Recovery needs a SECOND disk re-fetch (RTO-driven after
    // the first retransmit vanishes) — the paper's stateless design
    // must survive repeated loss of the same range.
    let mut sc = Scenario::smoke(ServerKind::Atlas(AtlasConfig::default()), 1, 29);
    sc.duration = Nanos::from_millis(1500);
    sc.warmup = Nanos::from_millis(300);
    sc.faults.net.drop_nth_data_frame = Some(50);
    sc.faults.net.retx_drop = 1;
    let m = run_scenario(&sc);
    eprintln!("{m:?}");
    assert_eq!(m.faults.net_dropped, 2, "the frame and its retransmit");
    assert_eq!(m.faults.net_retx_dropped, 1);
    assert!(
        m.retransmit_fetches >= 2,
        "second recovery needs a second fetch: {}",
        m.retransmit_fetches
    );
    assert!(
        m.faults.rto_fired >= 1,
        "only the RTO re-drives a lost retransmit"
    );
    assert!(m.responses > 0, "the stream still completes");
    assert_eq!(m.verify_failures, 0, "recovered bytes are byte-perfect");
    assert_eq!(m.leaked_buffers, 0);
}
