//! The paper's stateless-retransmission property (§3.2), end to end:
//! Atlas keeps no socket buffers, so a lost segment is re-fetched
//! from disk and (for TLS) re-encrypted with the nonce derived from
//! its stream offset. With frame loss injected on the data path,
//! every client must still receive byte-perfect content.

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::kstack::KstackConfig;
use disk_crypt_net::simcore::Nanos;
use disk_crypt_net::workload::{run_scenario, Scenario, ServerKind};

fn lossy(server: ServerKind, seed: u64) -> Scenario {
    let mut sc = Scenario::smoke(server, 8, seed);
    sc.data_loss = 0.02; // 2% of data frames vanish
    sc.duration = Nanos::from_millis(1200);
    sc.warmup = Nanos::from_millis(300);
    sc
}

#[test]
fn atlas_plaintext_survives_loss_by_refetching_from_disk() {
    let m = run_scenario(&lossy(ServerKind::Atlas(AtlasConfig::default()), 7));
    eprintln!("{m:?}");
    assert!(m.responses > 5, "progress under loss: {}", m.responses);
    assert_eq!(
        m.verify_failures, 0,
        "retransmitted bytes must be identical"
    );
    assert!(m.verified_bytes > 1_000_000);
}

#[test]
fn atlas_encrypted_retransmissions_reencrypt_identically() {
    // The sharp edge: the GCM keystream of a re-fetched record must
    // match what the client derived from the first transmission's
    // offset. Any nonce-derivation slip fails the tag check.
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let m = run_scenario(&lossy(ServerKind::Atlas(cfg), 8));
    eprintln!("{m:?}");
    assert!(m.responses > 5, "progress under loss: {}", m.responses);
    assert_eq!(m.verify_failures, 0, "re-encryption must be byte-identical");
}

#[test]
fn kstack_retransmits_from_socket_buffers() {
    // The conventional stack retransmits from memory — same
    // observable correctness, different mechanism.
    let m = run_scenario(&lossy(ServerKind::Kstack(KstackConfig::netflix()), 9));
    eprintln!("{m:?}");
    assert!(m.responses > 5, "progress under loss: {}", m.responses);
    assert_eq!(m.verify_failures, 0);
}
