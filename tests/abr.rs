//! Adaptive-streaming (ABR/DASH) workload suite: controller
//! properties, end-to-end QoE on both stacks, rung-claim
//! verification, and bit-identical decision replay.
//!
//! The controller property tests drive an [`AbrSession`] directly at
//! synthetic throughputs; the end-to-end cells run the full
//! deterministic harness with `FleetConfig::abr` set and read the QoE
//! block out of `RunMetrics`. A Gilbert–Elliott loss scenario proves
//! the adaptive machinery actually reacts: the fleet must rebuffer
//! and switch down. And because every ABR decision is a pure function
//! of virtual time and the seed, the serialized decision trace (and
//! the whole metrics Debug form) must be byte-identical across
//! replays.

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::faults::LossModel;
use disk_crypt_net::kstack::KstackConfig;
use disk_crypt_net::mem::Fidelity;
use disk_crypt_net::simcore::Nanos;
use disk_crypt_net::store::{AbrManifest, Catalog};
use disk_crypt_net::workload::{
    run_scenario, AbrConfig, AbrPolicy, AbrSession, FetchStep, RunMetrics, Scenario, ServerKind,
};

fn manifest(seed: u64) -> AbrManifest {
    let cat = Catalog::new(10_000, 300 * 1024, 4, seed);
    AbrManifest::carve(&cat, &[1, 2, 4, 8], 16, Nanos::from_millis(50))
}

/// Drive a session through `n` whole segments at a fixed synthetic
/// throughput (bytes/sec of virtual time).
fn run_segments(s: &mut AbrSession, n: usize, bps: f64, mut now: Nanos) -> Nanos {
    s.note_first_request(now);
    for _ in 0..n {
        loop {
            match s.next_fetch(now) {
                FetchStep::Chunk(_) => {
                    now += Nanos::from_secs_f64(s.manifest().chunk_size() as f64 / bps);
                    if s.on_chunk_done(now) {
                        break;
                    }
                }
                FetchStep::PausedUntil(t) => now = t,
            }
        }
    }
    now
}

// ---------------------------------------------------------------
// Controller properties (no server in the loop).
// ---------------------------------------------------------------

#[test]
fn buffer_based_never_bets_above_the_estimate() {
    // Whatever the throughput, a buffer-based decision may never pick
    // a rung whose bitrate exceeds headroom × the estimate it was
    // made with (rung 0 before any sample). est_kbps is truncated in
    // the trace, so allow one kbit of quantization slack.
    let cfg = AbrConfig::buffer_based();
    for (seed, bps) in [(1u64, 5e6), (2, 20e6), (3, 80e6), (4, 300e6)] {
        let m = manifest(seed);
        let mut s = AbrSession::new(m.clone(), cfg, seed % m.n_titles());
        run_segments(&mut s, 50, bps, Nanos::ZERO);
        assert!(s.decisions.len() >= 50);
        for d in &s.decisions {
            if d.est_kbps == 0 {
                assert_eq!(d.rung, 0, "no sample yet must mean the lowest rung");
            } else {
                let budget = cfg.headroom * ((d.est_kbps + 1) as f64) * 1000.0;
                assert!(
                    m.bitrate_bps(d.rung as usize) <= budget,
                    "decision {d:?} bets above headroom×estimate at {bps} B/s"
                );
            }
        }
    }
}

#[test]
fn rate_based_upswitches_respect_hysteresis() {
    // A fast pipe from a cold start: the controller wants to climb
    // the whole ladder, but may only move one rung per decision and
    // never on two consecutive decisions (up_hysteresis = 2 resets
    // the vote counter after every climb).
    let cfg = AbrConfig::rate_based();
    assert_eq!(cfg.up_hysteresis, 2);
    let m = manifest(9);
    let mut s = AbrSession::new(m.clone(), cfg, 0);
    run_segments(&mut s, 40, 500e6, Nanos::ZERO);
    let rungs: Vec<u8> = s.decisions.iter().map(|d| d.rung).collect();
    let mut prev_climbed = false;
    for w in rungs.windows(2) {
        let climbed = w[1] > w[0];
        if climbed {
            assert_eq!(w[1], w[0] + 1, "up-switches climb one rung at a time");
            assert!(
                !prev_climbed,
                "hysteresis must space up-switches apart: {rungs:?}"
            );
        }
        prev_climbed = climbed;
    }
    assert_eq!(
        *rungs.last().expect("decisions") as usize,
        m.n_rungs() - 1,
        "a 500 Mb/s pipe must eventually reach the top rung: {rungs:?}"
    );
}

#[test]
fn segment_indices_are_monotone_for_every_policy() {
    for policy in [
        AbrPolicy::Fixed(2),
        AbrPolicy::BufferBased,
        AbrPolicy::RateBased,
    ] {
        let cfg = AbrConfig {
            policy,
            ..AbrConfig::rate_based()
        };
        let m = manifest(5);
        let mut s = AbrSession::new(m, cfg, 1);
        run_segments(&mut s, 35, 30e6, Nanos::ZERO);
        for (i, d) in s.decisions.iter().enumerate() {
            assert_eq!(
                d.seg_index, i as u64,
                "{policy:?}: segments fetched in playout order, no skips"
            );
        }
    }
}

// ---------------------------------------------------------------
// End-to-end: both stacks serve the adaptive fleet clean.
// ---------------------------------------------------------------

fn abr_scenario(server: ServerKind, n_clients: usize, seed: u64, abr: AbrConfig) -> Scenario {
    let mut sc = Scenario::smoke(server, n_clients, seed);
    sc.fleet.abr = Some(abr);
    sc
}

fn assert_abr_clean(m: &RunMetrics, n_clients: u64) {
    assert!(m.responses > 0, "no chunks served: {m:?}");
    assert_eq!(m.verify_failures, 0, "ABR streams must verify: {m:?}");
    assert_eq!(m.leaked_buffers, 0);
    let abr = m.abr.as_ref().expect("adaptive fleet must report QoE");
    assert_eq!(abr.qoe.sessions, n_clients);
    assert!(abr.qoe.started > 0, "nobody started playback: {abr:?}");
    assert!(abr.decisions > 0);
    assert!(abr.qoe.avg_bitrate_mbps > 0.0);
    assert!(!abr.trace.is_empty(), "decision trace must be recorded");
}

#[test]
fn atlas_serves_an_adaptive_fleet_clean() {
    let cfg = AtlasConfig {
        encrypted: true,
        fidelity: Fidelity::Modeled,
        ..AtlasConfig::default()
    };
    let sc = abr_scenario(ServerKind::Atlas(cfg), 16, 1212, AbrConfig::rate_based());
    let m = run_scenario(&sc);
    assert_abr_clean(&m, 16);
    let occ = m.pool_occ.expect("Atlas reports DMA-pool occupancy");
    assert!(occ.samples > 0 && occ.capacity > 0);
    assert!(occ.free_mean <= occ.capacity as f64);
}

#[test]
fn kstack_serves_an_adaptive_fleet_clean() {
    let cfg = KstackConfig {
        encrypted: true,
        ..KstackConfig::netflix()
    };
    let sc = abr_scenario(ServerKind::Kstack(cfg), 16, 1313, AbrConfig::buffer_based());
    let m = run_scenario(&sc);
    assert_abr_clean(&m, 16);
    assert!(
        m.pool_occ.is_none(),
        "the kernel stack has no DMA pool to sample"
    );
}

// ---------------------------------------------------------------
// Adaptation under loss: Gilbert–Elliott bursts must force both a
// rebuffer and a quality drop somewhere in the fleet.
// ---------------------------------------------------------------

#[test]
fn gilbert_elliott_loss_forces_rebuffer_and_downswitch() {
    let cfg = AtlasConfig {
        encrypted: true,
        fidelity: Fidelity::Modeled,
        ..AtlasConfig::default()
    };
    // Buffer-based at a burst rate mild enough that clients still
    // climb the ladder between loss bursts — there has to be a rung
    // to fall from.
    let mut sc = abr_scenario(ServerKind::Atlas(cfg), 8, 7272, AbrConfig::buffer_based());
    sc.duration = Nanos::from_millis(2000);
    sc.faults.net.loss = LossModel::gilbert_elliott_for(0.01);
    let m = run_scenario(&sc);
    let abr = m.abr.as_ref().expect("adaptive fleet");
    assert!(
        abr.qoe.rebuffer_ratio > 0.05,
        "bursty 1% loss must stall someone: {:?}",
        abr.qoe
    );
    assert!(
        abr.downswitches > 0,
        "estimate collapse under loss must drop a rung: {abr:?}"
    );
    assert_eq!(m.leaked_buffers, 0, "loss paths may not leak buffers");
}

// ---------------------------------------------------------------
// Rung-claim verification: a server that answers with an
// oracle-correct chunk from the *wrong quality rung* must still fail
// stream verification (the manifest is the source of truth).
// ---------------------------------------------------------------

#[test]
fn wrong_rung_delivery_is_caught_by_the_verifier() {
    use disk_crypt_net::crypto::RecordCipher;
    use disk_crypt_net::httpd::response::{response_header, ResponseInfo};
    use disk_crypt_net::workload::{Expected, RungClaim, StreamVerifier, VerifyStats};
    use std::collections::VecDeque;

    let cat = Catalog::new(10_000, 300 * 1024, 4, 17);
    let m = AbrManifest::carve(&cat, &[1, 2, 4, 8], 16, Nanos::from_millis(50));
    let cipher = RecordCipher::new(b"0123456789abcdef", 1);

    // The client asked for (title 2, seg 3, rung 3) but a buggy
    // server hands back the rung-0 chunk of the same segment. Every
    // body byte matches the catalog oracle for that chunk — only the
    // manifest cross-check can catch the quality substitution.
    let (rung0_chunk, _) = m.rung_range(2, 3, 0);
    assert!(!m.in_rung(rung0_chunk, 2, 3, 3));
    let mut outstanding: VecDeque<Expected> = VecDeque::new();
    outstanding.push_back(Expected::claimed(
        rung0_chunk,
        0,
        RungClaim {
            title: 2,
            seg: 3,
            rung: 3,
        },
    ));
    let mut stream = response_header(
        ResponseInfo::Ok {
            body_len: cat.file_size(),
        },
        false,
    );
    let mut body = vec![0u8; cat.file_size() as usize];
    cat.expected(rung0_chunk, 0, &mut body);
    stream.extend_from_slice(&body);

    let mut v = StreamVerifier::with_manifest(m);
    let mut stats = VerifyStats::default();
    for piece in stream.chunks(1461) {
        v.push(piece, &mut outstanding, &cat, &cipher, &mut stats);
    }
    assert!(stats.rung_mismatches > 0, "substitution must be flagged");
    assert!(stats.failures > 0, "…and counted as a verification failure");
}

// ---------------------------------------------------------------
// Cluster: the dispatcher serves an adaptive fleet too.
// ---------------------------------------------------------------

#[test]
fn cluster_serves_an_adaptive_fleet_clean() {
    use disk_crypt_net::cluster::{run_cluster, ClusterConfig};

    let mut sc = ClusterConfig::smoke(3, 18, 2121);
    sc.fleet.abr = Some(AbrConfig::rate_based());
    let m = run_cluster(&sc);
    assert_eq!(m.verify_failures, 0, "ABR streams must verify: {m:?}");
    let abr = m.abr.as_ref().expect("adaptive cluster fleet reports QoE");
    assert_eq!(abr.qoe.sessions, 18);
    assert!(abr.qoe.started > 0, "nobody started playback: {abr:?}");
    assert!(abr.decisions > 0);
    for s in &m.per_server {
        assert!(s.responses > 0, "server {} served nothing: {m:?}", s.server);
        assert_eq!(s.leaked_buffers, 0);
    }
}

// ---------------------------------------------------------------
// Replay identity: same seed ⇒ byte-identical decisions and QoE.
// ---------------------------------------------------------------

#[test]
fn abr_decisions_replay_bit_identically() {
    let run = || {
        let cfg = AtlasConfig {
            encrypted: true,
            fidelity: Fidelity::Modeled,
            ..AtlasConfig::default()
        };
        run_scenario(&abr_scenario(
            ServerKind::Atlas(cfg),
            16,
            4646,
            AbrConfig::rate_based(),
        ))
    };
    let (a, b) = (run(), run());
    let (ta, tb) = (
        a.abr.as_ref().expect("abr").trace.clone(),
        b.abr.as_ref().expect("abr").trace.clone(),
    );
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "decision traces must be byte-identical");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "QoE and every other metric must replay exactly"
    );
}
