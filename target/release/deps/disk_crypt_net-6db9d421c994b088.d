/root/repo/target/release/deps/disk_crypt_net-6db9d421c994b088.d: src/lib.rs

/root/repo/target/release/deps/libdisk_crypt_net-6db9d421c994b088.rlib: src/lib.rs

/root/repo/target/release/deps/libdisk_crypt_net-6db9d421c994b088.rmeta: src/lib.rs

src/lib.rs:
