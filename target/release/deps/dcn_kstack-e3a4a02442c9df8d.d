/root/repo/target/release/deps/dcn_kstack-e3a4a02442c9df8d.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/release/deps/libdcn_kstack-e3a4a02442c9df8d.rlib: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/release/deps/libdcn_kstack-e3a4a02442c9df8d.rmeta: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
