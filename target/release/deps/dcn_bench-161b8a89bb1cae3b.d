/root/repo/target/release/deps/dcn_bench-161b8a89bb1cae3b.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libdcn_bench-161b8a89bb1cae3b.rlib: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libdcn_bench-161b8a89bb1cae3b.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
