/root/repo/target/release/deps/observability-db2bb6ec189388f0.d: tests/observability.rs

/root/repo/target/release/deps/observability-db2bb6ec189388f0: tests/observability.rs

tests/observability.rs:
