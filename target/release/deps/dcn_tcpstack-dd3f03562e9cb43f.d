/root/repo/target/release/deps/dcn_tcpstack-dd3f03562e9cb43f.d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/release/deps/libdcn_tcpstack-dd3f03562e9cb43f.rlib: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/release/deps/libdcn_tcpstack-dd3f03562e9cb43f.rmeta: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

crates/tcpstack/src/lib.rs:
crates/tcpstack/src/cc.rs:
crates/tcpstack/src/client.rs:
crates/tcpstack/src/obs.rs:
crates/tcpstack/src/rto.rs:
crates/tcpstack/src/tcb.rs:
