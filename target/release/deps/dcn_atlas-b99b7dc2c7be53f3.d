/root/repo/target/release/deps/dcn_atlas-b99b7dc2c7be53f3.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/release/deps/libdcn_atlas-b99b7dc2c7be53f3.rlib: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/release/deps/libdcn_atlas-b99b7dc2c7be53f3.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
