/root/repo/target/release/deps/dcn_diskmap-0f2d42de9bf5baea.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/release/deps/libdcn_diskmap-0f2d42de9bf5baea.rlib: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/release/deps/libdcn_diskmap-0f2d42de9bf5baea.rmeta: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
