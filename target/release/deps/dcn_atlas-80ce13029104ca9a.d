/root/repo/target/release/deps/dcn_atlas-80ce13029104ca9a.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/release/deps/libdcn_atlas-80ce13029104ca9a.rlib: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/release/deps/libdcn_atlas-80ce13029104ca9a.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
