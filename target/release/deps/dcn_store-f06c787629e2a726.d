/root/repo/target/release/deps/dcn_store-f06c787629e2a726.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/release/deps/libdcn_store-f06c787629e2a726.rlib: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/release/deps/libdcn_store-f06c787629e2a726.rmeta: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
