/root/repo/target/release/deps/dcn_httpd-e832a24a6e180a1a.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/release/deps/libdcn_httpd-e832a24a6e180a1a.rlib: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/release/deps/libdcn_httpd-e832a24a6e180a1a.rmeta: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
