/root/repo/target/release/deps/dcn_obs-d7ded6374c40233b.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libdcn_obs-d7ded6374c40233b.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libdcn_obs-d7ded6374c40233b.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/registry.rs:
crates/obs/src/trace.rs:
