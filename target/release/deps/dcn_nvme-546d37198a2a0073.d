/root/repo/target/release/deps/dcn_nvme-546d37198a2a0073.d: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/release/deps/libdcn_nvme-546d37198a2a0073.rlib: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/release/deps/libdcn_nvme-546d37198a2a0073.rmeta: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

crates/nvme/src/lib.rs:
crates/nvme/src/backing.rs:
crates/nvme/src/device.rs:
crates/nvme/src/firmware.rs:
crates/nvme/src/queue.rs:
