/root/repo/target/release/deps/dcn_atlas-00c214b3e55ec0ed.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/release/deps/libdcn_atlas-00c214b3e55ec0ed.rlib: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/release/deps/libdcn_atlas-00c214b3e55ec0ed.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
