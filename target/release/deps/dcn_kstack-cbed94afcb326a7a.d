/root/repo/target/release/deps/dcn_kstack-cbed94afcb326a7a.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/release/deps/libdcn_kstack-cbed94afcb326a7a.rlib: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/release/deps/libdcn_kstack-cbed94afcb326a7a.rmeta: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
