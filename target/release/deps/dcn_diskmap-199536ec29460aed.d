/root/repo/target/release/deps/dcn_diskmap-199536ec29460aed.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/release/deps/libdcn_diskmap-199536ec29460aed.rlib: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/release/deps/libdcn_diskmap-199536ec29460aed.rmeta: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
