/root/repo/target/release/deps/dcn_workload-3aa0c888f5e94c30.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/release/deps/libdcn_workload-3aa0c888f5e94c30.rlib: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/release/deps/libdcn_workload-3aa0c888f5e94c30.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
