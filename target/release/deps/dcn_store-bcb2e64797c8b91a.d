/root/repo/target/release/deps/dcn_store-bcb2e64797c8b91a.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/release/deps/libdcn_store-bcb2e64797c8b91a.rlib: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/release/deps/libdcn_store-bcb2e64797c8b91a.rmeta: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
