/root/repo/target/release/deps/dcn_netdev-31528d928605fd97.d: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/release/deps/libdcn_netdev-31528d928605fd97.rlib: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/release/deps/libdcn_netdev-31528d928605fd97.rmeta: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

crates/netdev/src/lib.rs:
crates/netdev/src/nic.rs:
crates/netdev/src/pcap.rs:
crates/netdev/src/rings.rs:
crates/netdev/src/sg.rs:
crates/netdev/src/wire.rs:
