/root/repo/target/release/deps/disk_crypt_net-ed4200806cf534c6.d: src/lib.rs

/root/repo/target/release/deps/libdisk_crypt_net-ed4200806cf534c6.rlib: src/lib.rs

/root/repo/target/release/deps/libdisk_crypt_net-ed4200806cf534c6.rmeta: src/lib.rs

src/lib.rs:
