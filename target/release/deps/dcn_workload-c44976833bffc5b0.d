/root/repo/target/release/deps/dcn_workload-c44976833bffc5b0.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/release/deps/libdcn_workload-c44976833bffc5b0.rlib: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/release/deps/libdcn_workload-c44976833bffc5b0.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
