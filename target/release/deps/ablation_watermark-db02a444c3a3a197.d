/root/repo/target/release/deps/ablation_watermark-db02a444c3a3a197.d: crates/bench/src/bin/ablation_watermark.rs

/root/repo/target/release/deps/ablation_watermark-db02a444c3a3a197: crates/bench/src/bin/ablation_watermark.rs

crates/bench/src/bin/ablation_watermark.rs:
