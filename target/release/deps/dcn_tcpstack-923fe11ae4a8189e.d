/root/repo/target/release/deps/dcn_tcpstack-923fe11ae4a8189e.d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/release/deps/libdcn_tcpstack-923fe11ae4a8189e.rlib: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/release/deps/libdcn_tcpstack-923fe11ae4a8189e.rmeta: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

crates/tcpstack/src/lib.rs:
crates/tcpstack/src/cc.rs:
crates/tcpstack/src/client.rs:
crates/tcpstack/src/obs.rs:
crates/tcpstack/src/rto.rs:
crates/tcpstack/src/tcb.rs:
