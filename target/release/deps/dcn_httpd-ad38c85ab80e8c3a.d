/root/repo/target/release/deps/dcn_httpd-ad38c85ab80e8c3a.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/release/deps/libdcn_httpd-ad38c85ab80e8c3a.rlib: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/release/deps/libdcn_httpd-ad38c85ab80e8c3a.rmeta: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
