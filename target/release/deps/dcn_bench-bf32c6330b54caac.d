/root/repo/target/release/deps/dcn_bench-bf32c6330b54caac.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libdcn_bench-bf32c6330b54caac.rlib: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libdcn_bench-bf32c6330b54caac.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
