/root/repo/target/release/deps/dcn_atlas-ff1d37e61f27b2a6.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/release/deps/libdcn_atlas-ff1d37e61f27b2a6.rlib: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/release/deps/libdcn_atlas-ff1d37e61f27b2a6.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
