/root/repo/target/release/deps/dcn_store-d860fb8d05046ef6.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/release/deps/libdcn_store-d860fb8d05046ef6.rlib: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/release/deps/libdcn_store-d860fb8d05046ef6.rmeta: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
