/root/repo/target/release/deps/fig09_latency_cdf-a025147914efc065.d: crates/bench/src/bin/fig09_latency_cdf.rs

/root/repo/target/release/deps/fig09_latency_cdf-a025147914efc065: crates/bench/src/bin/fig09_latency_cdf.rs

crates/bench/src/bin/fig09_latency_cdf.rs:
