/root/repo/target/release/deps/ablation_faults-26a8f1f7af91375b.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/release/deps/ablation_faults-26a8f1f7af91375b: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
