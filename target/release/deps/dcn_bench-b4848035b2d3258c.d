/root/repo/target/release/deps/dcn_bench-b4848035b2d3258c.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libdcn_bench-b4848035b2d3258c.rlib: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libdcn_bench-b4848035b2d3258c.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
