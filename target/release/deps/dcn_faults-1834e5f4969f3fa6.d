/root/repo/target/release/deps/dcn_faults-1834e5f4969f3fa6.d: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs

/root/repo/target/release/deps/libdcn_faults-1834e5f4969f3fa6.rlib: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs

/root/repo/target/release/deps/libdcn_faults-1834e5f4969f3fa6.rmeta: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs

crates/faults/src/lib.rs:
crates/faults/src/link.rs:
crates/faults/src/nvme.rs:
