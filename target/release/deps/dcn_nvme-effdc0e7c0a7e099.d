/root/repo/target/release/deps/dcn_nvme-effdc0e7c0a7e099.d: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/release/deps/libdcn_nvme-effdc0e7c0a7e099.rlib: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/release/deps/libdcn_nvme-effdc0e7c0a7e099.rmeta: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

crates/nvme/src/lib.rs:
crates/nvme/src/backing.rs:
crates/nvme/src/device.rs:
crates/nvme/src/firmware.rs:
crates/nvme/src/queue.rs:
