/root/repo/target/release/deps/dcn_diskmap-3168ef3e55e1e9e8.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/release/deps/libdcn_diskmap-3168ef3e55e1e9e8.rlib: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/release/deps/libdcn_diskmap-3168ef3e55e1e9e8.rmeta: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
