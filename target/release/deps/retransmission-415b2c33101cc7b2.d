/root/repo/target/release/deps/retransmission-415b2c33101cc7b2.d: tests/retransmission.rs

/root/repo/target/release/deps/retransmission-415b2c33101cc7b2: tests/retransmission.rs

tests/retransmission.rs:
