/root/repo/target/release/deps/dcn_kstack-55e332def7438748.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/release/deps/libdcn_kstack-55e332def7438748.rlib: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/release/deps/libdcn_kstack-55e332def7438748.rmeta: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
