/root/repo/target/release/deps/dcn_bench-b613b03d355b107c.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libdcn_bench-b613b03d355b107c.rlib: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libdcn_bench-b613b03d355b107c.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
