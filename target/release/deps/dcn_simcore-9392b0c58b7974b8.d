/root/repo/target/release/deps/dcn_simcore-9392b0c58b7974b8.d: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libdcn_simcore-9392b0c58b7974b8.rlib: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libdcn_simcore-9392b0c58b7974b8.rmeta: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/ids.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
