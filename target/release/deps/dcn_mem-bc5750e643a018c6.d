/root/repo/target/release/deps/dcn_mem-bc5750e643a018c6.d: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs

/root/repo/target/release/deps/libdcn_mem-bc5750e643a018c6.rlib: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs

/root/repo/target/release/deps/libdcn_mem-bc5750e643a018c6.rmeta: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs

crates/mem/src/lib.rs:
crates/mem/src/cost.rs:
crates/mem/src/counters.rs:
crates/mem/src/cpu.rs:
crates/mem/src/hostmem.rs:
crates/mem/src/llc.rs:
crates/mem/src/phys.rs:
