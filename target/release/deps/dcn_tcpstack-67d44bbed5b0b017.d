/root/repo/target/release/deps/dcn_tcpstack-67d44bbed5b0b017.d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/release/deps/libdcn_tcpstack-67d44bbed5b0b017.rlib: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/release/deps/libdcn_tcpstack-67d44bbed5b0b017.rmeta: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

crates/tcpstack/src/lib.rs:
crates/tcpstack/src/cc.rs:
crates/tcpstack/src/client.rs:
crates/tcpstack/src/rto.rs:
crates/tcpstack/src/tcb.rs:
