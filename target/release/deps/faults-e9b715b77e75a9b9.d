/root/repo/target/release/deps/faults-e9b715b77e75a9b9.d: tests/faults.rs

/root/repo/target/release/deps/faults-e9b715b77e75a9b9: tests/faults.rs

tests/faults.rs:
