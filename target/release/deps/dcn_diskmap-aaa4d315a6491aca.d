/root/repo/target/release/deps/dcn_diskmap-aaa4d315a6491aca.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/release/deps/libdcn_diskmap-aaa4d315a6491aca.rlib: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/release/deps/libdcn_diskmap-aaa4d315a6491aca.rmeta: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
