/root/repo/target/release/deps/dcn_httpd-6201d824f9391ac9.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/release/deps/libdcn_httpd-6201d824f9391ac9.rlib: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/release/deps/libdcn_httpd-6201d824f9391ac9.rmeta: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
