/root/repo/target/release/deps/dcn_kstack-c7d17e3180757180.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/release/deps/libdcn_kstack-c7d17e3180757180.rlib: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/release/deps/libdcn_kstack-c7d17e3180757180.rmeta: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
