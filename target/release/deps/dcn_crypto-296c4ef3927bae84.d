/root/repo/target/release/deps/dcn_crypto-296c4ef3927bae84.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/release/deps/libdcn_crypto-296c4ef3927bae84.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/release/deps/libdcn_crypto-296c4ef3927bae84.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/record.rs:
