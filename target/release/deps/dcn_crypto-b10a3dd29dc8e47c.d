/root/repo/target/release/deps/dcn_crypto-b10a3dd29dc8e47c.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/release/deps/libdcn_crypto-b10a3dd29dc8e47c.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/release/deps/libdcn_crypto-b10a3dd29dc8e47c.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/record.rs:
