/root/repo/target/release/deps/dcn_packet-1bc9387feb9f7ed1.d: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs

/root/repo/target/release/deps/libdcn_packet-1bc9387feb9f7ed1.rlib: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs

/root/repo/target/release/deps/libdcn_packet-1bc9387feb9f7ed1.rmeta: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs

crates/packet/src/lib.rs:
crates/packet/src/eth.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/tcp.rs:
