/root/repo/target/release/deps/dcn_workload-436ac0f721d1bd29.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/release/deps/libdcn_workload-436ac0f721d1bd29.rlib: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/release/deps/libdcn_workload-436ac0f721d1bd29.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
