/root/repo/target/release/deps/dcn_nvme-88396ffc1a5c81c0.d: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/release/deps/libdcn_nvme-88396ffc1a5c81c0.rlib: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/release/deps/libdcn_nvme-88396ffc1a5c81c0.rmeta: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

crates/nvme/src/lib.rs:
crates/nvme/src/backing.rs:
crates/nvme/src/device.rs:
crates/nvme/src/firmware.rs:
crates/nvme/src/queue.rs:
