/root/repo/target/release/deps/observability-f1b0df62e88a9531.d: tests/observability.rs

/root/repo/target/release/deps/observability-f1b0df62e88a9531: tests/observability.rs

tests/observability.rs:
