/root/repo/target/release/deps/dcn_workload-635b5e1acb995b75.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/release/deps/libdcn_workload-635b5e1acb995b75.rlib: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/release/deps/libdcn_workload-635b5e1acb995b75.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
