/root/repo/target/release/deps/disk_crypt_net-7d59701a7a43b1c3.d: src/lib.rs

/root/repo/target/release/deps/libdisk_crypt_net-7d59701a7a43b1c3.rlib: src/lib.rs

/root/repo/target/release/deps/libdisk_crypt_net-7d59701a7a43b1c3.rmeta: src/lib.rs

src/lib.rs:
