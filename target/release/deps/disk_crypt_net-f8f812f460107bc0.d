/root/repo/target/release/deps/disk_crypt_net-f8f812f460107bc0.d: src/lib.rs

/root/repo/target/release/deps/libdisk_crypt_net-f8f812f460107bc0.rlib: src/lib.rs

/root/repo/target/release/deps/libdisk_crypt_net-f8f812f460107bc0.rmeta: src/lib.rs

src/lib.rs:
