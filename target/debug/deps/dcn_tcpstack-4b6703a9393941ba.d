/root/repo/target/debug/deps/dcn_tcpstack-4b6703a9393941ba.d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/debug/deps/dcn_tcpstack-4b6703a9393941ba: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

crates/tcpstack/src/lib.rs:
crates/tcpstack/src/cc.rs:
crates/tcpstack/src/client.rs:
crates/tcpstack/src/rto.rs:
crates/tcpstack/src/tcb.rs:
