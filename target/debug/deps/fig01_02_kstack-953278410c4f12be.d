/root/repo/target/debug/deps/fig01_02_kstack-953278410c4f12be.d: crates/bench/src/bin/fig01_02_kstack.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_02_kstack-953278410c4f12be.rmeta: crates/bench/src/bin/fig01_02_kstack.rs Cargo.toml

crates/bench/src/bin/fig01_02_kstack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
