/root/repo/target/debug/deps/dcn_bench-94afd620a5495ffe.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_bench-94afd620a5495ffe.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
