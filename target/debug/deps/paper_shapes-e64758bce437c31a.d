/root/repo/target/debug/deps/paper_shapes-e64758bce437c31a.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-e64758bce437c31a: tests/paper_shapes.rs

tests/paper_shapes.rs:
