/root/repo/target/debug/deps/paper_shapes-576fc19e2bdb78e9.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-576fc19e2bdb78e9: tests/paper_shapes.rs

tests/paper_shapes.rs:
