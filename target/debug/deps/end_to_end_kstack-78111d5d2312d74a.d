/root/repo/target/debug/deps/end_to_end_kstack-78111d5d2312d74a.d: tests/end_to_end_kstack.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_kstack-78111d5d2312d74a.rmeta: tests/end_to_end_kstack.rs Cargo.toml

tests/end_to_end_kstack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
