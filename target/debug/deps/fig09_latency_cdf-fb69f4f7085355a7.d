/root/repo/target/debug/deps/fig09_latency_cdf-fb69f4f7085355a7.d: crates/bench/src/bin/fig09_latency_cdf.rs

/root/repo/target/debug/deps/fig09_latency_cdf-fb69f4f7085355a7: crates/bench/src/bin/fig09_latency_cdf.rs

crates/bench/src/bin/fig09_latency_cdf.rs:
