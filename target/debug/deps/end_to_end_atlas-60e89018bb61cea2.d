/root/repo/target/debug/deps/end_to_end_atlas-60e89018bb61cea2.d: tests/end_to_end_atlas.rs

/root/repo/target/debug/deps/end_to_end_atlas-60e89018bb61cea2: tests/end_to_end_atlas.rs

tests/end_to_end_atlas.rs:
