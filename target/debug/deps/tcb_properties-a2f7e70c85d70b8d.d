/root/repo/target/debug/deps/tcb_properties-a2f7e70c85d70b8d.d: crates/tcpstack/tests/tcb_properties.rs

/root/repo/target/debug/deps/tcb_properties-a2f7e70c85d70b8d: crates/tcpstack/tests/tcb_properties.rs

crates/tcpstack/tests/tcb_properties.rs:
