/root/repo/target/debug/deps/dcn_atlas-f8737fd747b2df67.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/libdcn_atlas-f8737fd747b2df67.rlib: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/libdcn_atlas-f8737fd747b2df67.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
