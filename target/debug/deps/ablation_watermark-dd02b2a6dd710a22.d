/root/repo/target/debug/deps/ablation_watermark-dd02b2a6dd710a22.d: crates/bench/src/bin/ablation_watermark.rs

/root/repo/target/debug/deps/ablation_watermark-dd02b2a6dd710a22: crates/bench/src/bin/ablation_watermark.rs

crates/bench/src/bin/ablation_watermark.rs:
