/root/repo/target/debug/deps/fig06_nvme_window-76479716128e1f67.d: crates/bench/src/bin/fig06_nvme_window.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_nvme_window-76479716128e1f67.rmeta: crates/bench/src/bin/fig06_nvme_window.rs Cargo.toml

crates/bench/src/bin/fig06_nvme_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
