/root/repo/target/debug/deps/fig01_02_kstack-bd86e777b19d3482.d: crates/bench/src/bin/fig01_02_kstack.rs

/root/repo/target/debug/deps/fig01_02_kstack-bd86e777b19d3482: crates/bench/src/bin/fig01_02_kstack.rs

crates/bench/src/bin/fig01_02_kstack.rs:
