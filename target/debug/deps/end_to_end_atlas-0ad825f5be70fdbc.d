/root/repo/target/debug/deps/end_to_end_atlas-0ad825f5be70fdbc.d: tests/end_to_end_atlas.rs

/root/repo/target/debug/deps/end_to_end_atlas-0ad825f5be70fdbc: tests/end_to_end_atlas.rs

tests/end_to_end_atlas.rs:
