/root/repo/target/debug/deps/fig11_plaintext-aa1b35dd541914a1.d: crates/bench/src/bin/fig11_plaintext.rs

/root/repo/target/debug/deps/fig11_plaintext-aa1b35dd541914a1: crates/bench/src/bin/fig11_plaintext.rs

crates/bench/src/bin/fig11_plaintext.rs:
