/root/repo/target/debug/deps/dcn_kstack-2bf1f21daf336ab3.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/dcn_kstack-2bf1f21daf336ab3: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
