/root/repo/target/debug/deps/ablation_txcompletion-8a315a4c52c121cb.d: crates/bench/src/bin/ablation_txcompletion.rs Cargo.toml

/root/repo/target/debug/deps/libablation_txcompletion-8a315a4c52c121cb.rmeta: crates/bench/src/bin/ablation_txcompletion.rs Cargo.toml

crates/bench/src/bin/ablation_txcompletion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
