/root/repo/target/debug/deps/end_to_end_atlas-be53cf393282e944.d: tests/end_to_end_atlas.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_atlas-be53cf393282e944.rmeta: tests/end_to_end_atlas.rs Cargo.toml

tests/end_to_end_atlas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
