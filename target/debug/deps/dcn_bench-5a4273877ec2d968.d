/root/repo/target/debug/deps/dcn_bench-5a4273877ec2d968.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/dcn_bench-5a4273877ec2d968: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
