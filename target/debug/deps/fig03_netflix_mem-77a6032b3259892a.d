/root/repo/target/debug/deps/fig03_netflix_mem-77a6032b3259892a.d: crates/bench/src/bin/fig03_netflix_mem.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_netflix_mem-77a6032b3259892a.rmeta: crates/bench/src/bin/fig03_netflix_mem.rs Cargo.toml

crates/bench/src/bin/fig03_netflix_mem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
