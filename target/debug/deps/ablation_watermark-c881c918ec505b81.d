/root/repo/target/debug/deps/ablation_watermark-c881c918ec505b81.d: crates/bench/src/bin/ablation_watermark.rs

/root/repo/target/debug/deps/ablation_watermark-c881c918ec505b81: crates/bench/src/bin/ablation_watermark.rs

crates/bench/src/bin/ablation_watermark.rs:
