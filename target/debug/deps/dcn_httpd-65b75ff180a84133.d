/root/repo/target/debug/deps/dcn_httpd-65b75ff180a84133.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/debug/deps/dcn_httpd-65b75ff180a84133: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
