/root/repo/target/debug/deps/fig12_14_patterns-eea92b7795e90967.d: crates/bench/src/bin/fig12_14_patterns.rs

/root/repo/target/debug/deps/fig12_14_patterns-eea92b7795e90967: crates/bench/src/bin/fig12_14_patterns.rs

crates/bench/src/bin/fig12_14_patterns.rs:
