/root/repo/target/debug/deps/dcn_bench-83e67cbd803deef7.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-83e67cbd803deef7.rlib: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-83e67cbd803deef7.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
