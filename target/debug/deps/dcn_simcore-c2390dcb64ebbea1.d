/root/repo/target/debug/deps/dcn_simcore-c2390dcb64ebbea1.d: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_simcore-c2390dcb64ebbea1.rmeta: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/ids.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
