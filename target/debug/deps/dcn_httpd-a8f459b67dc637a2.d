/root/repo/target/debug/deps/dcn_httpd-a8f459b67dc637a2.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/debug/deps/libdcn_httpd-a8f459b67dc637a2.rlib: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/debug/deps/libdcn_httpd-a8f459b67dc637a2.rmeta: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
