/root/repo/target/debug/deps/fig09_latency_cdf-484bea8e529e9104.d: crates/bench/src/bin/fig09_latency_cdf.rs

/root/repo/target/debug/deps/fig09_latency_cdf-484bea8e529e9104: crates/bench/src/bin/fig09_latency_cdf.rs

crates/bench/src/bin/fig09_latency_cdf.rs:
