/root/repo/target/debug/deps/ablation_txcompletion-83ea09271aafbc47.d: crates/bench/src/bin/ablation_txcompletion.rs

/root/repo/target/debug/deps/ablation_txcompletion-83ea09271aafbc47: crates/bench/src/bin/ablation_txcompletion.rs

crates/bench/src/bin/ablation_txcompletion.rs:
