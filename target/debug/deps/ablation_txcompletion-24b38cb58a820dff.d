/root/repo/target/debug/deps/ablation_txcompletion-24b38cb58a820dff.d: crates/bench/src/bin/ablation_txcompletion.rs

/root/repo/target/debug/deps/ablation_txcompletion-24b38cb58a820dff: crates/bench/src/bin/ablation_txcompletion.rs

crates/bench/src/bin/ablation_txcompletion.rs:
