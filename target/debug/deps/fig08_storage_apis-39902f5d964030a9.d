/root/repo/target/debug/deps/fig08_storage_apis-39902f5d964030a9.d: crates/bench/src/bin/fig08_storage_apis.rs

/root/repo/target/debug/deps/fig08_storage_apis-39902f5d964030a9: crates/bench/src/bin/fig08_storage_apis.rs

crates/bench/src/bin/fig08_storage_apis.rs:
