/root/repo/target/debug/deps/dcn_kstack-9a56831e676ccaf3.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/libdcn_kstack-9a56831e676ccaf3.rlib: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/libdcn_kstack-9a56831e676ccaf3.rmeta: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
