/root/repo/target/debug/deps/ablation_batching-bbd5e6be35b1da4a.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-bbd5e6be35b1da4a: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
