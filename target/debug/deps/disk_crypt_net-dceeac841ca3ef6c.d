/root/repo/target/debug/deps/disk_crypt_net-dceeac841ca3ef6c.d: src/lib.rs

/root/repo/target/debug/deps/disk_crypt_net-dceeac841ca3ef6c: src/lib.rs

src/lib.rs:
