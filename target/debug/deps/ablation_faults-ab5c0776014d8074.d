/root/repo/target/debug/deps/ablation_faults-ab5c0776014d8074.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/ablation_faults-ab5c0776014d8074: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
