/root/repo/target/debug/deps/dcn_netdev-f81bdf7a659ef5af.d: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/debug/deps/libdcn_netdev-f81bdf7a659ef5af.rlib: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/debug/deps/libdcn_netdev-f81bdf7a659ef5af.rmeta: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

crates/netdev/src/lib.rs:
crates/netdev/src/nic.rs:
crates/netdev/src/pcap.rs:
crates/netdev/src/rings.rs:
crates/netdev/src/sg.rs:
crates/netdev/src/wire.rs:
