/root/repo/target/debug/deps/properties-7b95bdee25c15989.d: tests/properties.rs

/root/repo/target/debug/deps/properties-7b95bdee25c15989: tests/properties.rs

tests/properties.rs:
