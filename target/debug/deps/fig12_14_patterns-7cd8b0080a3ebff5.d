/root/repo/target/debug/deps/fig12_14_patterns-7cd8b0080a3ebff5.d: crates/bench/src/bin/fig12_14_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_14_patterns-7cd8b0080a3ebff5.rmeta: crates/bench/src/bin/fig12_14_patterns.rs Cargo.toml

crates/bench/src/bin/fig12_14_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
