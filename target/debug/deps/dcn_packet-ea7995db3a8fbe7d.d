/root/repo/target/debug/deps/dcn_packet-ea7995db3a8fbe7d.d: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs

/root/repo/target/debug/deps/libdcn_packet-ea7995db3a8fbe7d.rlib: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs

/root/repo/target/debug/deps/libdcn_packet-ea7995db3a8fbe7d.rmeta: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs

crates/packet/src/lib.rs:
crates/packet/src/eth.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/tcp.rs:
