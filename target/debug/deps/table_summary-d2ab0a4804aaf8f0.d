/root/repo/target/debug/deps/table_summary-d2ab0a4804aaf8f0.d: crates/bench/src/bin/table_summary.rs

/root/repo/target/debug/deps/table_summary-d2ab0a4804aaf8f0: crates/bench/src/bin/table_summary.rs

crates/bench/src/bin/table_summary.rs:
