/root/repo/target/debug/deps/dcn_netdev-cf0a6a93d8c320f8.d: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/debug/deps/dcn_netdev-cf0a6a93d8c320f8: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

crates/netdev/src/lib.rs:
crates/netdev/src/nic.rs:
crates/netdev/src/pcap.rs:
crates/netdev/src/rings.rs:
crates/netdev/src/sg.rs:
crates/netdev/src/wire.rs:
