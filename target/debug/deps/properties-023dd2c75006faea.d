/root/repo/target/debug/deps/properties-023dd2c75006faea.d: tests/properties.rs

/root/repo/target/debug/deps/properties-023dd2c75006faea: tests/properties.rs

tests/properties.rs:
