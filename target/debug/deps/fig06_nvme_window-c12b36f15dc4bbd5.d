/root/repo/target/debug/deps/fig06_nvme_window-c12b36f15dc4bbd5.d: crates/bench/src/bin/fig06_nvme_window.rs

/root/repo/target/debug/deps/fig06_nvme_window-c12b36f15dc4bbd5: crates/bench/src/bin/fig06_nvme_window.rs

crates/bench/src/bin/fig06_nvme_window.rs:
