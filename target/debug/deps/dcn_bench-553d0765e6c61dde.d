/root/repo/target/debug/deps/dcn_bench-553d0765e6c61dde.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/dcn_bench-553d0765e6c61dde: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
