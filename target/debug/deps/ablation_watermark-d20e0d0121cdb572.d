/root/repo/target/debug/deps/ablation_watermark-d20e0d0121cdb572.d: crates/bench/src/bin/ablation_watermark.rs Cargo.toml

/root/repo/target/debug/deps/libablation_watermark-d20e0d0121cdb572.rmeta: crates/bench/src/bin/ablation_watermark.rs Cargo.toml

crates/bench/src/bin/ablation_watermark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
