/root/repo/target/debug/deps/fig06_nvme_window-a68a5a8f5f681b68.d: crates/bench/src/bin/fig06_nvme_window.rs

/root/repo/target/debug/deps/fig06_nvme_window-a68a5a8f5f681b68: crates/bench/src/bin/fig06_nvme_window.rs

crates/bench/src/bin/fig06_nvme_window.rs:
