/root/repo/target/debug/deps/fig13_encrypted-ffee04cbbbba3811.d: crates/bench/src/bin/fig13_encrypted.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_encrypted-ffee04cbbbba3811.rmeta: crates/bench/src/bin/fig13_encrypted.rs Cargo.toml

crates/bench/src/bin/fig13_encrypted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
