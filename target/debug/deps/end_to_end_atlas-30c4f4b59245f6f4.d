/root/repo/target/debug/deps/end_to_end_atlas-30c4f4b59245f6f4.d: tests/end_to_end_atlas.rs

/root/repo/target/debug/deps/end_to_end_atlas-30c4f4b59245f6f4: tests/end_to_end_atlas.rs

tests/end_to_end_atlas.rs:
