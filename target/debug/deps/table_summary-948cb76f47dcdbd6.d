/root/repo/target/debug/deps/table_summary-948cb76f47dcdbd6.d: crates/bench/src/bin/table_summary.rs

/root/repo/target/debug/deps/table_summary-948cb76f47dcdbd6: crates/bench/src/bin/table_summary.rs

crates/bench/src/bin/table_summary.rs:
