/root/repo/target/debug/deps/dcn_diskmap-1ec3a03e81e5f85e.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/debug/deps/dcn_diskmap-1ec3a03e81e5f85e: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
