/root/repo/target/debug/deps/fig11_plaintext-3cd928050bc455d9.d: crates/bench/src/bin/fig11_plaintext.rs

/root/repo/target/debug/deps/fig11_plaintext-3cd928050bc455d9: crates/bench/src/bin/fig11_plaintext.rs

crates/bench/src/bin/fig11_plaintext.rs:
