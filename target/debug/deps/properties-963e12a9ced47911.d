/root/repo/target/debug/deps/properties-963e12a9ced47911.d: tests/properties.rs

/root/repo/target/debug/deps/properties-963e12a9ced47911: tests/properties.rs

tests/properties.rs:
