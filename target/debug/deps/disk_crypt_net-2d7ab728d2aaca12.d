/root/repo/target/debug/deps/disk_crypt_net-2d7ab728d2aaca12.d: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-2d7ab728d2aaca12.rlib: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-2d7ab728d2aaca12.rmeta: src/lib.rs

src/lib.rs:
