/root/repo/target/debug/deps/tcb_properties-f348ff042e455419.d: crates/tcpstack/tests/tcb_properties.rs

/root/repo/target/debug/deps/tcb_properties-f348ff042e455419: crates/tcpstack/tests/tcb_properties.rs

crates/tcpstack/tests/tcb_properties.rs:
