/root/repo/target/debug/deps/properties-c67e172375cc5924.d: tests/properties.rs

/root/repo/target/debug/deps/properties-c67e172375cc5924: tests/properties.rs

tests/properties.rs:
