/root/repo/target/debug/deps/dcn_httpd-c1d0ab30029519d0.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/debug/deps/libdcn_httpd-c1d0ab30029519d0.rlib: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/debug/deps/libdcn_httpd-c1d0ab30029519d0.rmeta: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
