/root/repo/target/debug/deps/dcn_nvme-98b3f9b3475c3570.d: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/debug/deps/dcn_nvme-98b3f9b3475c3570: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

crates/nvme/src/lib.rs:
crates/nvme/src/backing.rs:
crates/nvme/src/device.rs:
crates/nvme/src/firmware.rs:
crates/nvme/src/queue.rs:
