/root/repo/target/debug/deps/dcn_workload-be2458ef20bdb693.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_workload-be2458ef20bdb693.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
