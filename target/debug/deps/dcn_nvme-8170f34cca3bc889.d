/root/repo/target/debug/deps/dcn_nvme-8170f34cca3bc889.d: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/debug/deps/libdcn_nvme-8170f34cca3bc889.rlib: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/debug/deps/libdcn_nvme-8170f34cca3bc889.rmeta: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

crates/nvme/src/lib.rs:
crates/nvme/src/backing.rs:
crates/nvme/src/device.rs:
crates/nvme/src/firmware.rs:
crates/nvme/src/queue.rs:
