/root/repo/target/debug/deps/ablation_txcompletion-491cb6c4e64dfec6.d: crates/bench/src/bin/ablation_txcompletion.rs

/root/repo/target/debug/deps/ablation_txcompletion-491cb6c4e64dfec6: crates/bench/src/bin/ablation_txcompletion.rs

crates/bench/src/bin/ablation_txcompletion.rs:
