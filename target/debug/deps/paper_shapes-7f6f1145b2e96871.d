/root/repo/target/debug/deps/paper_shapes-7f6f1145b2e96871.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-7f6f1145b2e96871: tests/paper_shapes.rs

tests/paper_shapes.rs:
