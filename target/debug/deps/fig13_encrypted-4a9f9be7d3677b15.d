/root/repo/target/debug/deps/fig13_encrypted-4a9f9be7d3677b15.d: crates/bench/src/bin/fig13_encrypted.rs

/root/repo/target/debug/deps/fig13_encrypted-4a9f9be7d3677b15: crates/bench/src/bin/fig13_encrypted.rs

crates/bench/src/bin/fig13_encrypted.rs:
