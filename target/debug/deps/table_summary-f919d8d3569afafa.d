/root/repo/target/debug/deps/table_summary-f919d8d3569afafa.d: crates/bench/src/bin/table_summary.rs

/root/repo/target/debug/deps/table_summary-f919d8d3569afafa: crates/bench/src/bin/table_summary.rs

crates/bench/src/bin/table_summary.rs:
