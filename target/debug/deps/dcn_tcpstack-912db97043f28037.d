/root/repo/target/debug/deps/dcn_tcpstack-912db97043f28037.d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/debug/deps/libdcn_tcpstack-912db97043f28037.rlib: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/debug/deps/libdcn_tcpstack-912db97043f28037.rmeta: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

crates/tcpstack/src/lib.rs:
crates/tcpstack/src/cc.rs:
crates/tcpstack/src/client.rs:
crates/tcpstack/src/rto.rs:
crates/tcpstack/src/tcb.rs:
