/root/repo/target/debug/deps/ablation_watermark-f19e8e164a37fe22.d: crates/bench/src/bin/ablation_watermark.rs

/root/repo/target/debug/deps/ablation_watermark-f19e8e164a37fe22: crates/bench/src/bin/ablation_watermark.rs

crates/bench/src/bin/ablation_watermark.rs:
