/root/repo/target/debug/deps/dcn_workload-273d75923b2b7e27.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/libdcn_workload-273d75923b2b7e27.rlib: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/libdcn_workload-273d75923b2b7e27.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
