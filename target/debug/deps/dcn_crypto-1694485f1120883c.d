/root/repo/target/debug/deps/dcn_crypto-1694485f1120883c.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/debug/deps/dcn_crypto-1694485f1120883c: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/record.rs:
