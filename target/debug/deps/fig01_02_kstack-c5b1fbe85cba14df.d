/root/repo/target/debug/deps/fig01_02_kstack-c5b1fbe85cba14df.d: crates/bench/src/bin/fig01_02_kstack.rs

/root/repo/target/debug/deps/fig01_02_kstack-c5b1fbe85cba14df: crates/bench/src/bin/fig01_02_kstack.rs

crates/bench/src/bin/fig01_02_kstack.rs:
