/root/repo/target/debug/deps/dcn_workload-19e1e76d9c10829f.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/libdcn_workload-19e1e76d9c10829f.rlib: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/libdcn_workload-19e1e76d9c10829f.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
