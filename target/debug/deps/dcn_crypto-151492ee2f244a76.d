/root/repo/target/debug/deps/dcn_crypto-151492ee2f244a76.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/debug/deps/dcn_crypto-151492ee2f244a76: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/record.rs:
