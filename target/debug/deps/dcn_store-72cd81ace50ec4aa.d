/root/repo/target/debug/deps/dcn_store-72cd81ace50ec4aa.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/debug/deps/dcn_store-72cd81ace50ec4aa: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
