/root/repo/target/debug/deps/end_to_end_kstack-919a6325a7df40ea.d: tests/end_to_end_kstack.rs

/root/repo/target/debug/deps/end_to_end_kstack-919a6325a7df40ea: tests/end_to_end_kstack.rs

tests/end_to_end_kstack.rs:
