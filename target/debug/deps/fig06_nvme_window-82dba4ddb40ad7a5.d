/root/repo/target/debug/deps/fig06_nvme_window-82dba4ddb40ad7a5.d: crates/bench/src/bin/fig06_nvme_window.rs

/root/repo/target/debug/deps/fig06_nvme_window-82dba4ddb40ad7a5: crates/bench/src/bin/fig06_nvme_window.rs

crates/bench/src/bin/fig06_nvme_window.rs:
