/root/repo/target/debug/deps/table_summary-d94c1d9b832b174f.d: crates/bench/src/bin/table_summary.rs Cargo.toml

/root/repo/target/debug/deps/libtable_summary-d94c1d9b832b174f.rmeta: crates/bench/src/bin/table_summary.rs Cargo.toml

crates/bench/src/bin/table_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
