/root/repo/target/debug/deps/dcn_netdev-ea293a6f629fb2bd.d: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/debug/deps/dcn_netdev-ea293a6f629fb2bd: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

crates/netdev/src/lib.rs:
crates/netdev/src/nic.rs:
crates/netdev/src/pcap.rs:
crates/netdev/src/rings.rs:
crates/netdev/src/sg.rs:
crates/netdev/src/wire.rs:
