/root/repo/target/debug/deps/dcn_netdev-67a3ae8095a58ebc.d: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/debug/deps/dcn_netdev-67a3ae8095a58ebc: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

crates/netdev/src/lib.rs:
crates/netdev/src/nic.rs:
crates/netdev/src/pcap.rs:
crates/netdev/src/rings.rs:
crates/netdev/src/sg.rs:
crates/netdev/src/wire.rs:
