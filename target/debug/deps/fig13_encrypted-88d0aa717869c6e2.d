/root/repo/target/debug/deps/fig13_encrypted-88d0aa717869c6e2.d: crates/bench/src/bin/fig13_encrypted.rs

/root/repo/target/debug/deps/fig13_encrypted-88d0aa717869c6e2: crates/bench/src/bin/fig13_encrypted.rs

crates/bench/src/bin/fig13_encrypted.rs:
