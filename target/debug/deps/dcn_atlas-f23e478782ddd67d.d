/root/repo/target/debug/deps/dcn_atlas-f23e478782ddd67d.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/dcn_atlas-f23e478782ddd67d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
