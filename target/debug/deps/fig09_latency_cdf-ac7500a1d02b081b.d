/root/repo/target/debug/deps/fig09_latency_cdf-ac7500a1d02b081b.d: crates/bench/src/bin/fig09_latency_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_latency_cdf-ac7500a1d02b081b.rmeta: crates/bench/src/bin/fig09_latency_cdf.rs Cargo.toml

crates/bench/src/bin/fig09_latency_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
