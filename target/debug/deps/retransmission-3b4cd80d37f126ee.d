/root/repo/target/debug/deps/retransmission-3b4cd80d37f126ee.d: tests/retransmission.rs

/root/repo/target/debug/deps/retransmission-3b4cd80d37f126ee: tests/retransmission.rs

tests/retransmission.rs:
