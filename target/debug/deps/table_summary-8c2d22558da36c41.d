/root/repo/target/debug/deps/table_summary-8c2d22558da36c41.d: crates/bench/src/bin/table_summary.rs

/root/repo/target/debug/deps/table_summary-8c2d22558da36c41: crates/bench/src/bin/table_summary.rs

crates/bench/src/bin/table_summary.rs:
