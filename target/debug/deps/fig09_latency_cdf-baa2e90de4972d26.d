/root/repo/target/debug/deps/fig09_latency_cdf-baa2e90de4972d26.d: crates/bench/src/bin/fig09_latency_cdf.rs

/root/repo/target/debug/deps/fig09_latency_cdf-baa2e90de4972d26: crates/bench/src/bin/fig09_latency_cdf.rs

crates/bench/src/bin/fig09_latency_cdf.rs:
