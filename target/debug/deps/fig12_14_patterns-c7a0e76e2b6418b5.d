/root/repo/target/debug/deps/fig12_14_patterns-c7a0e76e2b6418b5.d: crates/bench/src/bin/fig12_14_patterns.rs

/root/repo/target/debug/deps/fig12_14_patterns-c7a0e76e2b6418b5: crates/bench/src/bin/fig12_14_patterns.rs

crates/bench/src/bin/fig12_14_patterns.rs:
