/root/repo/target/debug/deps/dcn_mem-a7332235c7f77085.d: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs

/root/repo/target/debug/deps/libdcn_mem-a7332235c7f77085.rlib: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs

/root/repo/target/debug/deps/libdcn_mem-a7332235c7f77085.rmeta: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs

crates/mem/src/lib.rs:
crates/mem/src/cost.rs:
crates/mem/src/counters.rs:
crates/mem/src/cpu.rs:
crates/mem/src/hostmem.rs:
crates/mem/src/llc.rs:
crates/mem/src/phys.rs:
