/root/repo/target/debug/deps/dcn_kstack-53f8fea5599b37ba.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/dcn_kstack-53f8fea5599b37ba: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
