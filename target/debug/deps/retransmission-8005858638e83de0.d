/root/repo/target/debug/deps/retransmission-8005858638e83de0.d: tests/retransmission.rs

/root/repo/target/debug/deps/retransmission-8005858638e83de0: tests/retransmission.rs

tests/retransmission.rs:
