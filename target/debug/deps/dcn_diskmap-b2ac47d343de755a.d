/root/repo/target/debug/deps/dcn_diskmap-b2ac47d343de755a.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/debug/deps/libdcn_diskmap-b2ac47d343de755a.rlib: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/debug/deps/libdcn_diskmap-b2ac47d343de755a.rmeta: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
