/root/repo/target/debug/deps/ablation_txcompletion-cb0cd23390ed1af9.d: crates/bench/src/bin/ablation_txcompletion.rs

/root/repo/target/debug/deps/ablation_txcompletion-cb0cd23390ed1af9: crates/bench/src/bin/ablation_txcompletion.rs

crates/bench/src/bin/ablation_txcompletion.rs:
