/root/repo/target/debug/deps/dcn_store-e63251b9fe147a0e.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/debug/deps/dcn_store-e63251b9fe147a0e: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
