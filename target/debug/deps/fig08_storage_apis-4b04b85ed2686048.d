/root/repo/target/debug/deps/fig08_storage_apis-4b04b85ed2686048.d: crates/bench/src/bin/fig08_storage_apis.rs

/root/repo/target/debug/deps/fig08_storage_apis-4b04b85ed2686048: crates/bench/src/bin/fig08_storage_apis.rs

crates/bench/src/bin/fig08_storage_apis.rs:
