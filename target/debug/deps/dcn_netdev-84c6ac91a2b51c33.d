/root/repo/target/debug/deps/dcn_netdev-84c6ac91a2b51c33.d: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/debug/deps/libdcn_netdev-84c6ac91a2b51c33.rlib: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/debug/deps/libdcn_netdev-84c6ac91a2b51c33.rmeta: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

crates/netdev/src/lib.rs:
crates/netdev/src/nic.rs:
crates/netdev/src/pcap.rs:
crates/netdev/src/rings.rs:
crates/netdev/src/sg.rs:
crates/netdev/src/wire.rs:
