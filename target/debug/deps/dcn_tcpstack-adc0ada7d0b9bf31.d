/root/repo/target/debug/deps/dcn_tcpstack-adc0ada7d0b9bf31.d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/debug/deps/libdcn_tcpstack-adc0ada7d0b9bf31.rlib: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/debug/deps/libdcn_tcpstack-adc0ada7d0b9bf31.rmeta: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

crates/tcpstack/src/lib.rs:
crates/tcpstack/src/cc.rs:
crates/tcpstack/src/client.rs:
crates/tcpstack/src/obs.rs:
crates/tcpstack/src/rto.rs:
crates/tcpstack/src/tcb.rs:
