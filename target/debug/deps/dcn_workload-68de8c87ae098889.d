/root/repo/target/debug/deps/dcn_workload-68de8c87ae098889.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/dcn_workload-68de8c87ae098889: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
