/root/repo/target/debug/deps/dcn_kstack-b4bd58ab8808d03a.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/libdcn_kstack-b4bd58ab8808d03a.rlib: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/libdcn_kstack-b4bd58ab8808d03a.rmeta: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
