/root/repo/target/debug/deps/fig08_storage_apis-df9d1c0478c7e3a6.d: crates/bench/src/bin/fig08_storage_apis.rs

/root/repo/target/debug/deps/fig08_storage_apis-df9d1c0478c7e3a6: crates/bench/src/bin/fig08_storage_apis.rs

crates/bench/src/bin/fig08_storage_apis.rs:
