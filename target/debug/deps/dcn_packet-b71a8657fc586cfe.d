/root/repo/target/debug/deps/dcn_packet-b71a8657fc586cfe.d: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs

/root/repo/target/debug/deps/dcn_packet-b71a8657fc586cfe: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs

crates/packet/src/lib.rs:
crates/packet/src/eth.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/tcp.rs:
