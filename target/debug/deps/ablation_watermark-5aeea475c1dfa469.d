/root/repo/target/debug/deps/ablation_watermark-5aeea475c1dfa469.d: crates/bench/src/bin/ablation_watermark.rs Cargo.toml

/root/repo/target/debug/deps/libablation_watermark-5aeea475c1dfa469.rmeta: crates/bench/src/bin/ablation_watermark.rs Cargo.toml

crates/bench/src/bin/ablation_watermark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
