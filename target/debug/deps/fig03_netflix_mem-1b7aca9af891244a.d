/root/repo/target/debug/deps/fig03_netflix_mem-1b7aca9af891244a.d: crates/bench/src/bin/fig03_netflix_mem.rs

/root/repo/target/debug/deps/fig03_netflix_mem-1b7aca9af891244a: crates/bench/src/bin/fig03_netflix_mem.rs

crates/bench/src/bin/fig03_netflix_mem.rs:
