/root/repo/target/debug/deps/fig08_storage_apis-2d7bc0be76db7b38.d: crates/bench/src/bin/fig08_storage_apis.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_storage_apis-2d7bc0be76db7b38.rmeta: crates/bench/src/bin/fig08_storage_apis.rs Cargo.toml

crates/bench/src/bin/fig08_storage_apis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
