/root/repo/target/debug/deps/dcn_bench-3c830848d46ec46a.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-3c830848d46ec46a.rlib: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-3c830848d46ec46a.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
