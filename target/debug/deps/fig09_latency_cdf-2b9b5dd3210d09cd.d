/root/repo/target/debug/deps/fig09_latency_cdf-2b9b5dd3210d09cd.d: crates/bench/src/bin/fig09_latency_cdf.rs

/root/repo/target/debug/deps/fig09_latency_cdf-2b9b5dd3210d09cd: crates/bench/src/bin/fig09_latency_cdf.rs

crates/bench/src/bin/fig09_latency_cdf.rs:
