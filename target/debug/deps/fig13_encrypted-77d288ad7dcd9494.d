/root/repo/target/debug/deps/fig13_encrypted-77d288ad7dcd9494.d: crates/bench/src/bin/fig13_encrypted.rs

/root/repo/target/debug/deps/fig13_encrypted-77d288ad7dcd9494: crates/bench/src/bin/fig13_encrypted.rs

crates/bench/src/bin/fig13_encrypted.rs:
