/root/repo/target/debug/deps/end_to_end_kstack-3ce3321bd01de369.d: tests/end_to_end_kstack.rs

/root/repo/target/debug/deps/end_to_end_kstack-3ce3321bd01de369: tests/end_to_end_kstack.rs

tests/end_to_end_kstack.rs:
