/root/repo/target/debug/deps/ablation_batching-2331cb8756a8c068.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-2331cb8756a8c068: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
