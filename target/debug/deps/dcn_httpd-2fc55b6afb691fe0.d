/root/repo/target/debug/deps/dcn_httpd-2fc55b6afb691fe0.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/debug/deps/dcn_httpd-2fc55b6afb691fe0: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
