/root/repo/target/debug/deps/table_summary-9e9936134fc827c8.d: crates/bench/src/bin/table_summary.rs

/root/repo/target/debug/deps/table_summary-9e9936134fc827c8: crates/bench/src/bin/table_summary.rs

crates/bench/src/bin/table_summary.rs:
