/root/repo/target/debug/deps/disk_crypt_net-33d68886e3213e99.d: src/lib.rs

/root/repo/target/debug/deps/disk_crypt_net-33d68886e3213e99: src/lib.rs

src/lib.rs:
