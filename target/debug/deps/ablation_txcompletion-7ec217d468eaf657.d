/root/repo/target/debug/deps/ablation_txcompletion-7ec217d468eaf657.d: crates/bench/src/bin/ablation_txcompletion.rs

/root/repo/target/debug/deps/ablation_txcompletion-7ec217d468eaf657: crates/bench/src/bin/ablation_txcompletion.rs

crates/bench/src/bin/ablation_txcompletion.rs:
