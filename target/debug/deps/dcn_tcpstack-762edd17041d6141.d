/root/repo/target/debug/deps/dcn_tcpstack-762edd17041d6141.d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/debug/deps/dcn_tcpstack-762edd17041d6141: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

crates/tcpstack/src/lib.rs:
crates/tcpstack/src/cc.rs:
crates/tcpstack/src/client.rs:
crates/tcpstack/src/obs.rs:
crates/tcpstack/src/rto.rs:
crates/tcpstack/src/tcb.rs:
