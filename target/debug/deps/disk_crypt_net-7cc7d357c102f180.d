/root/repo/target/debug/deps/disk_crypt_net-7cc7d357c102f180.d: src/lib.rs

/root/repo/target/debug/deps/disk_crypt_net-7cc7d357c102f180: src/lib.rs

src/lib.rs:
