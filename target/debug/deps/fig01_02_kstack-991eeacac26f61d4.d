/root/repo/target/debug/deps/fig01_02_kstack-991eeacac26f61d4.d: crates/bench/src/bin/fig01_02_kstack.rs

/root/repo/target/debug/deps/fig01_02_kstack-991eeacac26f61d4: crates/bench/src/bin/fig01_02_kstack.rs

crates/bench/src/bin/fig01_02_kstack.rs:
