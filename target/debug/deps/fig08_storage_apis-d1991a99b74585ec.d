/root/repo/target/debug/deps/fig08_storage_apis-d1991a99b74585ec.d: crates/bench/src/bin/fig08_storage_apis.rs

/root/repo/target/debug/deps/fig08_storage_apis-d1991a99b74585ec: crates/bench/src/bin/fig08_storage_apis.rs

crates/bench/src/bin/fig08_storage_apis.rs:
