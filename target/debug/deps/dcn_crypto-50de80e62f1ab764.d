/root/repo/target/debug/deps/dcn_crypto-50de80e62f1ab764.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_crypto-50de80e62f1ab764.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/record.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
