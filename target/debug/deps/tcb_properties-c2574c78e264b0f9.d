/root/repo/target/debug/deps/tcb_properties-c2574c78e264b0f9.d: crates/tcpstack/tests/tcb_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtcb_properties-c2574c78e264b0f9.rmeta: crates/tcpstack/tests/tcb_properties.rs Cargo.toml

crates/tcpstack/tests/tcb_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
