/root/repo/target/debug/deps/fig06_nvme_window-5c82d744ad9ae51b.d: crates/bench/src/bin/fig06_nvme_window.rs

/root/repo/target/debug/deps/fig06_nvme_window-5c82d744ad9ae51b: crates/bench/src/bin/fig06_nvme_window.rs

crates/bench/src/bin/fig06_nvme_window.rs:
