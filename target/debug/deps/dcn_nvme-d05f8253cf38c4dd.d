/root/repo/target/debug/deps/dcn_nvme-d05f8253cf38c4dd.d: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/debug/deps/libdcn_nvme-d05f8253cf38c4dd.rlib: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/debug/deps/libdcn_nvme-d05f8253cf38c4dd.rmeta: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

crates/nvme/src/lib.rs:
crates/nvme/src/backing.rs:
crates/nvme/src/device.rs:
crates/nvme/src/firmware.rs:
crates/nvme/src/queue.rs:
