/root/repo/target/debug/deps/dcn_kstack-af4679746aadebfc.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/libdcn_kstack-af4679746aadebfc.rlib: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/libdcn_kstack-af4679746aadebfc.rmeta: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
