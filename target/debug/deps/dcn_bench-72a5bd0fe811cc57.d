/root/repo/target/debug/deps/dcn_bench-72a5bd0fe811cc57.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-72a5bd0fe811cc57.rlib: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-72a5bd0fe811cc57.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
