/root/repo/target/debug/deps/observability-1d96ea73ba9594db.d: tests/observability.rs

/root/repo/target/debug/deps/observability-1d96ea73ba9594db: tests/observability.rs

tests/observability.rs:
