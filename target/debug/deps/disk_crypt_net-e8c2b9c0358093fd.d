/root/repo/target/debug/deps/disk_crypt_net-e8c2b9c0358093fd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdisk_crypt_net-e8c2b9c0358093fd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
