/root/repo/target/debug/deps/dcn_store-fc575dff449a4b69.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/debug/deps/dcn_store-fc575dff449a4b69: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
