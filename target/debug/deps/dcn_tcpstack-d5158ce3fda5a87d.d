/root/repo/target/debug/deps/dcn_tcpstack-d5158ce3fda5a87d.d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

/root/repo/target/debug/deps/dcn_tcpstack-d5158ce3fda5a87d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs

crates/tcpstack/src/lib.rs:
crates/tcpstack/src/cc.rs:
crates/tcpstack/src/client.rs:
crates/tcpstack/src/obs.rs:
crates/tcpstack/src/rto.rs:
crates/tcpstack/src/tcb.rs:
