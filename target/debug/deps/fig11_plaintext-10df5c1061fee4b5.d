/root/repo/target/debug/deps/fig11_plaintext-10df5c1061fee4b5.d: crates/bench/src/bin/fig11_plaintext.rs

/root/repo/target/debug/deps/fig11_plaintext-10df5c1061fee4b5: crates/bench/src/bin/fig11_plaintext.rs

crates/bench/src/bin/fig11_plaintext.rs:
