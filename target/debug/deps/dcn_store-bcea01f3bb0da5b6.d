/root/repo/target/debug/deps/dcn_store-bcea01f3bb0da5b6.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/debug/deps/libdcn_store-bcea01f3bb0da5b6.rlib: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/debug/deps/libdcn_store-bcea01f3bb0da5b6.rmeta: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
