/root/repo/target/debug/deps/end_to_end_kstack-bdbe35fc0dba6be5.d: tests/end_to_end_kstack.rs

/root/repo/target/debug/deps/end_to_end_kstack-bdbe35fc0dba6be5: tests/end_to_end_kstack.rs

tests/end_to_end_kstack.rs:
