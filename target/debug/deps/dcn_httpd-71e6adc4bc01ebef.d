/root/repo/target/debug/deps/dcn_httpd-71e6adc4bc01ebef.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/debug/deps/libdcn_httpd-71e6adc4bc01ebef.rlib: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/debug/deps/libdcn_httpd-71e6adc4bc01ebef.rmeta: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
