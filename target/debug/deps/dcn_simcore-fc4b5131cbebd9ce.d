/root/repo/target/debug/deps/dcn_simcore-fc4b5131cbebd9ce.d: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/dcn_simcore-fc4b5131cbebd9ce: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/ids.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
