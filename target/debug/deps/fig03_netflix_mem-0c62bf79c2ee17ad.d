/root/repo/target/debug/deps/fig03_netflix_mem-0c62bf79c2ee17ad.d: crates/bench/src/bin/fig03_netflix_mem.rs

/root/repo/target/debug/deps/fig03_netflix_mem-0c62bf79c2ee17ad: crates/bench/src/bin/fig03_netflix_mem.rs

crates/bench/src/bin/fig03_netflix_mem.rs:
