/root/repo/target/debug/deps/dcn_store-f85309610de9d24d.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_store-f85309610de9d24d.rmeta: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
