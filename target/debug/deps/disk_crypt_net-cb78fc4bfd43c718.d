/root/repo/target/debug/deps/disk_crypt_net-cb78fc4bfd43c718.d: src/lib.rs

/root/repo/target/debug/deps/disk_crypt_net-cb78fc4bfd43c718: src/lib.rs

src/lib.rs:
