/root/repo/target/debug/deps/dcn_kstack-0f454da8d14a45d0.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_kstack-0f454da8d14a45d0.rmeta: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs Cargo.toml

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
