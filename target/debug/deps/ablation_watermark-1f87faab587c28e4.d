/root/repo/target/debug/deps/ablation_watermark-1f87faab587c28e4.d: crates/bench/src/bin/ablation_watermark.rs

/root/repo/target/debug/deps/ablation_watermark-1f87faab587c28e4: crates/bench/src/bin/ablation_watermark.rs

crates/bench/src/bin/ablation_watermark.rs:
