/root/repo/target/debug/deps/dcn_workload-e215619598ff293a.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/libdcn_workload-e215619598ff293a.rlib: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/libdcn_workload-e215619598ff293a.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
