/root/repo/target/debug/deps/paper_shapes-8c3f11b999461be4.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-8c3f11b999461be4: tests/paper_shapes.rs

tests/paper_shapes.rs:
