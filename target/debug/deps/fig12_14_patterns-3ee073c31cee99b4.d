/root/repo/target/debug/deps/fig12_14_patterns-3ee073c31cee99b4.d: crates/bench/src/bin/fig12_14_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_14_patterns-3ee073c31cee99b4.rmeta: crates/bench/src/bin/fig12_14_patterns.rs Cargo.toml

crates/bench/src/bin/fig12_14_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
