/root/repo/target/debug/deps/fig12_14_patterns-f96374a6f55ac525.d: crates/bench/src/bin/fig12_14_patterns.rs

/root/repo/target/debug/deps/fig12_14_patterns-f96374a6f55ac525: crates/bench/src/bin/fig12_14_patterns.rs

crates/bench/src/bin/fig12_14_patterns.rs:
