/root/repo/target/debug/deps/dcn_atlas-64772a9c930ff445.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_atlas-64772a9c930ff445.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs Cargo.toml

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
