/root/repo/target/debug/deps/dcn_bench-e93897d80a67166a.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/dcn_bench-e93897d80a67166a: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
