/root/repo/target/debug/deps/dcn_packet-dbec86cddb871966.d: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_packet-dbec86cddb871966.rmeta: crates/packet/src/lib.rs crates/packet/src/eth.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs Cargo.toml

crates/packet/src/lib.rs:
crates/packet/src/eth.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/tcp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
