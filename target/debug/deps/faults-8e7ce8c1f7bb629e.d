/root/repo/target/debug/deps/faults-8e7ce8c1f7bb629e.d: tests/faults.rs

/root/repo/target/debug/deps/faults-8e7ce8c1f7bb629e: tests/faults.rs

tests/faults.rs:
