/root/repo/target/debug/deps/observability-28f1e9a8308e2a26.d: tests/observability.rs

/root/repo/target/debug/deps/observability-28f1e9a8308e2a26: tests/observability.rs

tests/observability.rs:
