/root/repo/target/debug/deps/dcn_workload-184b8534d87ed707.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/dcn_workload-184b8534d87ed707: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
