/root/repo/target/debug/deps/fig11_plaintext-a0be8006ede9d844.d: crates/bench/src/bin/fig11_plaintext.rs

/root/repo/target/debug/deps/fig11_plaintext-a0be8006ede9d844: crates/bench/src/bin/fig11_plaintext.rs

crates/bench/src/bin/fig11_plaintext.rs:
