/root/repo/target/debug/deps/fig06_nvme_window-eaf5177f819b08c2.d: crates/bench/src/bin/fig06_nvme_window.rs

/root/repo/target/debug/deps/fig06_nvme_window-eaf5177f819b08c2: crates/bench/src/bin/fig06_nvme_window.rs

crates/bench/src/bin/fig06_nvme_window.rs:
