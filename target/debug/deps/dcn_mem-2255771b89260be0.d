/root/repo/target/debug/deps/dcn_mem-2255771b89260be0.d: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs

/root/repo/target/debug/deps/dcn_mem-2255771b89260be0: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs

crates/mem/src/lib.rs:
crates/mem/src/cost.rs:
crates/mem/src/counters.rs:
crates/mem/src/cpu.rs:
crates/mem/src/hostmem.rs:
crates/mem/src/llc.rs:
crates/mem/src/phys.rs:
