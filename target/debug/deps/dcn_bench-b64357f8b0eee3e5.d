/root/repo/target/debug/deps/dcn_bench-b64357f8b0eee3e5.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-b64357f8b0eee3e5.rlib: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-b64357f8b0eee3e5.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
