/root/repo/target/debug/deps/fig11_plaintext-167ebf707eca7d87.d: crates/bench/src/bin/fig11_plaintext.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_plaintext-167ebf707eca7d87.rmeta: crates/bench/src/bin/fig11_plaintext.rs Cargo.toml

crates/bench/src/bin/fig11_plaintext.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
