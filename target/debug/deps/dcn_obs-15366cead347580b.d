/root/repo/target/debug/deps/dcn_obs-15366cead347580b.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_obs-15366cead347580b.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/registry.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
