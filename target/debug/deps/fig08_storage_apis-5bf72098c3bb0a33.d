/root/repo/target/debug/deps/fig08_storage_apis-5bf72098c3bb0a33.d: crates/bench/src/bin/fig08_storage_apis.rs

/root/repo/target/debug/deps/fig08_storage_apis-5bf72098c3bb0a33: crates/bench/src/bin/fig08_storage_apis.rs

crates/bench/src/bin/fig08_storage_apis.rs:
