/root/repo/target/debug/deps/fig13_encrypted-5debc2f47cc786d8.d: crates/bench/src/bin/fig13_encrypted.rs

/root/repo/target/debug/deps/fig13_encrypted-5debc2f47cc786d8: crates/bench/src/bin/fig13_encrypted.rs

crates/bench/src/bin/fig13_encrypted.rs:
