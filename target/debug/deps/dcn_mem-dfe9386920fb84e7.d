/root/repo/target/debug/deps/dcn_mem-dfe9386920fb84e7.d: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_mem-dfe9386920fb84e7.rmeta: crates/mem/src/lib.rs crates/mem/src/cost.rs crates/mem/src/counters.rs crates/mem/src/cpu.rs crates/mem/src/hostmem.rs crates/mem/src/llc.rs crates/mem/src/phys.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cost.rs:
crates/mem/src/counters.rs:
crates/mem/src/cpu.rs:
crates/mem/src/hostmem.rs:
crates/mem/src/llc.rs:
crates/mem/src/phys.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
