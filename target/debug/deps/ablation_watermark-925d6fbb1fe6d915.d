/root/repo/target/debug/deps/ablation_watermark-925d6fbb1fe6d915.d: crates/bench/src/bin/ablation_watermark.rs

/root/repo/target/debug/deps/ablation_watermark-925d6fbb1fe6d915: crates/bench/src/bin/ablation_watermark.rs

crates/bench/src/bin/ablation_watermark.rs:
