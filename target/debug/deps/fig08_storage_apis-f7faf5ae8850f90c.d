/root/repo/target/debug/deps/fig08_storage_apis-f7faf5ae8850f90c.d: crates/bench/src/bin/fig08_storage_apis.rs

/root/repo/target/debug/deps/fig08_storage_apis-f7faf5ae8850f90c: crates/bench/src/bin/fig08_storage_apis.rs

crates/bench/src/bin/fig08_storage_apis.rs:
