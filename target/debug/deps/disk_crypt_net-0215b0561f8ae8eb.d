/root/repo/target/debug/deps/disk_crypt_net-0215b0561f8ae8eb.d: src/lib.rs

/root/repo/target/debug/deps/disk_crypt_net-0215b0561f8ae8eb: src/lib.rs

src/lib.rs:
