/root/repo/target/debug/deps/dcn_diskmap-8d624c96850f4237.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/debug/deps/libdcn_diskmap-8d624c96850f4237.rlib: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/debug/deps/libdcn_diskmap-8d624c96850f4237.rmeta: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
