/root/repo/target/debug/deps/dcn_atlas-66282b36336254bd.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/libdcn_atlas-66282b36336254bd.rlib: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/libdcn_atlas-66282b36336254bd.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
