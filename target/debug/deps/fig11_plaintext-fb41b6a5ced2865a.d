/root/repo/target/debug/deps/fig11_plaintext-fb41b6a5ced2865a.d: crates/bench/src/bin/fig11_plaintext.rs

/root/repo/target/debug/deps/fig11_plaintext-fb41b6a5ced2865a: crates/bench/src/bin/fig11_plaintext.rs

crates/bench/src/bin/fig11_plaintext.rs:
