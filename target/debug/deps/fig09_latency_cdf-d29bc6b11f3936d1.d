/root/repo/target/debug/deps/fig09_latency_cdf-d29bc6b11f3936d1.d: crates/bench/src/bin/fig09_latency_cdf.rs

/root/repo/target/debug/deps/fig09_latency_cdf-d29bc6b11f3936d1: crates/bench/src/bin/fig09_latency_cdf.rs

crates/bench/src/bin/fig09_latency_cdf.rs:
