/root/repo/target/debug/deps/dcn_httpd-a1ce2d47ea69429c.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

/root/repo/target/debug/deps/dcn_httpd-a1ce2d47ea69429c: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
