/root/repo/target/debug/deps/tcb_properties-150e03bd5bede082.d: crates/tcpstack/tests/tcb_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtcb_properties-150e03bd5bede082.rmeta: crates/tcpstack/tests/tcb_properties.rs Cargo.toml

crates/tcpstack/tests/tcb_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
