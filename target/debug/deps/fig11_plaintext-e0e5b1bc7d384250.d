/root/repo/target/debug/deps/fig11_plaintext-e0e5b1bc7d384250.d: crates/bench/src/bin/fig11_plaintext.rs

/root/repo/target/debug/deps/fig11_plaintext-e0e5b1bc7d384250: crates/bench/src/bin/fig11_plaintext.rs

crates/bench/src/bin/fig11_plaintext.rs:
