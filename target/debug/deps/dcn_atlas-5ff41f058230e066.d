/root/repo/target/debug/deps/dcn_atlas-5ff41f058230e066.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/libdcn_atlas-5ff41f058230e066.rlib: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/libdcn_atlas-5ff41f058230e066.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
