/root/repo/target/debug/deps/ablation_faults-cbe04411e525ef95.d: crates/bench/src/bin/ablation_faults.rs Cargo.toml

/root/repo/target/debug/deps/libablation_faults-cbe04411e525ef95.rmeta: crates/bench/src/bin/ablation_faults.rs Cargo.toml

crates/bench/src/bin/ablation_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
