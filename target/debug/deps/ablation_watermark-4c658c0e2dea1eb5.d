/root/repo/target/debug/deps/ablation_watermark-4c658c0e2dea1eb5.d: crates/bench/src/bin/ablation_watermark.rs

/root/repo/target/debug/deps/ablation_watermark-4c658c0e2dea1eb5: crates/bench/src/bin/ablation_watermark.rs

crates/bench/src/bin/ablation_watermark.rs:
