/root/repo/target/debug/deps/retransmission-09b373ef52eb3d36.d: tests/retransmission.rs

/root/repo/target/debug/deps/retransmission-09b373ef52eb3d36: tests/retransmission.rs

tests/retransmission.rs:
