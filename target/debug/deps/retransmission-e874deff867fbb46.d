/root/repo/target/debug/deps/retransmission-e874deff867fbb46.d: tests/retransmission.rs

/root/repo/target/debug/deps/retransmission-e874deff867fbb46: tests/retransmission.rs

tests/retransmission.rs:
