/root/repo/target/debug/deps/properties-44ff22aba214c2a5.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-44ff22aba214c2a5.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
