/root/repo/target/debug/deps/dcn_nvme-f93376fb58f4aa9c.d: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/debug/deps/libdcn_nvme-f93376fb58f4aa9c.rlib: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/debug/deps/libdcn_nvme-f93376fb58f4aa9c.rmeta: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

crates/nvme/src/lib.rs:
crates/nvme/src/backing.rs:
crates/nvme/src/device.rs:
crates/nvme/src/firmware.rs:
crates/nvme/src/queue.rs:
