/root/repo/target/debug/deps/dcn_obs-68e172790de2f244.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libdcn_obs-68e172790de2f244.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libdcn_obs-68e172790de2f244.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/registry.rs:
crates/obs/src/trace.rs:
