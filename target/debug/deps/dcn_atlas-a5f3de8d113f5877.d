/root/repo/target/debug/deps/dcn_atlas-a5f3de8d113f5877.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/dcn_atlas-a5f3de8d113f5877: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
