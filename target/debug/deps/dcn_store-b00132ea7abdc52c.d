/root/repo/target/debug/deps/dcn_store-b00132ea7abdc52c.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_store-b00132ea7abdc52c.rmeta: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
