/root/repo/target/debug/deps/fig01_02_kstack-1c38b3c95a26f067.d: crates/bench/src/bin/fig01_02_kstack.rs

/root/repo/target/debug/deps/fig01_02_kstack-1c38b3c95a26f067: crates/bench/src/bin/fig01_02_kstack.rs

crates/bench/src/bin/fig01_02_kstack.rs:
