/root/repo/target/debug/deps/disk_crypt_net-df587e700bd59a8b.d: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-df587e700bd59a8b.rlib: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-df587e700bd59a8b.rmeta: src/lib.rs

src/lib.rs:
