/root/repo/target/debug/deps/dcn_workload-fe0e38543b132bb4.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_workload-fe0e38543b132bb4.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
