/root/repo/target/debug/deps/fig06_nvme_window-0308b9c22f4848a0.d: crates/bench/src/bin/fig06_nvme_window.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_nvme_window-0308b9c22f4848a0.rmeta: crates/bench/src/bin/fig06_nvme_window.rs Cargo.toml

crates/bench/src/bin/fig06_nvme_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
