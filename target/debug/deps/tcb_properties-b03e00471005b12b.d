/root/repo/target/debug/deps/tcb_properties-b03e00471005b12b.d: crates/tcpstack/tests/tcb_properties.rs

/root/repo/target/debug/deps/tcb_properties-b03e00471005b12b: crates/tcpstack/tests/tcb_properties.rs

crates/tcpstack/tests/tcb_properties.rs:
