/root/repo/target/debug/deps/fig13_encrypted-c2f4d1d205893b2f.d: crates/bench/src/bin/fig13_encrypted.rs

/root/repo/target/debug/deps/fig13_encrypted-c2f4d1d205893b2f: crates/bench/src/bin/fig13_encrypted.rs

crates/bench/src/bin/fig13_encrypted.rs:
