/root/repo/target/debug/deps/dcn_bench-6aba593062089752.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/dcn_bench-6aba593062089752: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
