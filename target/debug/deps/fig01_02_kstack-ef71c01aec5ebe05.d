/root/repo/target/debug/deps/fig01_02_kstack-ef71c01aec5ebe05.d: crates/bench/src/bin/fig01_02_kstack.rs

/root/repo/target/debug/deps/fig01_02_kstack-ef71c01aec5ebe05: crates/bench/src/bin/fig01_02_kstack.rs

crates/bench/src/bin/fig01_02_kstack.rs:
