/root/repo/target/debug/deps/fig09_latency_cdf-c9a837357e29aa99.d: crates/bench/src/bin/fig09_latency_cdf.rs

/root/repo/target/debug/deps/fig09_latency_cdf-c9a837357e29aa99: crates/bench/src/bin/fig09_latency_cdf.rs

crates/bench/src/bin/fig09_latency_cdf.rs:
