/root/repo/target/debug/deps/fig09_latency_cdf-ee1cab9145035ca7.d: crates/bench/src/bin/fig09_latency_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_latency_cdf-ee1cab9145035ca7.rmeta: crates/bench/src/bin/fig09_latency_cdf.rs Cargo.toml

crates/bench/src/bin/fig09_latency_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
