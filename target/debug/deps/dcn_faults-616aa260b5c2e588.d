/root/repo/target/debug/deps/dcn_faults-616aa260b5c2e588.d: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_faults-616aa260b5c2e588.rmeta: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/link.rs:
crates/faults/src/nvme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
