/root/repo/target/debug/deps/dcn_netdev-61fbfcaa0b5d5ea4.d: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_netdev-61fbfcaa0b5d5ea4.rmeta: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs Cargo.toml

crates/netdev/src/lib.rs:
crates/netdev/src/nic.rs:
crates/netdev/src/pcap.rs:
crates/netdev/src/rings.rs:
crates/netdev/src/sg.rs:
crates/netdev/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
