/root/repo/target/debug/deps/fig11_plaintext-500adbf1d73b6479.d: crates/bench/src/bin/fig11_plaintext.rs

/root/repo/target/debug/deps/fig11_plaintext-500adbf1d73b6479: crates/bench/src/bin/fig11_plaintext.rs

crates/bench/src/bin/fig11_plaintext.rs:
