/root/repo/target/debug/deps/fig03_netflix_mem-4892262826baa08e.d: crates/bench/src/bin/fig03_netflix_mem.rs

/root/repo/target/debug/deps/fig03_netflix_mem-4892262826baa08e: crates/bench/src/bin/fig03_netflix_mem.rs

crates/bench/src/bin/fig03_netflix_mem.rs:
