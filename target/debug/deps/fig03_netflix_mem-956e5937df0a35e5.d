/root/repo/target/debug/deps/fig03_netflix_mem-956e5937df0a35e5.d: crates/bench/src/bin/fig03_netflix_mem.rs

/root/repo/target/debug/deps/fig03_netflix_mem-956e5937df0a35e5: crates/bench/src/bin/fig03_netflix_mem.rs

crates/bench/src/bin/fig03_netflix_mem.rs:
