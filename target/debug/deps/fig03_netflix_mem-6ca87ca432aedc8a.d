/root/repo/target/debug/deps/fig03_netflix_mem-6ca87ca432aedc8a.d: crates/bench/src/bin/fig03_netflix_mem.rs

/root/repo/target/debug/deps/fig03_netflix_mem-6ca87ca432aedc8a: crates/bench/src/bin/fig03_netflix_mem.rs

crates/bench/src/bin/fig03_netflix_mem.rs:
