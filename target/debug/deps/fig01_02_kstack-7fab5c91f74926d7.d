/root/repo/target/debug/deps/fig01_02_kstack-7fab5c91f74926d7.d: crates/bench/src/bin/fig01_02_kstack.rs

/root/repo/target/debug/deps/fig01_02_kstack-7fab5c91f74926d7: crates/bench/src/bin/fig01_02_kstack.rs

crates/bench/src/bin/fig01_02_kstack.rs:
