/root/repo/target/debug/deps/observability-97edeb483760a342.d: tests/observability.rs

/root/repo/target/debug/deps/observability-97edeb483760a342: tests/observability.rs

tests/observability.rs:
