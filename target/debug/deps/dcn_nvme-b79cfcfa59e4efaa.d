/root/repo/target/debug/deps/dcn_nvme-b79cfcfa59e4efaa.d: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

/root/repo/target/debug/deps/dcn_nvme-b79cfcfa59e4efaa: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs

crates/nvme/src/lib.rs:
crates/nvme/src/backing.rs:
crates/nvme/src/device.rs:
crates/nvme/src/firmware.rs:
crates/nvme/src/queue.rs:
