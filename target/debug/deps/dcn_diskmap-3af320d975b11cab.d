/root/repo/target/debug/deps/dcn_diskmap-3af320d975b11cab.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/debug/deps/dcn_diskmap-3af320d975b11cab: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
