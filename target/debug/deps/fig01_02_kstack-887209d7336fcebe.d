/root/repo/target/debug/deps/fig01_02_kstack-887209d7336fcebe.d: crates/bench/src/bin/fig01_02_kstack.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_02_kstack-887209d7336fcebe.rmeta: crates/bench/src/bin/fig01_02_kstack.rs Cargo.toml

crates/bench/src/bin/fig01_02_kstack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
