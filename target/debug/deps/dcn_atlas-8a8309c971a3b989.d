/root/repo/target/debug/deps/dcn_atlas-8a8309c971a3b989.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/dcn_atlas-8a8309c971a3b989: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
