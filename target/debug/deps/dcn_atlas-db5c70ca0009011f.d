/root/repo/target/debug/deps/dcn_atlas-db5c70ca0009011f.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/dcn_atlas-db5c70ca0009011f: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
