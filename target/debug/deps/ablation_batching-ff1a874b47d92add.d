/root/repo/target/debug/deps/ablation_batching-ff1a874b47d92add.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-ff1a874b47d92add: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
