/root/repo/target/debug/deps/disk_crypt_net-925961c028fb0bec.d: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-925961c028fb0bec.rlib: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-925961c028fb0bec.rmeta: src/lib.rs

src/lib.rs:
