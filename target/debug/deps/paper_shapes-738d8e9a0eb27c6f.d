/root/repo/target/debug/deps/paper_shapes-738d8e9a0eb27c6f.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-738d8e9a0eb27c6f: tests/paper_shapes.rs

tests/paper_shapes.rs:
