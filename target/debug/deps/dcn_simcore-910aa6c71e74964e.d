/root/repo/target/debug/deps/dcn_simcore-910aa6c71e74964e.d: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libdcn_simcore-910aa6c71e74964e.rlib: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libdcn_simcore-910aa6c71e74964e.rmeta: crates/simcore/src/lib.rs crates/simcore/src/ids.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/ids.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
