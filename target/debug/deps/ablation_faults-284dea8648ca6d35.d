/root/repo/target/debug/deps/ablation_faults-284dea8648ca6d35.d: crates/bench/src/bin/ablation_faults.rs Cargo.toml

/root/repo/target/debug/deps/libablation_faults-284dea8648ca6d35.rmeta: crates/bench/src/bin/ablation_faults.rs Cargo.toml

crates/bench/src/bin/ablation_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
