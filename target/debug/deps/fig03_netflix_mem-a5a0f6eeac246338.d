/root/repo/target/debug/deps/fig03_netflix_mem-a5a0f6eeac246338.d: crates/bench/src/bin/fig03_netflix_mem.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_netflix_mem-a5a0f6eeac246338.rmeta: crates/bench/src/bin/fig03_netflix_mem.rs Cargo.toml

crates/bench/src/bin/fig03_netflix_mem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
