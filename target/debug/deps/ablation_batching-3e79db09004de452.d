/root/repo/target/debug/deps/ablation_batching-3e79db09004de452.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-3e79db09004de452: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
