/root/repo/target/debug/deps/dcn_atlas-9774dd1727932456.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_atlas-9774dd1727932456.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs Cargo.toml

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
