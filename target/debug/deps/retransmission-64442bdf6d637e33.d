/root/repo/target/debug/deps/retransmission-64442bdf6d637e33.d: tests/retransmission.rs Cargo.toml

/root/repo/target/debug/deps/libretransmission-64442bdf6d637e33.rmeta: tests/retransmission.rs Cargo.toml

tests/retransmission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
