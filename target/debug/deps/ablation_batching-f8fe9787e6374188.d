/root/repo/target/debug/deps/ablation_batching-f8fe9787e6374188.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-f8fe9787e6374188: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
