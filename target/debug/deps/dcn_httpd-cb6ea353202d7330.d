/root/repo/target/debug/deps/dcn_httpd-cb6ea353202d7330.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_httpd-cb6ea353202d7330.rmeta: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs Cargo.toml

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
