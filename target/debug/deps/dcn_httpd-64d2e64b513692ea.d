/root/repo/target/debug/deps/dcn_httpd-64d2e64b513692ea.d: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_httpd-64d2e64b513692ea.rmeta: crates/httpd/src/lib.rs crates/httpd/src/client.rs crates/httpd/src/parser.rs crates/httpd/src/response.rs Cargo.toml

crates/httpd/src/lib.rs:
crates/httpd/src/client.rs:
crates/httpd/src/parser.rs:
crates/httpd/src/response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
