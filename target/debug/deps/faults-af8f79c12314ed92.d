/root/repo/target/debug/deps/faults-af8f79c12314ed92.d: tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-af8f79c12314ed92.rmeta: tests/faults.rs Cargo.toml

tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
