/root/repo/target/debug/deps/ablation_batching-7c0795c07c7fe255.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-7c0795c07c7fe255: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
