/root/repo/target/debug/deps/zz_probe-0542e73e43a834a4.d: tests/zz_probe.rs

/root/repo/target/debug/deps/zz_probe-0542e73e43a834a4: tests/zz_probe.rs

tests/zz_probe.rs:
