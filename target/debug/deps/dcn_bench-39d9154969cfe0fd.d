/root/repo/target/debug/deps/dcn_bench-39d9154969cfe0fd.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/dcn_bench-39d9154969cfe0fd: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
