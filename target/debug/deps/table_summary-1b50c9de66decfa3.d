/root/repo/target/debug/deps/table_summary-1b50c9de66decfa3.d: crates/bench/src/bin/table_summary.rs

/root/repo/target/debug/deps/table_summary-1b50c9de66decfa3: crates/bench/src/bin/table_summary.rs

crates/bench/src/bin/table_summary.rs:
