/root/repo/target/debug/deps/fig08_storage_apis-7129280f9f7b5c91.d: crates/bench/src/bin/fig08_storage_apis.rs

/root/repo/target/debug/deps/fig08_storage_apis-7129280f9f7b5c91: crates/bench/src/bin/fig08_storage_apis.rs

crates/bench/src/bin/fig08_storage_apis.rs:
