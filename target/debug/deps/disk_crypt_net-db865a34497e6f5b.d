/root/repo/target/debug/deps/disk_crypt_net-db865a34497e6f5b.d: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-db865a34497e6f5b.rlib: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-db865a34497e6f5b.rmeta: src/lib.rs

src/lib.rs:
