/root/repo/target/debug/deps/dcn_workload-bab7be42e0103c50.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/libdcn_workload-bab7be42e0103c50.rlib: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/libdcn_workload-bab7be42e0103c50.rmeta: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
