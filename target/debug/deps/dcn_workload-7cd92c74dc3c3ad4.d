/root/repo/target/debug/deps/dcn_workload-7cd92c74dc3c3ad4.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/dcn_workload-7cd92c74dc3c3ad4: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
