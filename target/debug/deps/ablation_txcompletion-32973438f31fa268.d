/root/repo/target/debug/deps/ablation_txcompletion-32973438f31fa268.d: crates/bench/src/bin/ablation_txcompletion.rs

/root/repo/target/debug/deps/ablation_txcompletion-32973438f31fa268: crates/bench/src/bin/ablation_txcompletion.rs

crates/bench/src/bin/ablation_txcompletion.rs:
