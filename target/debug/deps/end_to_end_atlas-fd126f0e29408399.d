/root/repo/target/debug/deps/end_to_end_atlas-fd126f0e29408399.d: tests/end_to_end_atlas.rs

/root/repo/target/debug/deps/end_to_end_atlas-fd126f0e29408399: tests/end_to_end_atlas.rs

tests/end_to_end_atlas.rs:
