/root/repo/target/debug/deps/fig12_14_patterns-6efbf3e9c94a5e4b.d: crates/bench/src/bin/fig12_14_patterns.rs

/root/repo/target/debug/deps/fig12_14_patterns-6efbf3e9c94a5e4b: crates/bench/src/bin/fig12_14_patterns.rs

crates/bench/src/bin/fig12_14_patterns.rs:
