/root/repo/target/debug/deps/fig01_02_kstack-de17d6f39fc1872f.d: crates/bench/src/bin/fig01_02_kstack.rs

/root/repo/target/debug/deps/fig01_02_kstack-de17d6f39fc1872f: crates/bench/src/bin/fig01_02_kstack.rs

crates/bench/src/bin/fig01_02_kstack.rs:
