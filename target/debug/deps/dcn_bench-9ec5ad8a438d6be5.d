/root/repo/target/debug/deps/dcn_bench-9ec5ad8a438d6be5.d: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-9ec5ad8a438d6be5.rlib: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libdcn_bench-9ec5ad8a438d6be5.rmeta: crates/bench/src/lib.rs crates/bench/src/storage.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/storage.rs:
crates/bench/src/sweep.rs:
