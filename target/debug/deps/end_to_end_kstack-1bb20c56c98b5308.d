/root/repo/target/debug/deps/end_to_end_kstack-1bb20c56c98b5308.d: tests/end_to_end_kstack.rs

/root/repo/target/debug/deps/end_to_end_kstack-1bb20c56c98b5308: tests/end_to_end_kstack.rs

tests/end_to_end_kstack.rs:
