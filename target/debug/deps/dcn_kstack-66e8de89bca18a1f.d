/root/repo/target/debug/deps/dcn_kstack-66e8de89bca18a1f.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/libdcn_kstack-66e8de89bca18a1f.rlib: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/libdcn_kstack-66e8de89bca18a1f.rmeta: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
