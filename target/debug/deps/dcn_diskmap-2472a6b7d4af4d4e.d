/root/repo/target/debug/deps/dcn_diskmap-2472a6b7d4af4d4e.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_diskmap-2472a6b7d4af4d4e.rmeta: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs Cargo.toml

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
