/root/repo/target/debug/deps/dcn_crypto-adb8e792629caf9d.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_crypto-adb8e792629caf9d.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/record.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
