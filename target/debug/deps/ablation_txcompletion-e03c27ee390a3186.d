/root/repo/target/debug/deps/ablation_txcompletion-e03c27ee390a3186.d: crates/bench/src/bin/ablation_txcompletion.rs Cargo.toml

/root/repo/target/debug/deps/libablation_txcompletion-e03c27ee390a3186.rmeta: crates/bench/src/bin/ablation_txcompletion.rs Cargo.toml

crates/bench/src/bin/ablation_txcompletion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
