/root/repo/target/debug/deps/fig03_netflix_mem-e7ba88ece4e3e28d.d: crates/bench/src/bin/fig03_netflix_mem.rs

/root/repo/target/debug/deps/fig03_netflix_mem-e7ba88ece4e3e28d: crates/bench/src/bin/fig03_netflix_mem.rs

crates/bench/src/bin/fig03_netflix_mem.rs:
