/root/repo/target/debug/deps/ablation_watermark-91424b970a1062be.d: crates/bench/src/bin/ablation_watermark.rs

/root/repo/target/debug/deps/ablation_watermark-91424b970a1062be: crates/bench/src/bin/ablation_watermark.rs

crates/bench/src/bin/ablation_watermark.rs:
