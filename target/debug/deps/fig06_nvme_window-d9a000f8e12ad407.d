/root/repo/target/debug/deps/fig06_nvme_window-d9a000f8e12ad407.d: crates/bench/src/bin/fig06_nvme_window.rs

/root/repo/target/debug/deps/fig06_nvme_window-d9a000f8e12ad407: crates/bench/src/bin/fig06_nvme_window.rs

crates/bench/src/bin/fig06_nvme_window.rs:
