/root/repo/target/debug/deps/fig13_encrypted-020092857c024047.d: crates/bench/src/bin/fig13_encrypted.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_encrypted-020092857c024047.rmeta: crates/bench/src/bin/fig13_encrypted.rs Cargo.toml

crates/bench/src/bin/fig13_encrypted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
