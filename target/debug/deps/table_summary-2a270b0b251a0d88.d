/root/repo/target/debug/deps/table_summary-2a270b0b251a0d88.d: crates/bench/src/bin/table_summary.rs Cargo.toml

/root/repo/target/debug/deps/libtable_summary-2a270b0b251a0d88.rmeta: crates/bench/src/bin/table_summary.rs Cargo.toml

crates/bench/src/bin/table_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
