/root/repo/target/debug/deps/dcn_nvme-11a58f92a5abe682.d: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_nvme-11a58f92a5abe682.rmeta: crates/nvme/src/lib.rs crates/nvme/src/backing.rs crates/nvme/src/device.rs crates/nvme/src/firmware.rs crates/nvme/src/queue.rs Cargo.toml

crates/nvme/src/lib.rs:
crates/nvme/src/backing.rs:
crates/nvme/src/device.rs:
crates/nvme/src/firmware.rs:
crates/nvme/src/queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
