/root/repo/target/debug/deps/ablation_txcompletion-61fd67df8181d572.d: crates/bench/src/bin/ablation_txcompletion.rs Cargo.toml

/root/repo/target/debug/deps/libablation_txcompletion-61fd67df8181d572.rmeta: crates/bench/src/bin/ablation_txcompletion.rs Cargo.toml

crates/bench/src/bin/ablation_txcompletion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
