/root/repo/target/debug/deps/retransmission-74f641c2dc156510.d: tests/retransmission.rs

/root/repo/target/debug/deps/retransmission-74f641c2dc156510: tests/retransmission.rs

tests/retransmission.rs:
