/root/repo/target/debug/deps/ablation_faults-83d9ed338682a0c7.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/ablation_faults-83d9ed338682a0c7: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
