/root/repo/target/debug/deps/observability-e971fc04df711d0f.d: tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-e971fc04df711d0f.rmeta: tests/observability.rs Cargo.toml

tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
