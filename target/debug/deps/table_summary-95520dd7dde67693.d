/root/repo/target/debug/deps/table_summary-95520dd7dde67693.d: crates/bench/src/bin/table_summary.rs

/root/repo/target/debug/deps/table_summary-95520dd7dde67693: crates/bench/src/bin/table_summary.rs

crates/bench/src/bin/table_summary.rs:
