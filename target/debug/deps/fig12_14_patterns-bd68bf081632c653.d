/root/repo/target/debug/deps/fig12_14_patterns-bd68bf081632c653.d: crates/bench/src/bin/fig12_14_patterns.rs

/root/repo/target/debug/deps/fig12_14_patterns-bd68bf081632c653: crates/bench/src/bin/fig12_14_patterns.rs

crates/bench/src/bin/fig12_14_patterns.rs:
