/root/repo/target/debug/deps/dcn_kstack-c9788fd93b39f9b3.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/dcn_kstack-c9788fd93b39f9b3: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
