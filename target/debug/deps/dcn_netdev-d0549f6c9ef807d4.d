/root/repo/target/debug/deps/dcn_netdev-d0549f6c9ef807d4.d: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/debug/deps/libdcn_netdev-d0549f6c9ef807d4.rlib: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

/root/repo/target/debug/deps/libdcn_netdev-d0549f6c9ef807d4.rmeta: crates/netdev/src/lib.rs crates/netdev/src/nic.rs crates/netdev/src/pcap.rs crates/netdev/src/rings.rs crates/netdev/src/sg.rs crates/netdev/src/wire.rs

crates/netdev/src/lib.rs:
crates/netdev/src/nic.rs:
crates/netdev/src/pcap.rs:
crates/netdev/src/rings.rs:
crates/netdev/src/sg.rs:
crates/netdev/src/wire.rs:
