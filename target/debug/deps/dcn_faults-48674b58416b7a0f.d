/root/repo/target/debug/deps/dcn_faults-48674b58416b7a0f.d: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs

/root/repo/target/debug/deps/dcn_faults-48674b58416b7a0f: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs

crates/faults/src/lib.rs:
crates/faults/src/link.rs:
crates/faults/src/nvme.rs:
