/root/repo/target/debug/deps/fig09_latency_cdf-fb6411c5656019e9.d: crates/bench/src/bin/fig09_latency_cdf.rs

/root/repo/target/debug/deps/fig09_latency_cdf-fb6411c5656019e9: crates/bench/src/bin/fig09_latency_cdf.rs

crates/bench/src/bin/fig09_latency_cdf.rs:
