/root/repo/target/debug/deps/disk_crypt_net-e0e7f641e6f939a9.d: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-e0e7f641e6f939a9.rlib: src/lib.rs

/root/repo/target/debug/deps/libdisk_crypt_net-e0e7f641e6f939a9.rmeta: src/lib.rs

src/lib.rs:
