/root/repo/target/debug/deps/dcn_kstack-1bb0d3da9c9a3744.d: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

/root/repo/target/debug/deps/dcn_kstack-1bb0d3da9c9a3744: crates/kstack/src/lib.rs crates/kstack/src/conn.rs crates/kstack/src/server.rs

crates/kstack/src/lib.rs:
crates/kstack/src/conn.rs:
crates/kstack/src/server.rs:
