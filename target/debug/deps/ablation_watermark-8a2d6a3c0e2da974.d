/root/repo/target/debug/deps/ablation_watermark-8a2d6a3c0e2da974.d: crates/bench/src/bin/ablation_watermark.rs Cargo.toml

/root/repo/target/debug/deps/libablation_watermark-8a2d6a3c0e2da974.rmeta: crates/bench/src/bin/ablation_watermark.rs Cargo.toml

crates/bench/src/bin/ablation_watermark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
