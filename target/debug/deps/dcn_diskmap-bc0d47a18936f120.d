/root/repo/target/debug/deps/dcn_diskmap-bc0d47a18936f120.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/debug/deps/dcn_diskmap-bc0d47a18936f120: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
