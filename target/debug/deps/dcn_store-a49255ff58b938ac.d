/root/repo/target/debug/deps/dcn_store-a49255ff58b938ac.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/debug/deps/libdcn_store-a49255ff58b938ac.rlib: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/debug/deps/libdcn_store-a49255ff58b938ac.rmeta: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
