/root/repo/target/debug/deps/dcn_faults-bc8faa133caceb3e.d: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs

/root/repo/target/debug/deps/libdcn_faults-bc8faa133caceb3e.rlib: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs

/root/repo/target/debug/deps/libdcn_faults-bc8faa133caceb3e.rmeta: crates/faults/src/lib.rs crates/faults/src/link.rs crates/faults/src/nvme.rs

crates/faults/src/lib.rs:
crates/faults/src/link.rs:
crates/faults/src/nvme.rs:
