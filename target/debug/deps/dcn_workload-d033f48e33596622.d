/root/repo/target/debug/deps/dcn_workload-d033f48e33596622.d: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

/root/repo/target/debug/deps/dcn_workload-d033f48e33596622: crates/workload/src/lib.rs crates/workload/src/fleet.rs crates/workload/src/runner.rs

crates/workload/src/lib.rs:
crates/workload/src/fleet.rs:
crates/workload/src/runner.rs:
