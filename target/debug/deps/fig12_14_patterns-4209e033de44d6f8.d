/root/repo/target/debug/deps/fig12_14_patterns-4209e033de44d6f8.d: crates/bench/src/bin/fig12_14_patterns.rs

/root/repo/target/debug/deps/fig12_14_patterns-4209e033de44d6f8: crates/bench/src/bin/fig12_14_patterns.rs

crates/bench/src/bin/fig12_14_patterns.rs:
