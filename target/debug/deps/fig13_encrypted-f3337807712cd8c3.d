/root/repo/target/debug/deps/fig13_encrypted-f3337807712cd8c3.d: crates/bench/src/bin/fig13_encrypted.rs

/root/repo/target/debug/deps/fig13_encrypted-f3337807712cd8c3: crates/bench/src/bin/fig13_encrypted.rs

crates/bench/src/bin/fig13_encrypted.rs:
