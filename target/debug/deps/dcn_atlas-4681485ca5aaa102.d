/root/repo/target/debug/deps/dcn_atlas-4681485ca5aaa102.d: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/libdcn_atlas-4681485ca5aaa102.rlib: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

/root/repo/target/debug/deps/libdcn_atlas-4681485ca5aaa102.rmeta: crates/atlas/src/lib.rs crates/atlas/src/conn.rs crates/atlas/src/server.rs

crates/atlas/src/lib.rs:
crates/atlas/src/conn.rs:
crates/atlas/src/server.rs:
