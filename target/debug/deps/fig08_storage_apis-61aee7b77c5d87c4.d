/root/repo/target/debug/deps/fig08_storage_apis-61aee7b77c5d87c4.d: crates/bench/src/bin/fig08_storage_apis.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_storage_apis-61aee7b77c5d87c4.rmeta: crates/bench/src/bin/fig08_storage_apis.rs Cargo.toml

crates/bench/src/bin/fig08_storage_apis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
