/root/repo/target/debug/deps/dcn_store-6ce942d807c83d7e.d: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/debug/deps/libdcn_store-6ce942d807c83d7e.rlib: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

/root/repo/target/debug/deps/libdcn_store-6ce942d807c83d7e.rmeta: crates/store/src/lib.rs crates/store/src/bufcache.rs crates/store/src/catalog.rs

crates/store/src/lib.rs:
crates/store/src/bufcache.rs:
crates/store/src/catalog.rs:
