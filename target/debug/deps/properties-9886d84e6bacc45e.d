/root/repo/target/debug/deps/properties-9886d84e6bacc45e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-9886d84e6bacc45e: tests/properties.rs

tests/properties.rs:
