/root/repo/target/debug/deps/ablation_batching-42858bc66d914573.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-42858bc66d914573: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
