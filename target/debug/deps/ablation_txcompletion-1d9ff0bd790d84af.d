/root/repo/target/debug/deps/ablation_txcompletion-1d9ff0bd790d84af.d: crates/bench/src/bin/ablation_txcompletion.rs

/root/repo/target/debug/deps/ablation_txcompletion-1d9ff0bd790d84af: crates/bench/src/bin/ablation_txcompletion.rs

crates/bench/src/bin/ablation_txcompletion.rs:
