/root/repo/target/debug/deps/end_to_end_kstack-0488bcc6e13ef5ff.d: tests/end_to_end_kstack.rs

/root/repo/target/debug/deps/end_to_end_kstack-0488bcc6e13ef5ff: tests/end_to_end_kstack.rs

tests/end_to_end_kstack.rs:
