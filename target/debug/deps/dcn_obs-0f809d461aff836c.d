/root/repo/target/debug/deps/dcn_obs-0f809d461aff836c.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/dcn_obs-0f809d461aff836c: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/registry.rs:
crates/obs/src/trace.rs:
