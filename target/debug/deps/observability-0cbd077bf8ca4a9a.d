/root/repo/target/debug/deps/observability-0cbd077bf8ca4a9a.d: tests/observability.rs

/root/repo/target/debug/deps/observability-0cbd077bf8ca4a9a: tests/observability.rs

tests/observability.rs:
