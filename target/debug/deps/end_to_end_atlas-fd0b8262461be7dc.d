/root/repo/target/debug/deps/end_to_end_atlas-fd0b8262461be7dc.d: tests/end_to_end_atlas.rs

/root/repo/target/debug/deps/end_to_end_atlas-fd0b8262461be7dc: tests/end_to_end_atlas.rs

tests/end_to_end_atlas.rs:
