/root/repo/target/debug/deps/dcn_tcpstack-acc61253bb0635cb.d: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_tcpstack-acc61253bb0635cb.rmeta: crates/tcpstack/src/lib.rs crates/tcpstack/src/cc.rs crates/tcpstack/src/client.rs crates/tcpstack/src/obs.rs crates/tcpstack/src/rto.rs crates/tcpstack/src/tcb.rs Cargo.toml

crates/tcpstack/src/lib.rs:
crates/tcpstack/src/cc.rs:
crates/tcpstack/src/client.rs:
crates/tcpstack/src/obs.rs:
crates/tcpstack/src/rto.rs:
crates/tcpstack/src/tcb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
