/root/repo/target/debug/deps/dcn_diskmap-c1e97dd04c2bc873.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_diskmap-c1e97dd04c2bc873.rmeta: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs Cargo.toml

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
