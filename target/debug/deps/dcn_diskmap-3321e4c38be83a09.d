/root/repo/target/debug/deps/dcn_diskmap-3321e4c38be83a09.d: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/debug/deps/libdcn_diskmap-3321e4c38be83a09.rlib: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

/root/repo/target/debug/deps/libdcn_diskmap-3321e4c38be83a09.rmeta: crates/diskmap/src/lib.rs crates/diskmap/src/baseline.rs crates/diskmap/src/bufpool.rs crates/diskmap/src/iommu.rs crates/diskmap/src/kernel.rs crates/diskmap/src/libnvme.rs

crates/diskmap/src/lib.rs:
crates/diskmap/src/baseline.rs:
crates/diskmap/src/bufpool.rs:
crates/diskmap/src/iommu.rs:
crates/diskmap/src/kernel.rs:
crates/diskmap/src/libnvme.rs:
