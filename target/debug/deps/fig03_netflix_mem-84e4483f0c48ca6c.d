/root/repo/target/debug/deps/fig03_netflix_mem-84e4483f0c48ca6c.d: crates/bench/src/bin/fig03_netflix_mem.rs

/root/repo/target/debug/deps/fig03_netflix_mem-84e4483f0c48ca6c: crates/bench/src/bin/fig03_netflix_mem.rs

crates/bench/src/bin/fig03_netflix_mem.rs:
