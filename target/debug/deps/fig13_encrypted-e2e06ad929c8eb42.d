/root/repo/target/debug/deps/fig13_encrypted-e2e06ad929c8eb42.d: crates/bench/src/bin/fig13_encrypted.rs

/root/repo/target/debug/deps/fig13_encrypted-e2e06ad929c8eb42: crates/bench/src/bin/fig13_encrypted.rs

crates/bench/src/bin/fig13_encrypted.rs:
