/root/repo/target/debug/deps/dcn_crypto-7837440ec7a7f3dc.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/debug/deps/libdcn_crypto-7837440ec7a7f3dc.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/debug/deps/libdcn_crypto-7837440ec7a7f3dc.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/record.rs:
