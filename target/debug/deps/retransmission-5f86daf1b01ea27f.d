/root/repo/target/debug/deps/retransmission-5f86daf1b01ea27f.d: tests/retransmission.rs Cargo.toml

/root/repo/target/debug/deps/libretransmission-5f86daf1b01ea27f.rmeta: tests/retransmission.rs Cargo.toml

tests/retransmission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
