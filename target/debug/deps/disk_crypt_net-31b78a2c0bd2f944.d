/root/repo/target/debug/deps/disk_crypt_net-31b78a2c0bd2f944.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdisk_crypt_net-31b78a2c0bd2f944.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
