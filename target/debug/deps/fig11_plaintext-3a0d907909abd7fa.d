/root/repo/target/debug/deps/fig11_plaintext-3a0d907909abd7fa.d: crates/bench/src/bin/fig11_plaintext.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_plaintext-3a0d907909abd7fa.rmeta: crates/bench/src/bin/fig11_plaintext.rs Cargo.toml

crates/bench/src/bin/fig11_plaintext.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
