/root/repo/target/debug/deps/dcn_crypto-63393c7ab2b0c241.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/debug/deps/libdcn_crypto-63393c7ab2b0c241.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

/root/repo/target/debug/deps/libdcn_crypto-63393c7ab2b0c241.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/record.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/record.rs:
