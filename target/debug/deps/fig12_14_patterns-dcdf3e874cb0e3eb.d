/root/repo/target/debug/deps/fig12_14_patterns-dcdf3e874cb0e3eb.d: crates/bench/src/bin/fig12_14_patterns.rs

/root/repo/target/debug/deps/fig12_14_patterns-dcdf3e874cb0e3eb: crates/bench/src/bin/fig12_14_patterns.rs

crates/bench/src/bin/fig12_14_patterns.rs:
