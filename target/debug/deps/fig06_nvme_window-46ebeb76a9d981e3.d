/root/repo/target/debug/deps/fig06_nvme_window-46ebeb76a9d981e3.d: crates/bench/src/bin/fig06_nvme_window.rs

/root/repo/target/debug/deps/fig06_nvme_window-46ebeb76a9d981e3: crates/bench/src/bin/fig06_nvme_window.rs

crates/bench/src/bin/fig06_nvme_window.rs:
