/root/repo/target/debug/libdcn_packet.rlib: /root/repo/crates/packet/src/eth.rs /root/repo/crates/packet/src/ipv4.rs /root/repo/crates/packet/src/lib.rs /root/repo/crates/packet/src/tcp.rs
