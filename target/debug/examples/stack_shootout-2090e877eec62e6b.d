/root/repo/target/debug/examples/stack_shootout-2090e877eec62e6b.d: examples/stack_shootout.rs

/root/repo/target/debug/examples/stack_shootout-2090e877eec62e6b: examples/stack_shootout.rs

examples/stack_shootout.rs:
