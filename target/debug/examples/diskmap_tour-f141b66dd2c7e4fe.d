/root/repo/target/debug/examples/diskmap_tour-f141b66dd2c7e4fe.d: examples/diskmap_tour.rs

/root/repo/target/debug/examples/diskmap_tour-f141b66dd2c7e4fe: examples/diskmap_tour.rs

examples/diskmap_tour.rs:
