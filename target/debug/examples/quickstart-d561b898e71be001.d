/root/repo/target/debug/examples/quickstart-d561b898e71be001.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d561b898e71be001: examples/quickstart.rs

examples/quickstart.rs:
