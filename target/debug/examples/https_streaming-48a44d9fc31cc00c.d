/root/repo/target/debug/examples/https_streaming-48a44d9fc31cc00c.d: examples/https_streaming.rs

/root/repo/target/debug/examples/https_streaming-48a44d9fc31cc00c: examples/https_streaming.rs

examples/https_streaming.rs:
