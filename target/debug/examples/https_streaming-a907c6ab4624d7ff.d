/root/repo/target/debug/examples/https_streaming-a907c6ab4624d7ff.d: examples/https_streaming.rs Cargo.toml

/root/repo/target/debug/examples/libhttps_streaming-a907c6ab4624d7ff.rmeta: examples/https_streaming.rs Cargo.toml

examples/https_streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
