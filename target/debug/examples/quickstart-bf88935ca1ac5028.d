/root/repo/target/debug/examples/quickstart-bf88935ca1ac5028.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-bf88935ca1ac5028.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
