/root/repo/target/debug/examples/diskmap_tour-fa724ff5533dd36a.d: examples/diskmap_tour.rs

/root/repo/target/debug/examples/diskmap_tour-fa724ff5533dd36a: examples/diskmap_tour.rs

examples/diskmap_tour.rs:
