/root/repo/target/debug/examples/https_streaming-1e068adf3f9153b1.d: examples/https_streaming.rs

/root/repo/target/debug/examples/https_streaming-1e068adf3f9153b1: examples/https_streaming.rs

examples/https_streaming.rs:
