/root/repo/target/debug/examples/diskmap_tour-e5cbaf5aa73d21ca.d: examples/diskmap_tour.rs

/root/repo/target/debug/examples/diskmap_tour-e5cbaf5aa73d21ca: examples/diskmap_tour.rs

examples/diskmap_tour.rs:
