/root/repo/target/debug/examples/quickstart-2f46997b574d8874.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2f46997b574d8874: examples/quickstart.rs

examples/quickstart.rs:
