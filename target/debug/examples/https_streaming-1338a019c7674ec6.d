/root/repo/target/debug/examples/https_streaming-1338a019c7674ec6.d: examples/https_streaming.rs

/root/repo/target/debug/examples/https_streaming-1338a019c7674ec6: examples/https_streaming.rs

examples/https_streaming.rs:
