/root/repo/target/debug/examples/https_streaming-5e179c4dbbdc002d.d: examples/https_streaming.rs

/root/repo/target/debug/examples/https_streaming-5e179c4dbbdc002d: examples/https_streaming.rs

examples/https_streaming.rs:
