/root/repo/target/debug/examples/stack_shootout-48f791f75f69c7cf.d: examples/stack_shootout.rs

/root/repo/target/debug/examples/stack_shootout-48f791f75f69c7cf: examples/stack_shootout.rs

examples/stack_shootout.rs:
