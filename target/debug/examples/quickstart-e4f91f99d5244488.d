/root/repo/target/debug/examples/quickstart-e4f91f99d5244488.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e4f91f99d5244488.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
