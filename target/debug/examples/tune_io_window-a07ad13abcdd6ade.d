/root/repo/target/debug/examples/tune_io_window-a07ad13abcdd6ade.d: examples/tune_io_window.rs

/root/repo/target/debug/examples/tune_io_window-a07ad13abcdd6ade: examples/tune_io_window.rs

examples/tune_io_window.rs:
