/root/repo/target/debug/examples/diskmap_tour-309dc6053fbcecea.d: examples/diskmap_tour.rs Cargo.toml

/root/repo/target/debug/examples/libdiskmap_tour-309dc6053fbcecea.rmeta: examples/diskmap_tour.rs Cargo.toml

examples/diskmap_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
