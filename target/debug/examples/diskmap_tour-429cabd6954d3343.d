/root/repo/target/debug/examples/diskmap_tour-429cabd6954d3343.d: examples/diskmap_tour.rs

/root/repo/target/debug/examples/diskmap_tour-429cabd6954d3343: examples/diskmap_tour.rs

examples/diskmap_tour.rs:
