/root/repo/target/debug/examples/diskmap_tour-e0ad3949f5aa3675.d: examples/diskmap_tour.rs Cargo.toml

/root/repo/target/debug/examples/libdiskmap_tour-e0ad3949f5aa3675.rmeta: examples/diskmap_tour.rs Cargo.toml

examples/diskmap_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
