/root/repo/target/debug/examples/https_streaming-12bb066659d4f383.d: examples/https_streaming.rs Cargo.toml

/root/repo/target/debug/examples/libhttps_streaming-12bb066659d4f383.rmeta: examples/https_streaming.rs Cargo.toml

examples/https_streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
