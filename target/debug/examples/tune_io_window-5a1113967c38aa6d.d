/root/repo/target/debug/examples/tune_io_window-5a1113967c38aa6d.d: examples/tune_io_window.rs Cargo.toml

/root/repo/target/debug/examples/libtune_io_window-5a1113967c38aa6d.rmeta: examples/tune_io_window.rs Cargo.toml

examples/tune_io_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
