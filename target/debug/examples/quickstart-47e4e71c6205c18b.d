/root/repo/target/debug/examples/quickstart-47e4e71c6205c18b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-47e4e71c6205c18b: examples/quickstart.rs

examples/quickstart.rs:
