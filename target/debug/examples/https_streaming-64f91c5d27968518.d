/root/repo/target/debug/examples/https_streaming-64f91c5d27968518.d: examples/https_streaming.rs Cargo.toml

/root/repo/target/debug/examples/libhttps_streaming-64f91c5d27968518.rmeta: examples/https_streaming.rs Cargo.toml

examples/https_streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
