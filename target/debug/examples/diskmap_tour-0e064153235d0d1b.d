/root/repo/target/debug/examples/diskmap_tour-0e064153235d0d1b.d: examples/diskmap_tour.rs

/root/repo/target/debug/examples/diskmap_tour-0e064153235d0d1b: examples/diskmap_tour.rs

examples/diskmap_tour.rs:
