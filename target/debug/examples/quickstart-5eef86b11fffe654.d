/root/repo/target/debug/examples/quickstart-5eef86b11fffe654.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5eef86b11fffe654: examples/quickstart.rs

examples/quickstart.rs:
