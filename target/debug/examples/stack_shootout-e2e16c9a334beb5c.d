/root/repo/target/debug/examples/stack_shootout-e2e16c9a334beb5c.d: examples/stack_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libstack_shootout-e2e16c9a334beb5c.rmeta: examples/stack_shootout.rs Cargo.toml

examples/stack_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
