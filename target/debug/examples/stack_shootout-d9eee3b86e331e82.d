/root/repo/target/debug/examples/stack_shootout-d9eee3b86e331e82.d: examples/stack_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libstack_shootout-d9eee3b86e331e82.rmeta: examples/stack_shootout.rs Cargo.toml

examples/stack_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
