/root/repo/target/debug/examples/tune_io_window-89a7963578fc633a.d: examples/tune_io_window.rs

/root/repo/target/debug/examples/tune_io_window-89a7963578fc633a: examples/tune_io_window.rs

examples/tune_io_window.rs:
