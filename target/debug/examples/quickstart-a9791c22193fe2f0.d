/root/repo/target/debug/examples/quickstart-a9791c22193fe2f0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a9791c22193fe2f0: examples/quickstart.rs

examples/quickstart.rs:
