/root/repo/target/debug/examples/stack_shootout-83170ab271ee98a7.d: examples/stack_shootout.rs

/root/repo/target/debug/examples/stack_shootout-83170ab271ee98a7: examples/stack_shootout.rs

examples/stack_shootout.rs:
