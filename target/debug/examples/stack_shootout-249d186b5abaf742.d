/root/repo/target/debug/examples/stack_shootout-249d186b5abaf742.d: examples/stack_shootout.rs

/root/repo/target/debug/examples/stack_shootout-249d186b5abaf742: examples/stack_shootout.rs

examples/stack_shootout.rs:
