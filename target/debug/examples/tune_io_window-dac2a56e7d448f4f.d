/root/repo/target/debug/examples/tune_io_window-dac2a56e7d448f4f.d: examples/tune_io_window.rs

/root/repo/target/debug/examples/tune_io_window-dac2a56e7d448f4f: examples/tune_io_window.rs

examples/tune_io_window.rs:
