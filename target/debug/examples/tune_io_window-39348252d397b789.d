/root/repo/target/debug/examples/tune_io_window-39348252d397b789.d: examples/tune_io_window.rs

/root/repo/target/debug/examples/tune_io_window-39348252d397b789: examples/tune_io_window.rs

examples/tune_io_window.rs:
