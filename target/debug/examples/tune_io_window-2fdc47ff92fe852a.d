/root/repo/target/debug/examples/tune_io_window-2fdc47ff92fe852a.d: examples/tune_io_window.rs

/root/repo/target/debug/examples/tune_io_window-2fdc47ff92fe852a: examples/tune_io_window.rs

examples/tune_io_window.rs:
