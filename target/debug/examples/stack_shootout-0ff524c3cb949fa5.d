/root/repo/target/debug/examples/stack_shootout-0ff524c3cb949fa5.d: examples/stack_shootout.rs

/root/repo/target/debug/examples/stack_shootout-0ff524c3cb949fa5: examples/stack_shootout.rs

examples/stack_shootout.rs:
