/root/repo/target/debug/examples/https_streaming-d091c3d64f221290.d: examples/https_streaming.rs

/root/repo/target/debug/examples/https_streaming-d091c3d64f221290: examples/https_streaming.rs

examples/https_streaming.rs:
