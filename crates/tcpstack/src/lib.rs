//! # dcn-tcpstack — the userspace TCP engine
//!
//! A Sandstorm-descended TCP implementation (§3.2) shared by both
//! stacks in the comparison:
//!
//! * **Atlas** drives it pull-based: the TCB never owns payload; when
//!   ACKs open congestion-window space the stack raises a
//!   [`TcbEvent::WindowOpen`] and the application fetches data from
//!   disk just-in-time. There are **no socket buffers**; a loss event
//!   surfaces as [`TcbEvent::NeedRetransmit`] with stream offsets so
//!   the owner can re-fetch from disk and re-encrypt statelessly.
//! * The **conventional-stack model** drives the same engine from
//!   socket buffers, as FreeBSD would.
//!
//! The engine is a pure state machine (smoltcp-style): segments in,
//! `TcpOutput` descriptors + events out; all policy costs (cycles,
//! syscalls) are charged by the stack layer that owns it.
//!
//! Implemented: three-way handshake (listener side and client side),
//! IW10 slow start, NewReno and CUBIC congestion control, RFC 6298
//! RTO with Karn's rule, fast retransmit on three duplicate ACKs,
//! window scaling, TSO-sized sends, FIN teardown in both directions.
//! Out of scope (as in the paper's stack): SACK, timestamps, urgent
//! data, silly-window avoidance.

pub mod cc;
pub mod client;
pub mod obs;
pub mod rto;
pub mod tcb;

pub use cc::{CcAlgo, CcKind};
pub use client::ClientConn;
pub use obs::publish_tcb_metrics;
pub use rto::RttEstimator;
pub use tcb::{rst_for_syn, Endpoint, Tcb, TcbConfig, TcbEvent, TcbState, TcpOutput};
