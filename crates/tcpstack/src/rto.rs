//! RTT estimation and retransmission timeout per RFC 6298.

use dcn_simcore::Nanos;

/// SRTT/RTTVAR estimator with exponential RTO backoff and Karn's
/// rule (callers must not feed samples from retransmitted segments —
/// the TCB enforces that by dropping its sample on retransmit).
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<Nanos>,
    rttvar: Nanos,
    rto: Nanos,
    backoff: u32,
    min_rto: Nanos,
    max_rto: Nanos,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new(Nanos::from_millis(200), Nanos::from_secs(60))
    }
}

impl RttEstimator {
    /// `min_rto`: FreeBSD uses 200 ms (the classic BSD tick floor).
    #[must_use]
    pub fn new(min_rto: Nanos, max_rto: Nanos) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Nanos::ZERO,
            rto: Nanos::from_secs(1), // RFC 6298 initial RTO
            backoff: 0,
            min_rto,
            max_rto,
        }
    }

    /// Feed one RTT sample (from a never-retransmitted segment).
    pub fn sample(&mut self, rtt: Nanos) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = Nanos(rtt.0 / 2);
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                let err = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = Nanos(self.rttvar.0 * 3 / 4 + err.0 / 4);
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some(Nanos(srtt.0 * 7 / 8 + rtt.0 / 8));
            }
        }
        self.backoff = 0;
        self.recompute();
    }

    fn recompute(&mut self) {
        let srtt = self.srtt.unwrap_or(Nanos::from_secs(1));
        let base = Nanos(srtt.0 + (4 * self.rttvar.0).max(Nanos::from_millis(10).0));
        let scaled = Nanos(base.0.saturating_mul(1 << self.backoff.min(16)));
        self.rto = scaled.max(self.min_rto).min(self.max_rto);
    }

    /// Current retransmission timeout.
    #[must_use]
    pub fn rto(&self) -> Nanos {
        self.rto
    }

    /// Smoothed RTT, if a sample exists.
    #[must_use]
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }

    /// A timeout fired: double the RTO (exponential backoff).
    pub fn on_timeout(&mut self) {
        self.backoff += 1;
        self.recompute();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut r = RttEstimator::default();
        r.sample(Nanos::from_millis(20));
        assert_eq!(r.srtt(), Some(Nanos::from_millis(20)));
        // RTO = SRTT + 4*RTTVAR = 20 + 40 = 60ms, floored to 200ms min.
        assert_eq!(r.rto(), Nanos::from_millis(200));
    }

    #[test]
    fn smooths_toward_samples() {
        let mut r = RttEstimator::default();
        r.sample(Nanos::from_millis(10));
        for _ in 0..50 {
            r.sample(Nanos::from_millis(40));
        }
        let srtt = r.srtt().unwrap().as_millis_f64();
        assert!((38.0..41.0).contains(&srtt), "srtt={srtt}");
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut r = RttEstimator::default();
        r.sample(Nanos::from_millis(100));
        let base = r.rto();
        r.on_timeout();
        assert_eq!(r.rto(), Nanos(base.0 * 2));
        r.on_timeout();
        assert_eq!(r.rto(), Nanos(base.0 * 4));
        r.sample(Nanos::from_millis(100));
        // Backoff cleared: back near the un-backed-off value (RTTVAR
        // decays slightly with each consistent sample).
        assert!(
            r.rto() <= base && r.rto() >= Nanos(base.0 / 2),
            "{:?}",
            r.rto()
        );
    }

    #[test]
    fn rto_respects_bounds() {
        let mut r = RttEstimator::new(Nanos::from_millis(200), Nanos::from_secs(60));
        r.sample(Nanos::from_micros(50)); // LAN-fast
        assert_eq!(r.rto(), Nanos::from_millis(200), "min clamp");
        for _ in 0..20 {
            r.on_timeout();
        }
        assert_eq!(r.rto(), Nanos::from_secs(60), "max clamp");
    }

    #[test]
    fn jittery_samples_inflate_rttvar() {
        let mut smooth = RttEstimator::default();
        let mut jitter = RttEstimator::default();
        for i in 0..100 {
            smooth.sample(Nanos::from_millis(300));
            jitter.sample(Nanos::from_millis(if i % 2 == 0 { 100 } else { 500 }));
        }
        assert!(jitter.rto() > smooth.rto());
    }
}
