//! The TCP control block: a pure state machine with pull-based TX.
//!
//! Unlike a conventional TCB there is **no send buffer**: the owner
//! (Atlas or the kernel-stack model) is told how much window space is
//! usable and supplies payload on demand; on loss it is told which
//! *stream offsets* to re-supply (Atlas re-fetches them from disk,
//! §3.2). Received in-order payload is surfaced directly to the
//! owner (the HTTP layer) without buffering.

use crate::cc::{CcAlgo, CcKind};
use crate::rto::RttEstimator;
use dcn_netdev::{SgList, TxDescriptor};
use dcn_packet::{
    EtherType, EthernetRepr, FlowId, IpProtocol, Ipv4Repr, MacAddr, SeqNumber, TcpFlags, TcpRepr,
    ETH_HEADER_LEN, IPV4_HEADER_LEN,
};
use dcn_simcore::{earliest, Nanos};

/// Network identity of one side of a connection.
#[derive(Clone, Copy, Debug)]
pub struct Endpoint {
    pub mac: MacAddr,
    pub ip: dcn_packet::Ipv4Addr,
    pub port: u16,
}

/// Refuse a SYN without instantiating a TCB: the RST a listener sends
/// when admission control sheds the connection. Per RFC 793 the RST
/// acks `syn.seq + 1` with sequence 0, so the initiator can match it
/// to its SYN.
#[must_use]
pub fn rst_for_syn(local: Endpoint, remote: Endpoint, syn: &TcpRepr) -> TcpOutput {
    let tcp = TcpRepr {
        src_port: local.port,
        dst_port: remote.port,
        seq: SeqNumber(0),
        ack: syn.seq.wrapping_add(1),
        flags: TcpFlags::RST | TcpFlags::ACK,
        window: 0,
        mss: None,
        wscale: None,
    };
    let tcp_len = tcp.header_len();
    let ip = Ipv4Repr {
        src: local.ip,
        dst: remote.ip,
        protocol: IpProtocol::Tcp,
        payload_len: tcp_len as u16,
        ttl: 64,
    };
    let eth = EthernetRepr {
        dst: remote.mac,
        src: local.mac,
        ethertype: EtherType::Ipv4,
    };
    let mut headers = vec![0u8; ETH_HEADER_LEN + IPV4_HEADER_LEN + tcp_len];
    eth.emit(&mut headers[..ETH_HEADER_LEN]);
    ip.emit(&mut headers[ETH_HEADER_LEN..ETH_HEADER_LEN + IPV4_HEADER_LEN]);
    tcp.emit(
        &mut headers[ETH_HEADER_LEN + IPV4_HEADER_LEN..],
        ip.pseudo_header_sum(),
        &[],
    );
    TcpOutput {
        headers,
        payload: SgList::empty(),
        tso_mss: None,
        tcp_seq_off: ETH_HEADER_LEN + IPV4_HEADER_LEN + 4,
    }
}

/// Connection state (RFC 793 subset; no TIME_WAIT on the server —
/// the paper's server lets clients carry that cost).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcbState {
    SynRcvd,
    SynSent,
    Established,
    /// We sent FIN, awaiting its ACK (and possibly peer FIN).
    FinWait1,
    FinWait2,
    /// Peer sent FIN; we may still send.
    CloseWait,
    LastAck,
    Closed,
}

/// Events surfaced to the owner after processing input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TcbEvent {
    /// Handshake completed.
    Established,
    /// ACKs opened usable window space (bytes now sendable). The
    /// Atlas fetch policy (10×MSS watermark) keys off this.
    WindowOpen(u64),
    /// Cumulative ACK advanced: stream bytes `[..offset)` are
    /// delivered and their buffers may be recycled.
    AckedTo(u64),
    /// In-order payload arrived (an HTTP request on the server).
    Data(Vec<u8>),
    /// Loss detected: re-supply stream bytes `[offset, offset+len)`
    /// via [`Tcb::send_retransmit`]. Atlas re-fetches these from disk.
    NeedRetransmit { offset: u64, len: u64 },
    /// Peer closed its direction.
    PeerFin,
    /// Connection fully closed.
    Closed,
}

/// A frame to hand to the NIC.
#[derive(Debug)]
pub struct TcpOutput {
    pub headers: Vec<u8>,
    pub payload: SgList,
    pub tso_mss: Option<u16>,
    pub tcp_seq_off: usize,
}

impl TcpOutput {
    /// Convert into a NIC TX descriptor carrying `completion` token.
    #[must_use]
    pub fn into_tx(self, completion: u64) -> TxDescriptor {
        TxDescriptor {
            headers: self.headers,
            payload: self.payload,
            tso_mss: self.tso_mss,
            completion,
            tcp_seq_off: self.tcp_seq_off,
        }
    }
}

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct TcbConfig {
    pub mss: u16,
    /// Max bytes per TSO send (hardware limit ~64 KiB).
    pub tso_max: u32,
    /// Our receive window (bytes) and scale shift.
    pub rcv_wnd: u32,
    pub wscale: u8,
    pub cc: CcKind,
    pub min_rto: Nanos,
}

impl Default for TcbConfig {
    fn default() -> Self {
        TcbConfig {
            mss: 1448,
            tso_max: 63 * 1024,
            rcv_wnd: 4 << 20,
            wscale: 8,
            cc: CcKind::NewReno,
            min_rto: Nanos::from_millis(200),
        }
    }
}

/// The connection.
pub struct Tcb {
    pub state: TcbState,
    pub cfg: TcbConfig,
    pub local: Endpoint,
    pub remote: Endpoint,
    // Send state.
    iss: SeqNumber,
    snd_una: SeqNumber,
    /// Stream byte offset of `snd_una` (u64 so streams > 4 GiB work).
    snd_una_off: u64,
    snd_nxt: SeqNumber,
    /// Highest sequence ever sent (snd_nxt may rewind on RTO).
    snd_max: SeqNumber,
    snd_wnd: u64,
    peer_wscale: u8,
    fin_sent: bool,
    // Receive state.
    irs: SeqNumber,
    rcv_nxt: SeqNumber,
    // Congestion + timing.
    pub cc: CcAlgo,
    pub rtt: RttEstimator,
    rto_deadline: Option<Nanos>,
    rtt_probe: Option<(SeqNumber, Nanos)>,
    dupacks: u32,
    /// NewReno recovery point.
    recover: Option<SeqNumber>,
    /// A retransmit was requested from the owner but not yet supplied
    /// (suppresses duplicate NeedRetransmit events).
    retx_outstanding: bool,
    events: Vec<TcbEvent>,
    /// Lifetime counters.
    pub bytes_sent: u64,
    pub bytes_retransmitted: u64,
    pub segs_received: u64,
    /// Retransmission timeouts that actually fired (cwnd collapse +
    /// go-back-N) — previously uninstrumented; exported per-core via
    /// the dcn-obs registry.
    pub rto_fired: u64,
}

impl Tcb {
    // ---------------------------------------------------------- setup

    /// Passive open: build a TCB from a received SYN; returns the TCB
    /// and the SYN-ACK to emit. (The listener dispatches SYNs here.)
    pub fn accept(
        cfg: TcbConfig,
        local: Endpoint,
        remote: Endpoint,
        syn: &TcpRepr,
        iss: SeqNumber,
        now: Nanos,
    ) -> (Tcb, TcpOutput) {
        let mut tcb = Tcb::raw(cfg, local, remote, iss);
        tcb.state = TcbState::SynRcvd;
        tcb.irs = syn.seq;
        tcb.rcv_nxt = syn.seq.wrapping_add(1);
        tcb.peer_wscale = syn.wscale.unwrap_or(0);
        tcb.snd_wnd = u64::from(syn.window); // unscaled on SYN
        if let Some(m) = syn.mss {
            tcb.cfg.mss = tcb.cfg.mss.min(m);
            tcb.cc = CcAlgo::new(cfg.cc, u32::from(tcb.cfg.mss));
        }
        tcb.snd_nxt = iss.wrapping_add(1);
        tcb.snd_max = tcb.snd_nxt;
        let synack = tcb.build_output(
            iss,
            TcpFlags::SYN | TcpFlags::ACK,
            SgList::empty(),
            true,
            None,
        );
        tcb.arm_rto(now);
        (tcb, synack)
    }

    /// Active open (client side): returns the TCB and the SYN.
    pub fn connect(
        cfg: TcbConfig,
        local: Endpoint,
        remote: Endpoint,
        iss: SeqNumber,
        now: Nanos,
    ) -> (Tcb, TcpOutput) {
        let mut tcb = Tcb::raw(cfg, local, remote, iss);
        tcb.state = TcbState::SynSent;
        tcb.snd_nxt = iss.wrapping_add(1);
        tcb.snd_max = tcb.snd_nxt;
        let syn = tcb.build_output(iss, TcpFlags::SYN, SgList::empty(), true, None);
        tcb.arm_rto(now);
        (tcb, syn)
    }

    fn raw(cfg: TcbConfig, local: Endpoint, remote: Endpoint, iss: SeqNumber) -> Tcb {
        Tcb {
            state: TcbState::Closed,
            cc: CcAlgo::new(cfg.cc, u32::from(cfg.mss)),
            rtt: RttEstimator::new(cfg.min_rto, Nanos::from_secs(60)),
            cfg,
            local,
            remote,
            iss,
            snd_una: iss,
            snd_una_off: 0,
            snd_nxt: iss,
            snd_max: iss,
            snd_wnd: 0,
            peer_wscale: 0,
            fin_sent: false,
            irs: SeqNumber(0),
            rcv_nxt: SeqNumber(0),
            rto_deadline: None,
            rtt_probe: None,
            dupacks: 0,
            recover: None,
            retx_outstanding: false,
            events: Vec::new(),
            bytes_sent: 0,
            bytes_retransmitted: 0,
            segs_received: 0,
            rto_fired: 0,
        }
    }

    // ------------------------------------------------------- plumbing

    #[must_use]
    pub fn flow(&self) -> FlowId {
        FlowId {
            src_ip: self.local.ip,
            dst_ip: self.remote.ip,
            src_port: self.local.port,
            dst_port: self.remote.port,
        }
    }

    /// Map a sequence number on our send direction to a stream byte
    /// offset (0 = first payload byte after the handshake). Valid for
    /// sequence numbers within ±2 GiB of `snd_una`, i.e. anything in
    /// or near the current window.
    #[must_use]
    pub fn stream_offset(&self, seq: SeqNumber) -> u64 {
        let base = self.una_data_base();
        (self.snd_una_off as i64 + i64::from(seq.dist(base))) as u64
    }

    /// Inverse of [`Tcb::stream_offset`].
    #[must_use]
    pub fn seq_at(&self, offset: u64) -> SeqNumber {
        let delta = offset as i64 - self.snd_una_off as i64;
        self.una_data_base().wrapping_add(delta as u32)
    }

    /// Stream offset of `snd_nxt` — where the next new payload byte
    /// will sit on the stream.
    #[must_use]
    pub fn stream_offset_of_snd_nxt(&self) -> u64 {
        // Before any data is sent, snd_nxt is iss+1 (after the SYN):
        // that is stream offset 0. FIN consumption is handled by the
        // caller never sending after FIN.
        self.stream_offset(self.snd_nxt)
    }

    /// The sequence number of stream offset `snd_una_off`: normally
    /// `snd_una`, except before the handshake ACK arrives, when
    /// `snd_una` still points at our SYN.
    fn una_data_base(&self) -> SeqNumber {
        if self.snd_una == self.iss {
            self.iss.wrapping_add(1)
        } else {
            self.snd_una
        }
    }

    /// Bytes of new data the windows permit sending right now.
    #[must_use]
    pub fn usable_window(&self) -> u64 {
        let inflight = self.snd_nxt.dist(self.snd_una).max(0) as u64;
        self.cc.cwnd().min(self.snd_wnd).saturating_sub(inflight)
    }

    /// Bytes in flight (sent, unacknowledged).
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.snd_nxt.dist(self.snd_una).max(0) as u64
    }

    /// Drain queued events.
    pub fn take_events(&mut self) -> Vec<TcbEvent> {
        std::mem::take(&mut self.events)
    }

    /// Next timer deadline.
    #[must_use]
    pub fn poll_at(&self) -> Option<Nanos> {
        earliest(self.rto_deadline, None)
    }

    fn arm_rto(&mut self, now: Nanos) {
        self.rto_deadline = Some(now + self.rtt.rto());
    }

    fn disarm_rto(&mut self) {
        self.rto_deadline = None;
    }

    // ---------------------------------------------------------- output

    fn build_output(
        &self,
        seq: SeqNumber,
        flags: TcpFlags,
        payload: SgList,
        with_opts: bool,
        tso: Option<u16>,
    ) -> TcpOutput {
        let tcp = TcpRepr {
            src_port: self.local.port,
            dst_port: self.remote.port,
            seq,
            ack: self.rcv_nxt,
            flags,
            window: self.window_field(),
            mss: if with_opts { Some(self.cfg.mss) } else { None },
            wscale: if with_opts {
                Some(self.cfg.wscale)
            } else {
                None
            },
        };
        let tcp_len = tcp.header_len();
        let ip = Ipv4Repr {
            src: self.local.ip,
            dst: self.remote.ip,
            protocol: IpProtocol::Tcp,
            payload_len: (tcp_len as u64 + payload.len()) as u16,
            ttl: 64,
        };
        let eth = EthernetRepr {
            dst: self.remote.mac,
            src: self.local.mac,
            ethertype: EtherType::Ipv4,
        };
        let mut headers = vec![0u8; ETH_HEADER_LEN + IPV4_HEADER_LEN + tcp_len];
        eth.emit(&mut headers[..ETH_HEADER_LEN]);
        ip.emit(&mut headers[ETH_HEADER_LEN..ETH_HEADER_LEN + IPV4_HEADER_LEN]);
        // TCP checksum over header only; payload checksum is the
        // NIC's job (checksum offload — it recomputes per TSO frame).
        tcp.emit(
            &mut headers[ETH_HEADER_LEN + IPV4_HEADER_LEN..],
            ip.pseudo_header_sum(),
            &[],
        );
        TcpOutput {
            headers,
            payload,
            tso_mss: tso,
            tcp_seq_off: ETH_HEADER_LEN + IPV4_HEADER_LEN + 4,
        }
    }

    fn window_field(&self) -> u16 {
        let w = u64::from(self.cfg.rcv_wnd) >> self.cfg.wscale;
        w.min(0xFFFF) as u16
    }

    /// Abort the connection: emit an RST and drop to `Closed`. Used by
    /// the server's slow-client defense — the peer learns immediately
    /// that its connection is gone rather than timing out.
    pub fn send_rst(&mut self) -> TcpOutput {
        self.state = TcbState::Closed;
        self.disarm_rto();
        self.build_output(
            self.snd_nxt,
            TcpFlags::RST | TcpFlags::ACK,
            SgList::empty(),
            false,
            None,
        )
    }

    /// Send new data at `snd_nxt`. `payload.len()` must fit in the
    /// usable window. Returns the frame for the NIC.
    pub fn send_data(&mut self, now: Nanos, payload: SgList, fin: bool) -> TcpOutput {
        debug_assert!(matches!(
            self.state,
            TcbState::Established | TcbState::CloseWait
        ));
        let len = payload.len();
        // Atlas's watermark policy may transiently overshoot the
        // window by up to one fetch unit (it issues a 16 KiB read once
        // 10xMSS of space is free, per paper section 3.2); anything
        // beyond that is a caller bug.
        debug_assert!(
            len <= self.usable_window() + 64 * 1024,
            "caller overran the window by more than one fetch unit"
        );
        let seq = self.snd_nxt;
        let mut flags = TcpFlags::ACK;
        if fin {
            flags = flags | TcpFlags::FIN;
            self.fin_sent = true;
            self.state = match self.state {
                TcbState::CloseWait => TcbState::LastAck,
                _ => TcbState::FinWait1,
            };
        }
        if len > 0 {
            flags = flags | TcpFlags::PSH;
        }
        self.snd_nxt = self.snd_nxt.wrapping_add(len as u32 + u32::from(fin));
        self.snd_max = self.snd_max.max_seq(self.snd_nxt);
        self.bytes_sent += len;
        // RTT sampling: one probe at a time (Karn's rule: never from
        // retransmitted data).
        if self.rtt_probe.is_none() && len > 0 {
            self.rtt_probe = Some((self.snd_nxt, now));
        }
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        let tso = if len > u64::from(self.cfg.mss) {
            Some(self.cfg.mss)
        } else {
            None
        };
        self.build_output(seq, flags, payload, false, tso)
    }

    /// The owner could not service a NeedRetransmit right now (e.g.
    /// no DMA buffer free): clear the outstanding flag so the next
    /// loss signal (dup ACK / RTO) re-raises the event.
    pub fn retransmit_abandoned(&mut self) {
        self.retx_outstanding = false;
    }

    /// Supply previously-sent stream bytes for retransmission
    /// (response to [`TcbEvent::NeedRetransmit`]).
    ///
    /// Retransmit supply can race the ACK clock: Atlas re-fetches the
    /// range from disk, and by the time the read completes a late ACK
    /// may already cover part (or all) of it. Acked bytes are trimmed
    /// off the front; a fully-acked range degenerates to a pure ACK.
    pub fn send_retransmit(&mut self, now: Nanos, offset: u64, payload: SgList) -> TcpOutput {
        let mut offset = offset;
        let mut payload = payload;
        if offset < self.snd_una_off {
            let stale = (self.snd_una_off - offset).min(payload.len());
            let _ = payload.split_front(stale);
            offset += stale;
        }
        if payload.is_empty() {
            self.retx_outstanding = false;
            return self.send_ack();
        }
        let seq = self.seq_at(offset);
        debug_assert!(seq.ge(self.snd_una), "retransmitting acked data");
        let len = payload.len();
        self.bytes_retransmitted += len;
        self.retx_outstanding = false;
        // Karn: this range's RTT sample is void.
        if let Some((probe_seq, _)) = self.rtt_probe {
            if probe_seq.gt(seq) {
                self.rtt_probe = None;
            }
        }
        self.arm_rto(now);
        let tso = if len > u64::from(self.cfg.mss) {
            Some(self.cfg.mss)
        } else {
            None
        };
        self.build_output(seq, TcpFlags::ACK | TcpFlags::PSH, payload, false, tso)
    }

    /// Emit a pure ACK (window update / delayed-ACK flush / response
    /// to out-of-window segments).
    pub fn send_ack(&mut self) -> TcpOutput {
        self.build_output(self.snd_nxt, TcpFlags::ACK, SgList::empty(), false, None)
    }

    // ----------------------------------------------------------- input

    /// Process one received segment addressed to this connection.
    /// Returns any immediate control output (ACKs, handshake frames).
    pub fn on_segment(&mut self, now: Nanos, tcp: &TcpRepr, payload: &[u8]) -> Vec<TcpOutput> {
        self.segs_received += 1;
        let mut out = Vec::new();
        match self.state {
            TcbState::SynSent => {
                if tcp.flags.contains(TcpFlags::SYN | TcpFlags::ACK) && tcp.ack == self.snd_nxt {
                    self.irs = tcp.seq;
                    self.rcv_nxt = tcp.seq.wrapping_add(1);
                    self.peer_wscale = tcp.wscale.unwrap_or(0);
                    if let Some(m) = tcp.mss {
                        self.cfg.mss = self.cfg.mss.min(m);
                    }
                    self.snd_una = tcp.ack;
                    self.snd_wnd = u64::from(tcp.window) << self.peer_wscale;
                    self.state = TcbState::Established;
                    self.disarm_rto();
                    self.rtt_probe = None;
                    self.events.push(TcbEvent::Established);
                    out.push(self.send_ack());
                }
                return out;
            }
            TcbState::SynRcvd => {
                if tcp.flags.contains(TcpFlags::ACK) && tcp.ack == self.snd_nxt {
                    self.snd_una = tcp.ack;
                    self.snd_wnd = u64::from(tcp.window) << self.peer_wscale;
                    self.state = TcbState::Established;
                    self.disarm_rto();
                    self.events.push(TcbEvent::Established);
                    self.events.push(TcbEvent::WindowOpen(self.usable_window()));
                    // Fall through: the ACK may carry data (TFO-less
                    // piggyback of the first request is common).
                } else {
                    return out;
                }
            }
            TcbState::Closed => return out,
            _ => {}
        }

        // --- ACK processing -------------------------------------------
        if tcp.flags.contains(TcpFlags::ACK) {
            let ack = tcp.ack;
            if ack.gt(self.snd_una) && ack.le(self.snd_max) {
                let inflight_before = self.snd_nxt.dist(self.snd_una).max(0) as u64;
                let newly = ack.dist(self.snd_una) as u64;
                // Stream-offset accounting: the SYN (if still
                // unacked) and a FIN occupy sequence space but are
                // not data bytes.
                let mut data_newly = newly;
                if self.snd_una == self.iss {
                    data_newly -= 1; // the SYN
                }
                if self.fin_sent && ack == self.snd_max {
                    data_newly = data_newly.saturating_sub(1); // the FIN
                }
                self.snd_una_off += data_newly;
                self.snd_una = ack;
                if self.snd_nxt.lt(ack) {
                    self.snd_nxt = ack; // post-RTO partial catch-up
                }
                self.dupacks = 0;
                // RTT sample. Guard against owner-supplied send
                // timestamps that run ahead of wall time (a blocked
                // kernel worker's deferred completion may stamp a
                // send later than the ACK's arrival).
                if let Some((probe_seq, sent_at)) = self.rtt_probe {
                    if ack.ge(probe_seq) {
                        if now > sent_at {
                            self.rtt.sample(now - sent_at);
                        }
                        self.rtt_probe = None;
                    }
                }
                // NewReno recovery bookkeeping. The window may only
                // grow when the sender was actually using it all
                // (RFC 7661): compare pre-ACK flight size to cwnd.
                let app_limited =
                    inflight_before + u64::from(self.cfg.mss) < self.cc.cwnd().min(self.snd_wnd);
                if let Some(rec) = self.recover {
                    if ack.ge(rec) {
                        self.recover = None;
                    } else if !self.retx_outstanding {
                        // Partial ACK: retransmit the next hole.
                        let len = u64::from(self.cfg.mss).min(self.snd_max.dist(ack) as u64);
                        self.events.push(TcbEvent::NeedRetransmit {
                            offset: self.stream_offset(ack),
                            len,
                        });
                        self.retx_outstanding = true;
                    }
                } else {
                    self.cc.on_ack(now, newly, app_limited);
                }
                self.events.push(TcbEvent::AckedTo(self.snd_una_off));
                if self.snd_una == self.snd_max {
                    self.disarm_rto();
                    if self.fin_sent {
                        match self.state {
                            TcbState::FinWait1 => self.state = TcbState::FinWait2,
                            TcbState::LastAck => {
                                self.state = TcbState::Closed;
                                self.events.push(TcbEvent::Closed);
                            }
                            _ => {}
                        }
                    }
                } else {
                    self.arm_rto(now);
                }
                let usable = self.usable_window();
                if usable > 0 && !matches!(self.state, TcbState::Closed) {
                    self.events.push(TcbEvent::WindowOpen(usable));
                }
            } else if ack == self.snd_una && self.inflight() > 0 && payload.is_empty() {
                // Duplicate ACK.
                self.dupacks += 1;
                if self.dupacks == 3 && self.recover.is_none() {
                    self.cc.on_fast_retransmit(now);
                    self.recover = Some(self.snd_max);
                    if !self.retx_outstanding {
                        self.events.push(TcbEvent::NeedRetransmit {
                            offset: self.stream_offset(self.snd_una),
                            len: u64::from(self.cfg.mss),
                        });
                        self.retx_outstanding = true;
                    }
                }
            }
            self.snd_wnd = u64::from(tcp.window) << self.peer_wscale;
        }

        // --- payload / FIN --------------------------------------------
        let mut advanced = false;
        if !payload.is_empty() {
            if tcp.seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
                self.events.push(TcbEvent::Data(payload.to_vec()));
                advanced = true;
            } else {
                // Out-of-order request data: drop; our cumulative ACK
                // tells the peer (requests are tiny; clients retry).
                out.push(self.send_ack());
            }
        }
        if tcp.flags.contains(TcpFlags::FIN)
            && tcp.seq.wrapping_add(payload.len() as u32) == self.rcv_nxt
        {
            self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
            self.events.push(TcbEvent::PeerFin);
            match self.state {
                TcbState::Established => self.state = TcbState::CloseWait,
                TcbState::FinWait1 => self.state = TcbState::LastAck, // simultaneous close
                TcbState::FinWait2 => {
                    self.state = TcbState::Closed;
                    self.events.push(TcbEvent::Closed);
                }
                _ => {}
            }
            advanced = true;
        }
        if advanced {
            out.push(self.send_ack());
        }
        out
    }

    /// Fire timers due at `now`. On RTO: collapse cwnd, rewind
    /// snd_nxt, and ask the owner for the first outstanding segment.
    pub fn on_timer(&mut self, now: Nanos) {
        let Some(deadline) = self.rto_deadline else {
            return;
        };
        if deadline > now {
            return;
        }
        if self.inflight() == 0 && !self.fin_sent {
            self.disarm_rto();
            return;
        }
        self.rtt.on_timeout();
        self.cc.on_timeout();
        self.rto_fired += 1;
        self.recover = Some(self.snd_max);
        self.rtt_probe = None;
        self.arm_rto(now);
        if !self.retx_outstanding && self.inflight() > 0 {
            self.events.push(TcbEvent::NeedRetransmit {
                offset: self.stream_offset(self.snd_una),
                len: u64::from(self.cfg.mss).min(self.snd_max.dist(self.snd_una) as u64),
            });
            self.retx_outstanding = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_packet::Ipv4Addr;

    fn server_ep() -> Endpoint {
        Endpoint {
            mac: MacAddr::from_host_id(1),
            ip: Ipv4Addr::new(10, 0, 0, 1),
            port: 80,
        }
    }
    fn client_ep() -> Endpoint {
        Endpoint {
            mac: MacAddr::from_host_id(2),
            ip: Ipv4Addr::new(10, 0, 0, 2),
            port: 5555,
        }
    }

    fn syn() -> TcpRepr {
        TcpRepr {
            src_port: 5555,
            dst_port: 80,
            seq: SeqNumber(1000),
            ack: SeqNumber(0),
            flags: TcpFlags::SYN,
            window: 65535,
            mss: Some(1460),
            wscale: Some(7),
        }
    }

    fn accept() -> (Tcb, TcpOutput) {
        Tcb::accept(
            TcbConfig::default(),
            server_ep(),
            client_ep(),
            &syn(),
            SeqNumber(5_000_000),
            Nanos::ZERO,
        )
    }

    fn ack(tcb: &Tcb, acknum: SeqNumber, window: u16) -> TcpRepr {
        TcpRepr {
            src_port: 5555,
            dst_port: 80,
            seq: tcb.rcv_nxt,
            ack: acknum,
            flags: TcpFlags::ACK,
            window,
            mss: None,
            wscale: None,
        }
    }

    fn establish() -> Tcb {
        let (mut tcb, _synack) = accept();
        let a = ack(&tcb, SeqNumber(5_000_001), 512); // 512<<7 = 64KiB window
        tcb.on_segment(Nanos::from_millis(1), &a, &[]);
        assert_eq!(tcb.state, TcbState::Established);
        tcb.take_events();
        tcb
    }

    #[test]
    fn passive_open_handshake() {
        let (mut tcb, synack) = accept();
        assert_eq!(tcb.state, TcbState::SynRcvd);
        // SYN-ACK parses and carries our options.
        let (t, _) = TcpRepr::parse(&synack.headers[34..], None).unwrap();
        assert!(t.flags.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert_eq!(t.ack, SeqNumber(1001));
        assert!(t.mss.is_some() && t.wscale.is_some());
        // Third ACK establishes.
        let a = ack(&tcb, SeqNumber(5_000_001), 512);
        tcb.on_segment(Nanos::from_millis(1), &a, &[]);
        let ev = tcb.take_events();
        assert!(ev.contains(&TcbEvent::Established));
        assert!(ev
            .iter()
            .find(|e| matches!(e, TcbEvent::WindowOpen(_)))
            .is_some());
    }

    #[test]
    fn mss_negotiated_to_min() {
        let (tcb, _) = accept();
        assert_eq!(tcb.cfg.mss, 1448, "min(ours 1448, theirs 1460)");
    }

    #[test]
    fn send_data_advances_and_acks_recycle() {
        let mut tcb = establish();
        let usable = tcb.usable_window();
        assert_eq!(usable, 14480, "IW10 with 64KiB peer window");
        let out = tcb.send_data(
            Nanos::from_millis(2),
            SgList::from_bytes(vec![7; 14480]),
            false,
        );
        assert_eq!(out.tso_mss, Some(1448));
        assert_eq!(tcb.usable_window(), 0);
        assert_eq!(tcb.inflight(), 14480);
        // Client acks everything.
        let a = ack(&tcb, tcb.seq_at(14480), 512);
        tcb.on_segment(Nanos::from_millis(30), &a, &[]);
        let ev = tcb.take_events();
        assert!(ev.contains(&TcbEvent::AckedTo(14480)));
        assert!(tcb.inflight() == 0);
        // cwnd grew (slow start), so WindowOpen fired with more room.
        let opened = ev.iter().find_map(|e| match e {
            TcbEvent::WindowOpen(n) => Some(*n),
            _ => None,
        });
        assert!(opened.unwrap() > 14480);
    }

    #[test]
    fn stream_offset_round_trip() {
        let tcb = establish();
        for off in [0u64, 1, 1448, 300_000, 1_000_000_000] {
            assert_eq!(tcb.stream_offset(tcb.seq_at(off)), off);
        }
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut tcb = establish();
        tcb.send_data(
            Nanos::from_millis(2),
            SgList::from_bytes(vec![1; 14480]),
            false,
        );
        tcb.take_events();
        let cwnd_before = tcb.cc.cwnd();
        let a = ack(&tcb, tcb.seq_at(0), 512);
        for _ in 0..3 {
            tcb.on_segment(Nanos::from_millis(10), &a, &[]);
        }
        let ev = tcb.take_events();
        let retx = ev.iter().find_map(|e| match e {
            TcbEvent::NeedRetransmit { offset, len } => Some((*offset, *len)),
            _ => None,
        });
        assert_eq!(retx, Some((0, 1448)));
        assert!(tcb.cc.cwnd() < cwnd_before);
        // Owner supplies the data.
        let out = tcb.send_retransmit(Nanos::from_millis(11), 0, SgList::from_bytes(vec![1; 1448]));
        let (t, _) = TcpRepr::parse(&out.headers[34..], None).unwrap();
        assert_eq!(t.seq, tcb.seq_at(0));
        assert_eq!(tcb.bytes_retransmitted, 1448);
    }

    #[test]
    fn no_duplicate_retransmit_requests() {
        let mut tcb = establish();
        tcb.send_data(
            Nanos::from_millis(2),
            SgList::from_bytes(vec![1; 14480]),
            false,
        );
        tcb.take_events();
        let a = ack(&tcb, tcb.seq_at(0), 512);
        for _ in 0..6 {
            tcb.on_segment(Nanos::from_millis(10), &a, &[]);
        }
        let n = tcb
            .take_events()
            .iter()
            .filter(|e| matches!(e, TcbEvent::NeedRetransmit { .. }))
            .count();
        assert_eq!(n, 1, "only one outstanding retransmit request");
    }

    #[test]
    fn rto_fires_and_backs_off() {
        let mut tcb = establish();
        tcb.send_data(
            Nanos::from_millis(2),
            SgList::from_bytes(vec![1; 1448]),
            false,
        );
        tcb.take_events();
        let deadline = tcb.poll_at().expect("RTO armed");
        tcb.on_timer(deadline);
        let ev = tcb.take_events();
        assert!(ev
            .iter()
            .any(|e| matches!(e, TcbEvent::NeedRetransmit { offset: 0, .. })));
        assert_eq!(tcb.cc.cwnd(), 1448, "cwnd collapsed to 1 MSS");
        let next = tcb.poll_at().unwrap();
        assert!(
            next - deadline >= Nanos::from_millis(400),
            "backoff doubled"
        );
    }

    #[test]
    fn in_order_data_is_delivered_and_acked() {
        let mut tcb = establish();
        let req = b"GET /f/1 HTTP/1.1\r\n\r\n".to_vec();
        let seg = TcpRepr {
            src_port: 5555,
            dst_port: 80,
            seq: tcb.rcv_nxt,
            ack: SeqNumber(5_000_001),
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 512,
            mss: None,
            wscale: None,
        };
        let outs = tcb.on_segment(Nanos::from_millis(5), &seg, &req);
        assert_eq!(outs.len(), 1, "immediate ACK of request data");
        let ev = tcb.take_events();
        assert!(ev.contains(&TcbEvent::Data(req)));
    }

    #[test]
    fn out_of_order_data_elicits_dup_ack_and_no_delivery() {
        let mut tcb = establish();
        let seg = TcpRepr {
            src_port: 5555,
            dst_port: 80,
            seq: tcb.rcv_nxt.wrapping_add(500),
            ack: SeqNumber(5_000_001),
            flags: TcpFlags::ACK,
            window: 512,
            mss: None,
            wscale: None,
        };
        let outs = tcb.on_segment(Nanos::from_millis(5), &seg, b"xxxx");
        assert_eq!(outs.len(), 1);
        assert!(!tcb
            .take_events()
            .iter()
            .any(|e| matches!(e, TcbEvent::Data(_))));
    }

    #[test]
    fn teardown_client_initiated() {
        let mut tcb = establish();
        // Client FIN.
        let fin = TcpRepr {
            src_port: 5555,
            dst_port: 80,
            seq: tcb.rcv_nxt,
            ack: SeqNumber(5_000_001),
            flags: TcpFlags::ACK | TcpFlags::FIN,
            window: 512,
            mss: None,
            wscale: None,
        };
        tcb.on_segment(Nanos::from_millis(5), &fin, &[]);
        assert_eq!(tcb.state, TcbState::CloseWait);
        assert!(tcb.take_events().contains(&TcbEvent::PeerFin));
        // Server sends its FIN.
        let out = tcb.send_data(Nanos::from_millis(6), SgList::empty(), true);
        let (t, _) = TcpRepr::parse(&out.headers[34..], None).unwrap();
        assert!(t.flags.contains(TcpFlags::FIN));
        assert_eq!(tcb.state, TcbState::LastAck);
        // Client acks the FIN.
        let a = ack(&tcb, tcb.seq_at(0).wrapping_add(1), 512);
        tcb.on_segment(Nanos::from_millis(40), &a, &[]);
        assert_eq!(tcb.state, TcbState::Closed);
        assert!(tcb.take_events().contains(&TcbEvent::Closed));
    }

    #[test]
    fn peer_window_limits_sending() {
        let mut tcb = establish();
        // Peer advertises a tiny window.
        let a = ack(&tcb, SeqNumber(5_000_001), 1); // 1<<7 = 128 bytes
        tcb.on_segment(Nanos::from_millis(2), &a, &[]);
        assert_eq!(tcb.usable_window(), 128);
    }

    #[test]
    fn rtt_is_sampled_from_acks() {
        let mut tcb = establish();
        tcb.send_data(
            Nanos::from_millis(10),
            SgList::from_bytes(vec![1; 1448]),
            false,
        );
        let a = ack(&tcb, tcb.seq_at(1448), 512);
        tcb.on_segment(Nanos::from_millis(35), &a, &[]);
        let srtt = tcb.rtt.srtt().expect("sampled");
        assert_eq!(srtt, Nanos::from_millis(25));
    }
}
