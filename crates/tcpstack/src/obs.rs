//! Publish TCP control-block counters into a dcn-obs registry.
//!
//! Registry naming: `tcp.<signal>{core=N}`. A server calls this at
//! sample/report points with the TCBs homed on each core; the
//! per-core aggregation happens here so every stack (Atlas, kstack)
//! exports the same signals the same way.

use crate::Tcb;
use dcn_obs::Registry;

/// Aggregate the given TCBs' lifetime counters and publish them as
/// per-core gauges: RTO firings, bytes retransmitted, bytes sent,
/// and segments received.
pub fn publish_tcb_metrics<'a>(
    reg: &mut Registry,
    core: usize,
    tcbs: impl Iterator<Item = &'a Tcb>,
) {
    let (mut rto, mut retx, mut sent, mut segs) = (0u64, 0u64, 0u64, 0u64);
    for t in tcbs {
        rto += t.rto_fired;
        retx += t.bytes_retransmitted;
        sent += t.bytes_sent;
        segs += t.segs_received;
    }
    let g = reg.gauge_core("tcp.rto_fired", core);
    reg.set(g, rto as f64);
    let g = reg.gauge_core("tcp.bytes_retransmitted", core);
    reg.set(g, retx as f64);
    let g = reg.gauge_core("tcp.bytes_sent", core);
    reg.set(g, sent as f64);
    let g = reg.gauge_core("tcp.segs_received", core);
    reg.set(g, segs as f64);
}
