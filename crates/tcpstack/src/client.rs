//! Client-side TCP receiver — the simulated weighttp fleet (§4).
//!
//! Each client holds a lightweight connection: it completes the
//! handshake, sends HTTP requests, reassembles the response stream
//! (with out-of-order buffering so that retransmissions heal gaps),
//! and generates cumulative ACKs — one per received burst, matching a
//! GRO-enabled Linux receiver, plus duplicate ACKs for out-of-order
//! arrivals so the server's fast-retransmit machinery engages.
//!
//! Client CPU is free (the paper sizes its client machines so they
//! are never the bottleneck); only protocol behaviour matters here.

use crate::tcb::Endpoint;
use dcn_packet::{
    EtherType, EthernetRepr, FlowId, IpProtocol, Ipv4Repr, SeqNumber, TcpFlags, TcpRepr,
    ETH_HEADER_LEN, IPV4_HEADER_LEN,
};
use dcn_simcore::Nanos;
use std::collections::BTreeMap;

/// Client connection state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientState {
    SynSent,
    Established,
    Closed,
}

/// What the client wants to put on the wire after an input.
#[derive(Debug)]
pub struct ClientFrame {
    pub headers: Vec<u8>,
    pub payload: Vec<u8>,
}

/// A lightweight client connection.
pub struct ClientConn {
    pub state: ClientState,
    local: Endpoint,
    remote: Endpoint,
    iss: SeqNumber,
    snd_nxt: SeqNumber,
    rcv_nxt: SeqNumber,
    /// Advertised receive window (bytes) with scale 8.
    rcv_wnd: u32,
    /// Out-of-order segments waiting for the gap to fill.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// Total in-order stream bytes delivered to the application.
    pub delivered: u64,
    /// In-order payload not yet consumed by the app layer.
    inbox: Vec<u8>,
    /// Duplicate ACKs generated (diagnostics).
    pub dupacks_sent: u64,
    /// The server reset this connection (admission shed or slow-client
    /// abort). The owner decides whether to reconnect.
    pub reset_received: bool,
}

const CLIENT_WSCALE: u8 = 8;

impl ClientConn {
    /// Create and return the SYN frame.
    pub fn connect(
        local: Endpoint,
        remote: Endpoint,
        iss: SeqNumber,
        rcv_wnd: u32,
    ) -> (Self, ClientFrame) {
        let mut c = ClientConn {
            state: ClientState::SynSent,
            local,
            remote,
            iss,
            snd_nxt: iss.wrapping_add(1),
            rcv_nxt: SeqNumber(0),
            rcv_wnd,
            ooo: BTreeMap::new(),
            delivered: 0,
            inbox: Vec::new(),
            dupacks_sent: 0,
            reset_received: false,
        };
        let syn = c.frame(iss, TcpFlags::SYN, Vec::new(), Some((1460, CLIENT_WSCALE)));
        (c, syn)
    }

    #[must_use]
    pub fn flow(&self) -> FlowId {
        FlowId {
            src_ip: self.local.ip,
            dst_ip: self.remote.ip,
            src_port: self.local.port,
            dst_port: self.remote.port,
        }
    }

    fn frame(
        &mut self,
        seq: SeqNumber,
        flags: TcpFlags,
        payload: Vec<u8>,
        opts: Option<(u16, u8)>,
    ) -> ClientFrame {
        let tcp = TcpRepr {
            src_port: self.local.port,
            dst_port: self.remote.port,
            seq,
            ack: self.rcv_nxt,
            flags,
            window: (self.rcv_wnd >> CLIENT_WSCALE).min(0xFFFF) as u16,
            mss: opts.map(|(m, _)| m),
            wscale: opts.map(|(_, w)| w),
        };
        let tcp_len = tcp.header_len();
        let ip = Ipv4Repr {
            src: self.local.ip,
            dst: self.remote.ip,
            protocol: IpProtocol::Tcp,
            payload_len: (tcp_len + payload.len()) as u16,
            ttl: 64,
        };
        let eth = EthernetRepr {
            dst: self.remote.mac,
            src: self.local.mac,
            ethertype: EtherType::Ipv4,
        };
        let mut headers = vec![0u8; ETH_HEADER_LEN + IPV4_HEADER_LEN + tcp_len];
        eth.emit(&mut headers);
        ip.emit(&mut headers[ETH_HEADER_LEN..]);
        tcp.emit(
            &mut headers[ETH_HEADER_LEN + IPV4_HEADER_LEN..],
            ip.pseudo_header_sum(),
            &payload,
        );
        ClientFrame { headers, payload }
    }

    /// Send application data (an HTTP request). Requests are small,
    /// so no segmentation or windowing is modeled on the client send
    /// side.
    pub fn send(&mut self, data: Vec<u8>) -> ClientFrame {
        assert_eq!(self.state, ClientState::Established);
        let seq = self.snd_nxt;
        self.snd_nxt = self.snd_nxt.wrapping_add(data.len() as u32);
        self.frame(seq, TcpFlags::ACK | TcpFlags::PSH, data, None)
    }

    /// Send FIN.
    pub fn close(&mut self) -> ClientFrame {
        let seq = self.snd_nxt;
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        self.state = ClientState::Closed;
        self.frame(seq, TcpFlags::ACK | TcpFlags::FIN, Vec::new(), None)
    }

    /// Process a burst of arriving frames (one TSO train = one call)
    /// and return the ACKs to send — one cumulative ACK per burst in
    /// the common case, plus one duplicate ACK per out-of-order
    /// frame.
    pub fn on_burst(
        &mut self,
        _now: Nanos,
        frames: impl IntoIterator<Item = (TcpRepr, Vec<u8>)>,
    ) -> Vec<ClientFrame> {
        let mut acks = Vec::new();
        let mut progress = false;
        for (tcp, payload) in frames {
            match self.state {
                ClientState::SynSent => {
                    if tcp.flags.contains(TcpFlags::RST) && tcp.ack == self.iss.wrapping_add(1) {
                        // Connection refused (admission control).
                        self.state = ClientState::Closed;
                        self.reset_received = true;
                        continue;
                    }
                    if tcp.flags.contains(TcpFlags::SYN | TcpFlags::ACK)
                        && tcp.ack == self.iss.wrapping_add(1)
                    {
                        self.rcv_nxt = tcp.seq.wrapping_add(1);
                        self.state = ClientState::Established;
                        progress = true;
                    }
                }
                ClientState::Established | ClientState::Closed => {
                    if tcp.flags.contains(TcpFlags::RST) {
                        self.state = ClientState::Closed;
                        self.reset_received = true;
                        continue;
                    }
                    if payload.is_empty() && !tcp.flags.contains(TcpFlags::FIN) {
                        continue; // pure ACK from server
                    }
                    if tcp.seq == self.rcv_nxt {
                        self.accept_in_order(payload);
                        if tcp.flags.contains(TcpFlags::FIN) {
                            self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                        }
                        self.drain_ooo();
                        progress = true;
                    } else if tcp.seq.gt(self.rcv_nxt) {
                        // Out of order: buffer + immediate dup ACK.
                        self.ooo.insert(tcp.seq.0, payload);
                        self.dupacks_sent += 1;
                        acks.push(self.frame(self.snd_nxt, TcpFlags::ACK, Vec::new(), None));
                    } else {
                        // Old duplicate (retransmission overlap):
                        // cumulative ACK reasserts our position.
                        progress = true;
                    }
                }
            }
        }
        if progress {
            acks.push(self.frame(self.snd_nxt, TcpFlags::ACK, Vec::new(), None));
        }
        acks
    }

    fn accept_in_order(&mut self, payload: Vec<u8>) {
        self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
        self.delivered += payload.len() as u64;
        self.inbox.extend_from_slice(&payload);
    }

    fn drain_ooo(&mut self) {
        while let Some((&seq, _)) = self.ooo.iter().next() {
            let s = SeqNumber(seq);
            if s.gt(self.rcv_nxt) {
                break;
            }
            let payload = self.ooo.remove(&seq).expect("just seen");
            if s == self.rcv_nxt {
                self.accept_in_order(payload);
            }
            // s < rcv_nxt: stale duplicate, drop.
        }
    }

    /// Take delivered in-order payload (the HTTP layer consumes it).
    pub fn take_inbox(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.inbox)
    }

    #[must_use]
    pub fn ooo_segments(&self) -> usize {
        self.ooo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_packet::{Ipv4Addr, MacAddr};

    fn eps() -> (Endpoint, Endpoint) {
        (
            Endpoint {
                mac: MacAddr::from_host_id(10),
                ip: Ipv4Addr::new(10, 1, 0, 1),
                port: 7000,
            },
            Endpoint {
                mac: MacAddr::from_host_id(1),
                ip: Ipv4Addr::new(10, 0, 0, 1),
                port: 80,
            },
        )
    }

    fn server_seg(seq: u32, flags: TcpFlags, payload: &[u8]) -> (TcpRepr, Vec<u8>) {
        (
            TcpRepr {
                src_port: 80,
                dst_port: 7000,
                seq: SeqNumber(seq),
                ack: SeqNumber(1),
                flags,
                window: 1000,
                mss: None,
                wscale: None,
            },
            payload.to_vec(),
        )
    }

    fn established() -> ClientConn {
        let (local, remote) = eps();
        let (mut c, _syn) = ClientConn::connect(local, remote, SeqNumber(0), 4 << 20);
        let synack = (
            TcpRepr {
                src_port: 80,
                dst_port: 7000,
                seq: SeqNumber(999),
                ack: SeqNumber(1),
                flags: TcpFlags::SYN | TcpFlags::ACK,
                window: 1000,
                mss: Some(1448),
                wscale: Some(8),
            },
            Vec::new(),
        );
        let acks = c.on_burst(Nanos::ZERO, [synack]);
        assert_eq!(acks.len(), 1);
        assert_eq!(c.state, ClientState::Established);
        c
    }

    #[test]
    fn handshake_completes() {
        let c = established();
        assert_eq!(c.rcv_nxt, SeqNumber(1000));
    }

    #[test]
    fn in_order_burst_single_cumulative_ack() {
        let mut c = established();
        let burst = vec![
            server_seg(1000, TcpFlags::ACK, &[1; 100]),
            server_seg(1100, TcpFlags::ACK, &[2; 100]),
            server_seg(1200, TcpFlags::ACK, &[3; 100]),
        ];
        let acks = c.on_burst(Nanos::ZERO, burst);
        assert_eq!(acks.len(), 1, "GRO-style: one ACK per burst");
        let (t, _) = TcpRepr::parse(&acks[0].headers[34..], None).unwrap();
        assert_eq!(t.ack, SeqNumber(1300));
        assert_eq!(c.delivered, 300);
        assert_eq!(c.take_inbox().len(), 300);
    }

    #[test]
    fn gap_generates_dupack_then_heals() {
        let mut c = established();
        // Segment 2 arrives without segment 1.
        let acks = c.on_burst(
            Nanos::ZERO,
            vec![server_seg(1100, TcpFlags::ACK, &[2; 100])],
        );
        assert_eq!(acks.len(), 1);
        let (t, _) = TcpRepr::parse(&acks[0].headers[34..], None).unwrap();
        assert_eq!(t.ack, SeqNumber(1000), "dup ACK at the gap");
        assert_eq!(c.delivered, 0);
        assert_eq!(c.ooo_segments(), 1);
        // The hole fills: cumulative ACK jumps past both.
        let acks = c.on_burst(
            Nanos::ZERO,
            vec![server_seg(1000, TcpFlags::ACK, &[1; 100])],
        );
        let (t, _) = TcpRepr::parse(&acks.last().unwrap().headers[34..], None).unwrap();
        assert_eq!(t.ack, SeqNumber(1200));
        assert_eq!(c.delivered, 200);
        assert_eq!(c.ooo_segments(), 0);
        // Stream order preserved.
        let inbox = c.take_inbox();
        assert!(inbox[..100].iter().all(|&b| b == 1));
        assert!(inbox[100..].iter().all(|&b| b == 2));
    }

    #[test]
    fn stale_duplicate_reacked_not_delivered_twice() {
        let mut c = established();
        c.on_burst(
            Nanos::ZERO,
            vec![server_seg(1000, TcpFlags::ACK, &[1; 100])],
        );
        let acks = c.on_burst(
            Nanos::ZERO,
            vec![server_seg(1000, TcpFlags::ACK, &[1; 100])],
        );
        assert_eq!(acks.len(), 1, "re-ACK the duplicate");
        assert_eq!(c.delivered, 100, "not delivered twice");
    }

    #[test]
    fn request_send_advances_sequence() {
        let mut c = established();
        let f1 = c.send(b"GET /a HTTP/1.1\r\n\r\n".to_vec());
        let f2 = c.send(b"GET /b HTTP/1.1\r\n\r\n".to_vec());
        let (t1, _) = TcpRepr::parse(&f1.headers[34..], None).unwrap();
        let (t2, _) = TcpRepr::parse(&f2.headers[34..], None).unwrap();
        assert_eq!(t2.seq.dist(t1.seq) as usize, f1.payload.len());
    }

    #[test]
    fn syn_answered_by_rst_refuses_connection() {
        let (local, remote) = eps();
        let (mut c, syn) = ClientConn::connect(local, remote, SeqNumber(500), 4 << 20);
        // Server admission control refuses with the canonical RST.
        let (syn_tcp, _) = TcpRepr::parse(&syn.headers[34..], None).unwrap();
        let rst = crate::tcb::rst_for_syn(remote, local, &syn_tcp);
        let (rst_tcp, _) = TcpRepr::parse(&rst.headers[34..], None).unwrap();
        assert!(rst_tcp.flags.contains(TcpFlags::RST));
        let acks = c.on_burst(Nanos::ZERO, [(rst_tcp, Vec::new())]);
        assert!(acks.is_empty(), "no reply to an RST");
        assert_eq!(c.state, ClientState::Closed);
        assert!(c.reset_received);
    }

    #[test]
    fn rst_with_wrong_ack_ignored_in_syn_sent() {
        let (local, remote) = eps();
        let (mut c, _syn) = ClientConn::connect(local, remote, SeqNumber(500), 4 << 20);
        let mut seg = server_seg(0, TcpFlags::RST | TcpFlags::ACK, &[]);
        seg.0.ack = SeqNumber(999); // not iss+1: stale/spoofed
        c.on_burst(Nanos::ZERO, [seg]);
        assert_eq!(c.state, ClientState::SynSent);
        assert!(!c.reset_received);
    }

    #[test]
    fn rst_closes_established_connection() {
        let mut c = established();
        let acks = c.on_burst(
            Nanos::ZERO,
            vec![server_seg(1000, TcpFlags::RST | TcpFlags::ACK, &[])],
        );
        assert!(acks.is_empty());
        assert_eq!(c.state, ClientState::Closed);
        assert!(c.reset_received);
    }

    #[test]
    fn fin_consumes_sequence_space() {
        let mut c = established();
        let acks = c.on_burst(
            Nanos::ZERO,
            vec![server_seg(1000, TcpFlags::ACK | TcpFlags::FIN, &[9; 10])],
        );
        let (t, _) = TcpRepr::parse(&acks[0].headers[34..], None).unwrap();
        assert_eq!(t.ack, SeqNumber(1011), "payload + FIN");
    }
}
