//! Congestion control: NewReno and CUBIC.
//!
//! The Netflix production stack of the era ran a mix of NewReno and
//! CUBIC (their RSS-LRO change log §2.1.3 notes CPU savings varied
//! "depending on the congestion control algorithm"); both are
//! provided and selectable per connection.

use dcn_simcore::Nanos;

/// Which algorithm a connection runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CcKind {
    NewReno,
    Cubic,
}

/// Common congestion-control interface (units: bytes).
#[derive(Clone, Debug)]
pub struct CcAlgo {
    kind: CcKind,
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    /// Bytes acked since last cwnd bump (Reno congestion avoidance).
    acked_accum: u64,
    // CUBIC state.
    w_max: f64,
    epoch_start: Option<Nanos>,
    k: f64,
}

impl CcAlgo {
    /// IW10 per RFC 6928 — also the watermark Atlas keys its fetch
    /// policy off.
    #[must_use]
    pub fn new(kind: CcKind, mss: u32) -> Self {
        CcAlgo {
            kind,
            mss,
            cwnd: u64::from(mss) * 10,
            ssthresh: u64::MAX,
            acked_accum: 0,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
        }
    }

    #[must_use]
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }
    #[must_use]
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }
    #[must_use]
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// New data acknowledged. `app_limited`: the sender had no data
    /// waiting, so the window must not grow (RFC 7661 in spirit).
    pub fn on_ack(&mut self, now: Nanos, newly_acked: u64, app_limited: bool) {
        if app_limited {
            return;
        }
        if self.in_slow_start() {
            // Byte counting without the RFC 3465 L-cap: receivers
            // coalesce ACKs (GRO/LRO, one ACK per TSO train), so
            // per-ACK caps would stunt growth — Linux and FreeBSD
            // both credit full acked byte counts here.
            self.cwnd += newly_acked;
            return;
        }
        match self.kind {
            CcKind::NewReno => {
                // cwnd += MSS per cwnd of acked bytes.
                self.acked_accum += newly_acked;
                if self.acked_accum >= self.cwnd {
                    self.acked_accum -= self.cwnd;
                    self.cwnd += u64::from(self.mss);
                }
            }
            CcKind::Cubic => {
                let epoch = *self.epoch_start.get_or_insert(now);
                let t = (now - epoch).as_secs_f64();
                const C: f64 = 0.4;
                let mss = f64::from(self.mss);
                let target = C * (t - self.k).powi(3) + self.w_max / mss;
                let target_bytes = (target * mss).max(mss);
                if target_bytes > self.cwnd as f64 {
                    // Approach the cubic target one MSS-fraction per ACK.
                    let inc = ((target_bytes - self.cwnd as f64) / self.cwnd as f64 * mss)
                        .clamp(0.0, mss);
                    self.cwnd += inc as u64 + 1;
                }
            }
        }
    }

    /// Fast-retransmit loss (3 dup ACKs): multiplicative decrease.
    pub fn on_fast_retransmit(&mut self, now: Nanos) {
        let beta = match self.kind {
            CcKind::NewReno => 0.5,
            CcKind::Cubic => 0.7,
        };
        self.w_max = self.cwnd as f64;
        self.ssthresh = ((self.cwnd as f64 * beta) as u64).max(u64::from(self.mss) * 2);
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
        if self.kind == CcKind::Cubic {
            const C: f64 = 0.4;
            let mss = f64::from(self.mss);
            self.k = ((self.w_max / mss) * (1.0 - 0.7) / C).cbrt();
            self.epoch_start = Some(now);
        }
    }

    /// Retransmission timeout: collapse to one segment (RFC 5681).
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(u64::from(self.mss) * 2);
        self.cwnd = u64::from(self.mss);
        self.acked_accum = 0;
        self.epoch_start = None;
        self.w_max = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1448;

    #[test]
    fn starts_at_iw10() {
        let cc = CcAlgo::new(CcKind::NewReno, MSS);
        assert_eq!(cc.cwnd(), 14480);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = CcAlgo::new(CcKind::NewReno, MSS);
        let before = cc.cwnd();
        // Ack a full window's worth in MSS chunks.
        let mut acked = 0;
        while acked < before {
            cc.on_ack(Nanos::from_millis(10), u64::from(MSS), false);
            acked += u64::from(MSS);
        }
        assert!(
            cc.cwnd() >= before * 2 - u64::from(MSS),
            "{} vs {}",
            cc.cwnd(),
            before
        );
    }

    #[test]
    fn app_limited_acks_do_not_grow_window() {
        let mut cc = CcAlgo::new(CcKind::NewReno, MSS);
        let before = cc.cwnd();
        for _ in 0..100 {
            cc.on_ack(Nanos::from_millis(10), u64::from(MSS), true);
        }
        assert_eq!(cc.cwnd(), before);
    }

    #[test]
    fn reno_congestion_avoidance_is_linear() {
        let mut cc = CcAlgo::new(CcKind::NewReno, MSS);
        cc.on_fast_retransmit(Nanos::from_millis(1)); // exits slow start
        let w0 = cc.cwnd();
        // One full window of ACKs → +1 MSS.
        let mut acked = 0;
        while acked < w0 {
            cc.on_ack(Nanos::from_millis(20), u64::from(MSS), false);
            acked += u64::from(MSS);
        }
        assert!(cc.cwnd() >= w0 + u64::from(MSS));
        assert!(
            cc.cwnd() <= w0 + 3 * u64::from(MSS),
            "{} vs {w0}",
            cc.cwnd()
        );
    }

    #[test]
    fn fast_retransmit_halves_reno() {
        let mut cc = CcAlgo::new(CcKind::NewReno, MSS);
        for _ in 0..50 {
            cc.on_ack(Nanos::from_millis(5), u64::from(MSS), false);
        }
        let before = cc.cwnd();
        cc.on_fast_retransmit(Nanos::from_millis(100));
        assert!(cc.cwnd() <= before * 6 / 10);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut cc = CcAlgo::new(CcKind::Cubic, MSS);
        for _ in 0..50 {
            cc.on_ack(Nanos::from_millis(5), u64::from(MSS), false);
        }
        cc.on_timeout();
        assert_eq!(cc.cwnd(), u64::from(MSS));
    }

    #[test]
    fn cubic_recovers_toward_wmax() {
        let mut cc = CcAlgo::new(CcKind::Cubic, MSS);
        // Grow, then lose, then ack for a while: cwnd approaches w_max.
        for _ in 0..200 {
            cc.on_ack(Nanos::from_millis(5), u64::from(MSS), false);
        }
        let peak = cc.cwnd();
        cc.on_fast_retransmit(Nanos::from_millis(200));
        let floor = cc.cwnd();
        assert!(floor < peak);
        let mut now = Nanos::from_millis(200);
        for _ in 0..2000 {
            now += Nanos::from_millis(5);
            cc.on_ack(now, u64::from(MSS), false);
        }
        assert!(cc.cwnd() > peak * 8 / 10, "{} vs peak {peak}", cc.cwnd());
    }

    #[test]
    fn cubic_growth_accelerates_past_wmax() {
        // Cubic's signature: slow near w_max, faster beyond (convex
        // region).
        let mut cc = CcAlgo::new(CcKind::Cubic, MSS);
        for _ in 0..100 {
            cc.on_ack(Nanos::from_millis(1), u64::from(MSS), false);
        }
        cc.on_fast_retransmit(Nanos::from_millis(100));
        let mut now = Nanos::from_millis(100);
        let mut sizes = Vec::new();
        for _ in 0..10 {
            for _ in 0..200 {
                now += Nanos::from_millis(2);
                cc.on_ack(now, u64::from(MSS), false);
            }
            sizes.push(cc.cwnd());
        }
        assert!(
            sizes.windows(2).all(|w| w[1] >= w[0]),
            "monotone: {sizes:?}"
        );
    }
}
