//! Randomized tests of the TCP control block: under arbitrary
//! (well-formed) sequences of peer behaviour, the TCB's invariants
//! hold and no arithmetic ever goes backwards. Sequences are driven
//! by a seeded [`SimRng`] so the explored input set is deterministic
//! (the container builds offline, so this replaces an external
//! property-testing framework).

use dcn_netdev::SgList;
use dcn_packet::{Ipv4Addr, MacAddr, SeqNumber, TcpFlags, TcpRepr};
use dcn_simcore::{Nanos, SimRng};
use dcn_tcpstack::{Endpoint, Tcb, TcbConfig, TcbEvent, TcbState};

fn server_ep() -> Endpoint {
    Endpoint {
        mac: MacAddr::from_host_id(1),
        ip: Ipv4Addr::new(10, 0, 0, 1),
        port: 80,
    }
}
fn client_ep() -> Endpoint {
    Endpoint {
        mac: MacAddr::from_host_id(2),
        ip: Ipv4Addr::new(10, 0, 0, 2),
        port: 5555,
    }
}

fn established() -> Tcb {
    let syn = TcpRepr {
        src_port: 5555,
        dst_port: 80,
        seq: SeqNumber(1000),
        ack: SeqNumber(0),
        flags: TcpFlags::SYN,
        window: 65535,
        mss: Some(1448),
        wscale: Some(8),
    };
    let (mut tcb, _) = Tcb::accept(
        TcbConfig::default(),
        server_ep(),
        client_ep(),
        &syn,
        SeqNumber(50_000),
        Nanos::ZERO,
    );
    let ack = TcpRepr {
        src_port: 5555,
        dst_port: 80,
        seq: SeqNumber(1001),
        ack: SeqNumber(50_001),
        flags: TcpFlags::ACK,
        window: 4096,
        mss: None,
        wscale: None,
    };
    tcb.on_segment(Nanos::from_millis(1), &ack, &[]);
    tcb.take_events();
    tcb
}

/// One step of simulated peer behaviour.
#[derive(Clone, Debug)]
enum Step {
    /// Owner sends `n` fresh bytes (clamped to the usable window).
    Send(u16),
    /// Peer cumulatively ACKs `frac`% of the outstanding data.
    AckFraction(u8),
    /// Peer repeats its last ACK (duplicate).
    DupAck,
    /// Time passes; fire due timers.
    Tick(u8),
    /// Owner services one pending retransmit request with data.
    ServeRetransmit,
}

fn random_step(rng: &mut SimRng) -> Step {
    match rng.gen_range(0, 5) {
        0 => Step::Send(rng.gen_range(1, 20_000) as u16),
        1 => Step::AckFraction(rng.gen_range(0, 101) as u8),
        2 => Step::DupAck,
        3 => Step::Tick(rng.gen_range(1, 100) as u8),
        _ => Step::ServeRetransmit,
    }
}

#[test]
fn tcb_invariants_under_arbitrary_peer() {
    let mut rng = SimRng::new(0x7CB);
    for case in 0..64 {
        let steps: Vec<Step> = (0..rng.gen_range(1, 80))
            .map(|_| random_step(&mut rng))
            .collect();
        let mut tcb = established();
        let mut now = Nanos::from_millis(2);
        let mut highest_sent: u64 = 0; // stream offset of snd_max
        let mut acked: u64 = 0;
        let mut pending_retx: Vec<(u64, u64)> = Vec::new();

        for step in steps {
            match step {
                Step::Send(n) => {
                    let usable = tcb.usable_window();
                    if usable == 0 {
                        continue;
                    }
                    let n = u64::from(n).min(usable);
                    if n == 0 {
                        continue;
                    }
                    let before = tcb.stream_offset_of_snd_nxt();
                    let _out = tcb.send_data(now, SgList::from_bytes(vec![7; n as usize]), false);
                    let after = tcb.stream_offset_of_snd_nxt();
                    assert_eq!(
                        after,
                        before + n,
                        "case {case}: snd_nxt advances by exactly n"
                    );
                    highest_sent = highest_sent.max(after);
                }
                Step::AckFraction(frac) => {
                    let outstanding = highest_sent.saturating_sub(acked);
                    if outstanding == 0 {
                        continue;
                    }
                    let newly = (outstanding * u64::from(frac) / 100).max(1);
                    acked += newly;
                    let ack = TcpRepr {
                        src_port: 5555,
                        dst_port: 80,
                        seq: SeqNumber(1001),
                        ack: tcb.seq_at(acked),
                        flags: TcpFlags::ACK,
                        window: 4096,
                        mss: None,
                        wscale: None,
                    };
                    now += Nanos::from_millis(1);
                    tcb.on_segment(now, &ack, &[]);
                }
                Step::DupAck => {
                    let ack = TcpRepr {
                        src_port: 5555,
                        dst_port: 80,
                        seq: SeqNumber(1001),
                        ack: tcb.seq_at(acked),
                        flags: TcpFlags::ACK,
                        window: 4096,
                        mss: None,
                        wscale: None,
                    };
                    now += Nanos::from_micros(100);
                    tcb.on_segment(now, &ack, &[]);
                }
                Step::Tick(ms) => {
                    now += Nanos::from_millis(u64::from(ms) * 10);
                    tcb.on_timer(now);
                }
                Step::ServeRetransmit => {
                    if let Some((off, len)) = pending_retx.pop() {
                        let len = len.min(highest_sent - off);
                        if len > 0 {
                            tcb.send_retransmit(
                                now,
                                off,
                                SgList::from_bytes(vec![7; len as usize]),
                            );
                        } else {
                            tcb.retransmit_abandoned();
                        }
                    }
                }
            }
            // Collect events and check their invariants.
            for ev in tcb.take_events() {
                match ev {
                    TcbEvent::AckedTo(off) => {
                        assert!(off <= highest_sent, "case {case}: cannot ack unsent data");
                        assert_eq!(off, acked, "case {case}: cumulative ack tracks peer");
                    }
                    TcbEvent::NeedRetransmit { offset, len } => {
                        assert!(offset >= acked, "case {case}: never retransmit acked data");
                        assert!(
                            offset < highest_sent,
                            "case {case}: retransmit within sent data"
                        );
                        assert!(len > 0, "case {case}");
                        pending_retx.push((offset, len));
                    }
                    TcbEvent::WindowOpen(n) => assert!(n > 0, "case {case}"),
                    _ => {}
                }
            }
            // Global invariants after every step.
            assert!(
                tcb.inflight() <= highest_sent - acked + 1_000_000,
                "case {case}"
            );
            assert_eq!(tcb.state, TcbState::Established, "case {case}");
            assert!(tcb.cc.cwnd() >= 1448, "case {case}: cwnd never below 1 MSS");
            let off = tcb.stream_offset_of_snd_nxt();
            assert!(off >= acked, "case {case}: snd_nxt never behind snd_una");
        }
    }
}

/// Sending exactly the permitted window never triggers the overshoot
/// guard, for any sequence of sends and full ACKs.
#[test]
fn window_accounting_is_exact() {
    let mut rng = SimRng::new(0xACC7);
    for case in 0..64 {
        let sizes: Vec<u64> = (0..rng.gen_range(1, 40))
            .map(|_| rng.gen_range(1, 100_000))
            .collect();
        let mut tcb = established();
        let mut now = Nanos::from_millis(2);
        let mut sent_total = 0u64;
        for s in sizes {
            let usable = tcb.usable_window();
            let n = s.min(usable);
            if n > 0 {
                tcb.send_data(now, SgList::from_bytes(vec![1; n as usize]), false);
                sent_total += n;
            }
            // Peer acks everything.
            let ack = TcpRepr {
                src_port: 5555,
                dst_port: 80,
                seq: SeqNumber(1001),
                ack: tcb.seq_at(sent_total),
                flags: TcpFlags::ACK,
                window: 4096,
                mss: None,
                wscale: None,
            };
            now += Nanos::from_millis(20);
            tcb.on_segment(now, &ack, &[]);
            tcb.take_events();
            assert_eq!(tcb.inflight(), 0, "case {case}");
        }
    }
}
