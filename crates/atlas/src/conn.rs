//! Per-connection state: response layouts and the stream map.
//!
//! An Atlas connection keeps no payload. What it keeps is *layout*:
//! for each response not yet fully acknowledged, where its header and
//! body sit in the TCP stream, so that any byte the peer loses can be
//! regenerated — header bytes from the request metadata, body bytes
//! by re-fetching the file range from disk and re-encrypting with the
//! stream-offset-derived nonce.

use dcn_crypto::{RECORD_HEADER_LEN, RECORD_PAYLOAD_MAX};
use dcn_httpd::RequestParser;
use dcn_store::FileId;
use dcn_tcpstack::Tcb;

/// Wire overhead per record (header + GCM tag).
pub const RECORD_OVERHEAD: u64 = (RECORD_HEADER_LEN + dcn_crypto::GCM_TAG_LEN) as u64;
/// Plaintext bytes per record.
pub const RECORD_PLAIN: u64 = RECORD_PAYLOAD_MAX as u64;
/// Wire bytes per full record.
pub const RECORD_WIRE: u64 = RECORD_PLAIN + RECORD_OVERHEAD;

/// Where a stream byte of a response body falls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BodyPos {
    /// Record index within the body.
    pub record: u64,
    /// Offset within the record's wire bytes (0 = first framing
    /// byte).
    pub off_in_record: u64,
}

/// The layout of one HTTP response on this connection's TCP stream.
#[derive(Clone, Debug)]
pub struct ResponseLayout {
    /// Stable id (pruning shifts positions, never ids).
    pub id: u64,
    /// Stream offset of the first header byte.
    pub start: u64,
    /// The header block (regenerable, kept because it is tiny).
    /// Shared (`Arc`) so cloning a layout for a completion, or slicing
    /// header bytes into a retransmit scatter-gather list, is a
    /// refcount bump instead of a heap copy.
    pub header: std::sync::Arc<[u8]>,
    pub file: FileId,
    /// Plaintext file offset where the body starts (non-zero for
    /// range-resumed responses; always record-aligned so disk fetches
    /// stay LBA-aligned).
    pub file_off: u64,
    /// Plaintext body length (file/chunk size minus `file_off`).
    pub body_len: u64,
    pub encrypted: bool,
}

impl ResponseLayout {
    /// Stream offset of the first body byte.
    #[must_use]
    pub fn body_start(&self) -> u64 {
        self.start + self.header.len() as u64
    }

    /// Wire length of the body.
    #[must_use]
    pub fn body_wire_len(&self) -> u64 {
        if self.encrypted {
            let records = self.body_len.div_ceil(RECORD_PLAIN).max(1);
            self.body_len + records * RECORD_OVERHEAD
        } else {
            self.body_len
        }
    }

    /// Stream offset one past the last byte of this response.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.body_start() + self.body_wire_len()
    }

    /// Number of records (encrypted) or 16 KiB fetch units
    /// (plaintext) in the body.
    #[must_use]
    pub fn n_records(&self) -> u64 {
        self.body_len.div_ceil(RECORD_PLAIN).max(1)
    }

    /// Plaintext length of record `i`.
    #[must_use]
    pub fn record_plain_len(&self, i: u64) -> u64 {
        let start = i * RECORD_PLAIN;
        (self.body_len - start).min(RECORD_PLAIN)
    }

    /// Wire length of record `i`.
    #[must_use]
    pub fn record_wire_len(&self, i: u64) -> u64 {
        self.record_plain_len(i) + if self.encrypted { RECORD_OVERHEAD } else { 0 }
    }

    /// Stream offset of record `i`'s first wire byte.
    #[must_use]
    pub fn record_stream_off(&self, i: u64) -> u64 {
        let per = if self.encrypted {
            RECORD_WIRE
        } else {
            RECORD_PLAIN
        };
        self.body_start() + i * per
    }

    /// File offset of record `i`'s plaintext.
    #[must_use]
    pub fn record_file_off(&self, i: u64) -> u64 {
        self.file_off + i * RECORD_PLAIN
    }

    /// Locate a body stream offset. Returns None for header bytes or
    /// out-of-response offsets.
    #[must_use]
    pub fn locate_body(&self, stream_off: u64) -> Option<BodyPos> {
        if stream_off < self.body_start() || stream_off >= self.end() {
            return None;
        }
        let rel = stream_off - self.body_start();
        let per = if self.encrypted {
            RECORD_WIRE
        } else {
            RECORD_PLAIN
        };
        Some(BodyPos {
            record: rel / per,
            off_in_record: rel % per,
        })
    }

    /// Does `stream_off` fall within the header block?
    #[must_use]
    pub fn in_header(&self, stream_off: u64) -> bool {
        stream_off >= self.start && stream_off < self.body_start()
    }
}

/// A fetch in flight for a connection.
#[derive(Clone, Copy, Debug)]
pub struct InflightFetch {
    /// Which response (stable layout id) and record.
    pub layout_id: u64,
    pub record: u64,
    /// Retransmission? Then only `[retx_off, retx_off+retx_len)` of
    /// the record's wire bytes are (re)sent.
    pub retx: Option<(u64, u64)>,
}

/// Per-connection state.
pub struct AtlasConn {
    pub tcb: Tcb,
    pub parser: RequestParser,
    /// Responses with unacknowledged bytes, oldest first. The last
    /// one may still be transmitting.
    pub layouts: Vec<ResponseLayout>,
    /// Next record of the active (last) layout to fetch.
    pub next_record: u64,
    /// Completed records (and headers) waiting for their turn on the
    /// TCP stream: disk completions arrive out of order, but a TCP
    /// stream is transmitted in order. Keyed by stream offset.
    pub ready_tx: std::collections::BTreeMap<u64, ReadyTx>,
    pub next_layout_id: u64,
    /// Window bytes reserved by issued-but-unsent fetches.
    pub reserved: u64,
    /// Requests parsed but not yet started (pipelining).
    pub pending_requests: std::collections::VecDeque<FileId>,
    /// GCM session cipher (encrypted runs).
    pub cipher: Option<dcn_crypto::RecordCipher>,
    /// Retransmit ranges waiting for a disk fetch.
    pub retx_inflight: u32,
    pub fetches_inflight: u32,
    /// Consecutive disk-fetch failures (reset on any success); the
    /// degradation policy aborts the connection past a bound.
    pub fetch_failures: u32,
    /// Torn down by the error-recovery policy: no further service,
    /// late disk completions just return their buffers.
    pub aborted: bool,
    /// Statistics.
    pub responses_completed: u64,
    /// When the connection was accepted (header-read deadline base).
    pub established_at: dcn_simcore::Nanos,
    /// Last forward progress: a request parsed or new bytes acked.
    /// Idle-keepalive reaping keys on this.
    pub last_progress: dcn_simcore::Nanos,
    /// Has at least one complete request head ever arrived? Until it
    /// does, the connection is on the slowloris clock.
    pub got_request: bool,
    /// Highest cumulatively acked stream offset seen (drain-rate
    /// measurement input).
    pub acked_stream_off: u64,
    /// Drain-rate window: acked offset at the window start…
    pub drain_mark: u64,
    /// …and when the window started. Reset whenever the connection
    /// stops holding DMA buffers.
    pub drain_mark_at: dcn_simcore::Nanos,
    /// Acked offset at the last overload sweep (abort-slowest ranking).
    pub sweep_acked: u64,
    /// Completion-sweep serial of the last record packetized for this
    /// connection. Matching the server's current sweep means the TCB
    /// is hot from the previous record of the same batch, so the
    /// packetize pass charges the batched (amortized) TX op cost.
    pub tx_sweep: u64,
}

impl AtlasConn {
    #[must_use]
    pub fn new(tcb: Tcb, cipher: Option<dcn_crypto::RecordCipher>) -> Self {
        AtlasConn {
            tcb,
            parser: RequestParser::new(),
            layouts: Vec::new(),
            next_record: 0,
            ready_tx: std::collections::BTreeMap::new(),
            next_layout_id: 0,
            reserved: 0,
            pending_requests: std::collections::VecDeque::new(),
            cipher,
            retx_inflight: 0,
            fetches_inflight: 0,
            fetch_failures: 0,
            aborted: false,
            responses_completed: 0,
            established_at: dcn_simcore::Nanos::ZERO,
            last_progress: dcn_simcore::Nanos::ZERO,
            got_request: false,
            acked_stream_off: 0,
            drain_mark: 0,
            drain_mark_at: dcn_simcore::Nanos::ZERO,
            sweep_acked: 0,
            tx_sweep: 0,
        }
    }

    /// Is the connection pinning DMA buffers right now (in-flight
    /// fetches, retransmit fetches, or completed records parked for
    /// their stream turn)?
    #[must_use]
    pub fn holds_buffers(&self) -> bool {
        self.fetches_inflight > 0
            || self.retx_inflight > 0
            || self.ready_tx.values().any(|r| r.token != 0)
    }

    /// No response in flight in any form — the keepalive-idle state.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.layouts.is_empty()
            && self.ready_tx.is_empty()
            && self.fetches_inflight == 0
            && self.retx_inflight == 0
            && self.pending_requests.is_empty()
    }

    /// The response currently being transmitted (if any records
    /// remain to fetch).
    #[must_use]
    pub fn active_layout(&self) -> Option<&ResponseLayout> {
        let l = self.layouts.last()?;
        (self.next_record < l.n_records()).then_some(l)
    }

    /// Drop layouts whose every byte is acknowledged.
    pub fn prune_acked(&mut self, acked_to: u64) {
        let keep_from = self
            .layouts
            .iter()
            .position(|l| l.end() > acked_to)
            .unwrap_or(self.layouts.len());
        if keep_from > 0 {
            self.layouts.drain(..keep_from);
        }
    }

    /// Find the layout containing `stream_off`.
    #[must_use]
    pub fn layout_at(&self, stream_off: u64) -> Option<usize> {
        self.layouts
            .iter()
            .position(|l| stream_off >= l.start && stream_off < l.end())
    }

    /// Find a layout by its stable id.
    #[must_use]
    pub fn layout_by_id(&self, id: u64) -> Option<&ResponseLayout> {
        self.layouts.iter().find(|l| l.id == id)
    }
}

/// A transmission-ready item parked until the stream reaches its
/// offset.
pub struct ReadyTx {
    pub sg: dcn_netdev::SgList,
    /// NIC completion token (diskmap buffer to recycle; 0 = none).
    pub token: u64,
    /// Responses completed when this goes out (metrics).
    pub completes_response: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(body: u64, encrypted: bool) -> ResponseLayout {
        ResponseLayout {
            id: 0,
            start: 1000,
            header: vec![0u8; 100].into(),
            file: FileId(3),
            file_off: 0,
            body_len: body,
            encrypted,
        }
    }

    #[test]
    fn plaintext_layout_maps_linearly() {
        let l = layout(300 * 1024, false);
        assert_eq!(l.body_start(), 1100);
        assert_eq!(l.body_wire_len(), 300 * 1024);
        assert_eq!(l.n_records(), 19);
        let p = l.locate_body(1100 + 20_000).unwrap();
        assert_eq!(p.record, 1);
        assert_eq!(p.off_in_record, 20_000 - 16384);
        // File offset of a record equals record × 16 KiB.
        assert_eq!(l.record_file_off(p.record), 16384);
    }

    #[test]
    fn encrypted_layout_accounts_for_framing() {
        let l = layout(300 * 1024, true);
        assert_eq!(l.body_wire_len(), 300 * 1024 + 19 * RECORD_OVERHEAD);
        // Record 1 starts one full wire record after the body start.
        assert_eq!(l.record_stream_off(1), l.body_start() + RECORD_WIRE);
        // Last record is short: 300KiB = 18*16KiB + 12288.
        assert_eq!(l.record_plain_len(18), 12288);
        assert_eq!(l.record_wire_len(18), 12288 + RECORD_OVERHEAD);
        // end() is consistent with summing records.
        let sum: u64 = (0..19).map(|i| l.record_wire_len(i)).sum();
        assert_eq!(l.end(), l.body_start() + sum);
    }

    #[test]
    fn locate_body_rejects_header_and_past_end() {
        let l = layout(16384, false);
        assert!(l.in_header(1000));
        assert!(l.in_header(1099));
        assert!(!l.in_header(1100));
        assert!(l.locate_body(1099).is_none());
        assert!(l.locate_body(1100).is_some());
        assert!(l.locate_body(l.end()).is_none());
        assert!(l.locate_body(l.end() - 1).is_some());
    }

    #[test]
    fn resumed_layout_offsets_records_into_the_file() {
        let l = ResponseLayout {
            file_off: 5 * RECORD_PLAIN,
            body_len: 300 * 1024 - 5 * RECORD_PLAIN,
            ..layout(0, true)
        };
        // Record framing is response-relative…
        assert_eq!(l.record_stream_off(1), l.body_start() + RECORD_WIRE);
        // …but disk reads are file-relative.
        assert_eq!(l.record_file_off(0), 5 * RECORD_PLAIN);
        assert_eq!(l.record_file_off(2), 7 * RECORD_PLAIN);
        assert_eq!(l.n_records(), 19 - 5);
    }

    #[test]
    fn tiny_body_is_one_record() {
        let l = layout(100, true);
        assert_eq!(l.n_records(), 1);
        assert_eq!(l.record_plain_len(0), 100);
        assert_eq!(l.body_wire_len(), 100 + RECORD_OVERHEAD);
    }
}
