//! # dcn-atlas — the Atlas video-streaming stack
//!
//! The paper's core contribution (§3): a specialized, synchronous,
//! buffer-cache-free stack that puts the SSD directly in the TCP
//! control loop. Per core (four of them in the evaluation), one
//! stack instance owns:
//!
//! * netmap-style TX/RX rings on the shared NIC,
//! * one diskmap queue pair per NVMe disk with a pool of 16 KiB DMA
//!   buffers (the device's throughput sweet spot, §3.1.3, and
//!   exactly one TLS record),
//! * the userspace TCP engine and HTTP layer for its share of
//!   connections (RSS-hashed),
//! * per-session AES-128-GCM record ciphers when encryption is on.
//!
//! The control loop implements §3's five steps:
//!
//! 1. a TCP ACK arrives and opens congestion-window space;
//! 2. once the space clears the high-watermark (10×MSS) the stack
//!    issues an NVMe read for the next 16 KiB of the file — no
//!    read-ahead, no buffer cache;
//! 3. the read completes into a DMA buffer that DDIO placed in the
//!    LLC;
//! 4. the completion handler encrypts the buffer **in place**, frames
//!    it as a TLS record, attaches TCP/IP headers and hands it to the
//!    NIC as one TSO descriptor (process-to-completion on one core);
//! 5. the NIC TX completion recycles the buffer (LIFO) for the next
//!    read.
//!
//! Retransmissions re-fetch from disk and re-encrypt with the nonce
//! derived from the stream offset (§3.2) — there are no socket
//! buffers anywhere.

pub mod conn;
pub mod server;

/// Overload policy now lives in `dcn-srvcore` (shared with kstack);
/// re-exported here so existing `dcn_atlas::overload::…` paths keep
/// working.
pub use dcn_srvcore::overload;

pub use conn::{AtlasConn, ResponseLayout};
pub use dcn_srvcore::{
    AdmissionConfig, AutotuneConfig, ControlPlane, IoTuner, LadderLevel, OverloadState,
    ResourceSnapshot,
};
pub use server::{parse_frame, AtlasConfig, AtlasMetrics, AtlasServer, FramePayload};
