//! The Atlas server: four single-core stack instances over shared
//! hardware (NIC, disks, memory system), each running the §3 control
//! loop process-to-completion.

use crate::conn::{AtlasConn, InflightFetch, ResponseLayout, RECORD_PLAIN};
use crate::overload::{AdmissionConfig, LadderLevel, ResourceSnapshot};
use dcn_crypto::RecordCipher;
use dcn_diskmap::{BufId, DiskId, DiskmapKernel, IoDesc, NvmeQueue};
use dcn_httpd::{parse_chunk_path, response_header, ResponseInfo};
use dcn_mem::{
    Agent, CoreSet, CostParams, Fidelity, HostMem, LlcConfig, MemSystem, PhysAlloc, PhysRegion,
};
use dcn_netdev::{Nic, NicConfig, SentBurst, SgList, WireFrame};
use dcn_nvme::{FirmwareParams, NvmeConfig, NvmeDevice};
use dcn_obs::{
    ChunkKind, CounterId, GaugeId, HistId, ProfHandle, ProfStage, Registry, Stage, StageProfiler,
    StallKind, Tracer,
};
use dcn_packet::{FlowId, Ipv4Repr, SeqNumber, TcpRepr, ETH_HEADER_LEN};
use dcn_simcore::{earliest, prf_bytes, Nanos, SimRng};
use dcn_srvcore::{AutotuneConfig, ControlPlane, CoreControl, IoTuner};
use dcn_store::{Catalog, CatalogBacking};
use dcn_tcpstack::{rst_for_syn, Endpoint, Tcb, TcbConfig, TcbEvent};
use dcn_tier::{CacheConfig, GetTicket, HotChunkCache, Placement, TierConfig, TierEngine};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Atlas deployment configuration.
#[derive(Clone, Debug)]
pub struct AtlasConfig {
    /// Stack instances, one per core (the paper uses 4 of 8).
    pub cores: usize,
    /// Diskmap buffers per (core, disk) queue pair.
    pub bufs_per_queue: u32,
    /// Buffer size == fetch unit == TLS record (16 KiB sweet spot).
    pub buf_size: u64,
    /// Fetch watermark: delay I/O until this much window is free
    /// (§3.2: 10×MSS).
    pub watermark: u64,
    /// Encrypt bodies (AES-128-GCM)?
    pub encrypted: bool,
    pub tcb: TcbConfig,
    pub nic: NicConfig,
    pub firmware: FirmwareParams,
    pub llc: LlcConfig,
    pub costs: CostParams,
    pub fidelity: Fidelity,
    pub server_endpoint: Endpoint,
    /// Enable the dcn-obs chunk-lifecycle tracer. Off by default:
    /// the disabled tracer adds no per-chunk allocations and the
    /// run is bit-identical either way (residency queries use the
    /// non-mutating LLC probe).
    pub trace: bool,
    /// Enable the dcn-obs per-stage cycle/DRAM profiler. Off by
    /// default: without it, no profiler handle is installed anywhere
    /// (the CPU/memory hooks are a `None` check), and the run is
    /// bit-identical either way — the profiler only records, it never
    /// alters completion times.
    pub profile: bool,
    /// Recovery policy: how many times a failed *fresh* disk read is
    /// retried (with exponential backoff) before the connection is
    /// degraded. Failed retransmit fetches don't consume this budget
    /// per-fetch — the RTO re-drives them — but count toward
    /// `max_conn_failures`.
    pub max_fetch_retries: u32,
    /// Recovery policy: consecutive fetch failures (any kind, reset
    /// by any success) after which the connection is aborted — the
    /// graceful per-connection degradation bound.
    pub max_conn_failures: u32,
    /// Base delay before re-issuing a failed fetch (doubles per
    /// attempt).
    pub fetch_retry_backoff: Nanos,
    /// Overload policy: admission watermarks, slow-client deadlines,
    /// and the degradation ladder (defaults never engage in ordinary
    /// runs).
    pub admission: AdmissionConfig,
    /// Online I/O-window autotuner. Off by default: `watermark` is
    /// used verbatim, reproducing the paper's fixed 10×MSS constant.
    /// When enabled, each core's tuner moves the fetch watermark and
    /// an in-flight read cap between a floor and a ceiling, driven by
    /// NVMe completion latency and SQ occupancy.
    pub autotune: AutotuneConfig,
    /// Tiered catalog. When set, only the popular head of the catalog
    /// is resident on the NVMe flat namespace; everything else is
    /// fetched on demand from a simulated cold object store, with
    /// popularity-driven promotion/demotion between the tiers. `None`
    /// (the default) reproduces the flat-namespace server
    /// bit-identically.
    pub tier: Option<TierConfig>,
    /// Hot-chunk DMA cache — the buffer-cache ablation. Independent
    /// knob so `ablation_tiers` can sweep {no-cache, cache} × {flat,
    /// tiered}. Cache fills/hits charge the memory system for every
    /// copy, so DRAM-bytes-per-net-byte reports the cache's true cost.
    pub tier_cache: Option<CacheConfig>,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            cores: 4,
            bufs_per_queue: 320,
            buf_size: RECORD_PLAIN,
            watermark: 10 * 1448,
            encrypted: false,
            tcb: TcbConfig::default(),
            nic: NicConfig {
                rings: 4,
                ..NicConfig::default()
            },
            firmware: FirmwareParams::p3700(),
            llc: LlcConfig::xeon_e5_2667v3(),
            costs: CostParams::default(),
            fidelity: Fidelity::Full,
            server_endpoint: Endpoint {
                mac: dcn_packet::MacAddr::from_host_id(1),
                ip: dcn_packet::Ipv4Addr::new(10, 0, 0, 1),
                port: 80,
            },
            trace: false,
            profile: false,
            max_fetch_retries: 3,
            max_conn_failures: 8,
            fetch_retry_backoff: Nanos::from_micros(50),
            admission: AdmissionConfig::default(),
            autotune: AutotuneConfig::default(),
            tier: None,
            tier_cache: None,
        }
    }
}

/// Steady-state measurements. Since the dcn-obs refactor this is a
/// thin view assembled from the unified registry by
/// [`AtlasServer::metrics`] — the registry (per-core labelled
/// counters) is the source of truth.
#[derive(Clone, Copy, Debug, Default)]
pub struct AtlasMetrics {
    pub http_payload_bytes: u64,
    pub responses: u64,
    pub disk_read_bytes: u64,
    pub retransmit_fetches: u64,
    pub conns: usize,
}

/// Pre-registered registry handles for the per-chunk hot path: one
/// counter per (signal, core), indexed by core — incrementing is a
/// `Vec` index add, no hashing or allocation.
struct AtlasIds {
    conns: CounterId,
    conns_aborted: CounterId,
    responses: Vec<CounterId>,
    http_payload_bytes: Vec<CounterId>,
    disk_read_bytes: Vec<CounterId>,
    retransmit_fetches: Vec<CounterId>,
    /// Successful record reads completed (every served record, fresh
    /// or retransmit, is exactly one of these — the satellite tests'
    /// "fresh disk fetch" witness).
    disk_reads: Vec<CounterId>,
    /// Failed reads observed (any status != Ok).
    fetch_errors: Vec<CounterId>,
    /// Failed fresh reads re-issued by the backoff policy.
    fetch_retries: Vec<CounterId>,
    /// Overload ladder actions: SYNs refused with RST.
    shed_new: Vec<CounterId>,
    /// …idle / never-sent-a-request connections reaped.
    reaped_idle: Vec<CounterId>,
    /// …slow-draining buffer-holders aborted.
    aborted_slow: Vec<CounterId>,
    /// Requests answered 503 + Retry-After while shedding.
    retry_503: Vec<CounterId>,
    /// Oversized / malformed request heads answered 431 and aborted.
    bad_requests: Vec<CounterId>,
    /// Connections parked on the buffer-pool waiter list because an
    /// alloc came up empty.
    empty_waits: Vec<CounterId>,
    /// Gauges refreshed by [`AtlasServer::publish_obs`] at every
    /// metric sample point — pre-registered so sampled runs do no
    /// per-sample name scans (`find_*`/`sum_prefixed` stay reserved
    /// for end-of-run export).
    pool_free_bufs: Vec<GaugeId>,
    overload_level: Vec<GaugeId>,
    live_conns: Vec<GaugeId>,
    leaked_bufs: GaugeId,
}

impl AtlasIds {
    fn register(reg: &mut Registry, cores: usize) -> Self {
        AtlasIds {
            conns: reg.counter("atlas.conns"),
            conns_aborted: reg.counter("atlas.conns_aborted"),
            responses: (0..cores)
                .map(|c| reg.counter_core("atlas.responses", c))
                .collect(),
            http_payload_bytes: (0..cores)
                .map(|c| reg.counter_core("atlas.http_payload_bytes", c))
                .collect(),
            disk_read_bytes: (0..cores)
                .map(|c| reg.counter_core("atlas.disk_read_bytes", c))
                .collect(),
            retransmit_fetches: (0..cores)
                .map(|c| reg.counter_core("atlas.retransmit_fetches", c))
                .collect(),
            disk_reads: (0..cores)
                .map(|c| reg.counter_core("atlas.disk_reads", c))
                .collect(),
            fetch_errors: (0..cores)
                .map(|c| reg.counter_core("atlas.fetch_errors", c))
                .collect(),
            fetch_retries: (0..cores)
                .map(|c| reg.counter_core("atlas.fetch_retries", c))
                .collect(),
            shed_new: (0..cores)
                .map(|c| reg.counter_core("atlas.overload.shed_new", c))
                .collect(),
            reaped_idle: (0..cores)
                .map(|c| reg.counter_core("atlas.overload.reaped_idle", c))
                .collect(),
            aborted_slow: (0..cores)
                .map(|c| reg.counter_core("atlas.overload.aborted_slow", c))
                .collect(),
            retry_503: (0..cores)
                .map(|c| reg.counter_core("atlas.overload.retry_503", c))
                .collect(),
            bad_requests: (0..cores)
                .map(|c| reg.counter_core("atlas.overload.bad_requests", c))
                .collect(),
            empty_waits: (0..cores)
                .map(|c| reg.counter_core("atlas.bufpool.empty_waits", c))
                .collect(),
            pool_free_bufs: (0..cores)
                .map(|c| reg.gauge_core("atlas.pool_free_bufs", c))
                .collect(),
            overload_level: (0..cores)
                .map(|c| reg.gauge_core("atlas.overload.level", c))
                .collect(),
            live_conns: (0..cores)
                .map(|c| reg.gauge_core("atlas.live_conns", c))
                .collect(),
            leaked_bufs: reg.gauge("atlas.leaked_bufs"),
        }
    }
}

/// Pre-registered `tier.*` registry handles; only present when
/// tiering and/or the DMA cache is configured, so flat-namespace runs
/// publish no tier metrics at all.
struct TierIds {
    hot_hits: Vec<CounterId>,
    cold_misses: Vec<CounterId>,
    /// Cold-tier egress actually delivered into DMA buffers.
    cold_bytes: Vec<CounterId>,
    cache_hits: Vec<CounterId>,
    cache_misses: Vec<CounterId>,
    /// Demand cold-fetch latency (issue → bytes landed), nanoseconds.
    cold_fetch_ns: HistId,
    hot_count: GaugeId,
    hit_ratio: GaugeId,
    cold_requests: GaugeId,
    cold_cost_ucents: GaugeId,
    promotions: GaugeId,
    demotions: GaugeId,
    promote_deferred: GaugeId,
    promoted_bytes: GaugeId,
    epochs: GaugeId,
    cache_inserts: GaugeId,
    cache_evictions: GaugeId,
    cache_hit_ratio: GaugeId,
    cache_dram_bytes: GaugeId,
}

impl TierIds {
    fn register(reg: &mut Registry, cores: usize) -> Self {
        TierIds {
            hot_hits: (0..cores)
                .map(|c| reg.counter_core("tier.hot_hits", c))
                .collect(),
            cold_misses: (0..cores)
                .map(|c| reg.counter_core("tier.cold_misses", c))
                .collect(),
            cold_bytes: (0..cores)
                .map(|c| reg.counter_core("tier.cold_bytes", c))
                .collect(),
            cache_hits: (0..cores)
                .map(|c| reg.counter_core("tier.cache_hits", c))
                .collect(),
            cache_misses: (0..cores)
                .map(|c| reg.counter_core("tier.cache_misses", c))
                .collect(),
            cold_fetch_ns: reg.histogram("tier.cold_fetch_ns", 1e5, 1e9, 40),
            hot_count: reg.gauge("tier.hot_count"),
            hit_ratio: reg.gauge("tier.hit_ratio"),
            cold_requests: reg.gauge("tier.cold_requests"),
            cold_cost_ucents: reg.gauge("tier.cold_cost_ucents"),
            promotions: reg.gauge("tier.promotions"),
            demotions: reg.gauge("tier.demotions"),
            promote_deferred: reg.gauge("tier.promote_deferred"),
            promoted_bytes: reg.gauge("tier.promoted_bytes"),
            epochs: reg.gauge("tier.epochs"),
            cache_inserts: reg.gauge("tier.cache_inserts"),
            cache_evictions: reg.gauge("tier.cache_evictions"),
            cache_hit_ratio: reg.gauge("tier.cache_hit_ratio"),
            cache_dram_bytes: reg.gauge("tier.cache_dram_bytes"),
        }
    }
}

/// Where an in-flight record fetch is being served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FetchSrc {
    /// NVMe flat namespace (the hot tier — the only source when
    /// tiering is off).
    Nvme,
    /// Simulated cold object store (tiered demand miss).
    Cold,
    /// Hot-chunk DMA cache (ablation; no storage round trip).
    Cache,
}

struct ConnSlot {
    conn: AtlasConn,
    core: usize,
    flow: FlowId,
}

/// A failed fresh fetch waiting for its backoff deadline.
struct RetryEntry {
    slot_idx: usize,
    fetch: InflightFetch,
    attempt: u32,
}

/// One per-core stack instance's storage handles.
struct CoreDisks {
    queues: Vec<NvmeQueue>, // one per disk
}

/// The server.
pub struct AtlasServer {
    pub cfg: AtlasConfig,
    pub mem: MemSystem,
    pub host: HostMem,
    pub nic: Nic,
    pub kernel: DiskmapKernel,
    pub cores: CoreSet,
    pub catalog: Catalog,
    core_disks: Vec<CoreDisks>,
    conns: HashMap<FlowId, usize>,
    slots: Vec<ConnSlot>,
    /// (deadline, slot) index for TCB timers.
    timers: BTreeSet<(Nanos, usize)>,
    timer_of: Vec<Option<Nanos>>,
    /// user-token → fetch bookkeeping. Token encodes (slot, seq of
    /// fetch); details live here.
    fetches: HashMap<u64, (usize, InflightFetch, BufId, usize, u32, FetchSrc)>, // slot, fetch, buf, disk, attempt, source
    next_token: u64,
    /// Failed fresh fetches awaiting their backoff deadline, keyed
    /// (deadline, serial).
    retries: std::collections::BTreeMap<(Nanos, u64), RetryEntry>,
    next_retry: u64,
    /// When to re-`sqsync` commands a QueueFull left staged (SQ
    /// backpressure recovery). `None` = nothing staged anywhere.
    resync_at: Option<Nanos>,
    /// RX slot DMA targets (one small region per ring, reused — RX
    /// traffic is pure ACKs).
    rx_slots: Vec<PhysRegion>,
    rng: SimRng,
    /// Unified dcn-obs registry: every subsystem (server, TCP, NIC,
    /// diskmap) publishes here; [`AtlasServer::metrics`] is a view.
    pub reg: Registry,
    /// Chunk-lifecycle tracer (no-op unless `cfg.trace`).
    pub tracer: Tracer,
    /// Per-stage cycle/DRAM profiler, shared with the CoreSet and
    /// MemSystem. `None` unless `cfg.profile`.
    profiler: Option<ProfHandle>,
    ids: AtlasIds,
    /// Virtual time of the wire event (RX frame or timer) that the
    /// current control-loop pass is servicing — the AckArrival stamp
    /// for any fetch that pass issues.
    trace_rx_at: Nanos,
    phys: PhysAlloc,
    /// Per-core control plane: hysteretic overload state (admission
    /// latch + ladder), live-connection count, and the I/O-window
    /// tuner — the [`ControlPlane`] skeleton shared with the kstack.
    ctl: Vec<CoreControl>,
    /// Connections parked waiting for a DMA buffer, per core; woken
    /// (re-pumped) after TX reclaim and disk completions free buffers.
    buf_waiters: Vec<BTreeSet<usize>>,
    /// Next overload sweep (slow-client deadlines + ladder tick).
    next_sweep: Nanos,
    /// (core, disk) queues with reads staged during the current
    /// control-loop pass, mapped to the latest staging time; one
    /// `nvme_sqsync` per dirty queue at pass end rings the doorbell
    /// for the whole batch. Always empty between public calls.
    dirty_doorbells: BTreeMap<(usize, usize), Nanos>,
    /// Reusable per-pass scratch for harvested disk completions
    /// (capacity established during warm-up; growth is a counted
    /// steady-state allocation fallback).
    completed_scratch: Vec<dcn_diskmap::CompletedIo>,
    /// Reusable RX-payload scratch (frames' TCP payloads are copied
    /// here instead of materializing a fresh `Vec` per frame).
    rx_scratch: Vec<u8>,
    /// Reusable per-call scratch for parsed-but-unstarted responses.
    resp_scratch: Vec<(ResponseInfo, Option<dcn_store::FileId>)>,
    /// Completion-sweep serial: bumped once per (core, advance) batch
    /// so connections can tell "first record this sweep" (full TCP TX
    /// op cost) from "later record, hot TCB" (batched cost).
    sweep_serial: u64,
    /// Tiering engine (`None` unless `cfg.tier`): residency map, cold
    /// object store, promotion policy.
    tier: Option<TierEngine>,
    tier_ids: Option<TierIds>,
    /// Hot-chunk DMA cache index (`None` unless `cfg.tier_cache`) and
    /// its slot memory, allocated once at construction.
    cache: Option<HotChunkCache>,
    cache_slots: Vec<PhysRegion>,
    /// Cache-hit completions synthesized off the NVMe path; `advance`
    /// delivers each at its virtual completion time.
    cache_ready: Vec<dcn_diskmap::CompletedIo>,
    /// Reusable scratch for drained cold-store tickets.
    cold_scratch: Vec<GetTicket>,
}

impl AtlasServer {
    /// Build the full server: 4 NVMe disks with synthetic content
    /// described by `catalog`, the NIC, and `cfg.cores` stack
    /// instances each attached to every disk.
    #[must_use]
    pub fn new(cfg: AtlasConfig, catalog: Catalog, seed: u64) -> Self {
        let mut phys = PhysAlloc::new();
        let mut mem = MemSystem::new(cfg.llc, cfg.costs, Nanos::from_millis(1));
        let mut cores = CoreSet::new(cfg.cores, &cfg.costs, Nanos::from_millis(1), true);
        let profiler = cfg
            .profile
            .then(|| std::rc::Rc::new(std::cell::RefCell::new(StageProfiler::enabled(cfg.cores))));
        if let Some(p) = &profiler {
            cores.set_profiler(p.clone());
            mem.set_profiler(p.clone());
        }
        let host = HostMem::new();
        let nvme_cfg = NvmeConfig {
            num_qpairs: cfg.cores as u16,
            firmware: cfg.firmware,
            fidelity: cfg.fidelity,
            ..NvmeConfig::default()
        };
        let disks: Vec<NvmeDevice> = (0..catalog.n_disks())
            .map(|d| {
                NvmeDevice::new(
                    nvme_cfg,
                    Box::new(CatalogBacking::new(&catalog, d)),
                    seed ^ (d as u64) << 8,
                )
            })
            .collect();
        let mut kernel = DiskmapKernel::new(disks);
        let mut core_disks = Vec::new();
        for core in 0..cfg.cores {
            let queues = (0..catalog.n_disks())
                .map(|d| {
                    NvmeQueue::nvme_open(
                        &mut kernel,
                        DiskId(d),
                        core as u16,
                        cfg.bufs_per_queue,
                        cfg.buf_size,
                        &mut phys,
                    )
                    .expect("attach")
                })
                .collect();
            core_disks.push(CoreDisks { queues });
        }
        let rx_slots = (0..cfg.cores).map(|_| phys.alloc(2048)).collect();
        let tier = cfg.tier.map(|tc| TierEngine::new(tc, &catalog, seed));
        let cache = cfg.tier_cache.map(HotChunkCache::new);
        let cache_slots: Vec<PhysRegion> = cache
            .as_ref()
            .map(|c| {
                (0..c.n_slots())
                    .map(|_| phys.alloc(c.slot_bytes()))
                    .collect()
            })
            .unwrap_or_default();
        let mut reg = Registry::new();
        let ids = AtlasIds::register(&mut reg, cfg.cores);
        let tier_ids =
            (tier.is_some() || cache.is_some()).then(|| TierIds::register(&mut reg, cfg.cores));
        let tracer = if cfg.trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        AtlasServer {
            nic: Nic::new(NicConfig {
                rings: cfg.cores,
                fidelity: cfg.fidelity,
                ..cfg.nic
            }),
            cores,
            kernel,
            mem,
            host,
            catalog,
            core_disks,
            conns: HashMap::new(),
            slots: Vec::new(),
            timers: BTreeSet::new(),
            timer_of: Vec::new(),
            fetches: HashMap::new(),
            next_token: 1,
            retries: std::collections::BTreeMap::new(),
            next_retry: 0,
            resync_at: None,
            rx_slots,
            rng: SimRng::new(seed ^ 0xA71A5),
            reg,
            tracer,
            profiler,
            ids,
            trace_rx_at: Nanos::ZERO,
            ctl: (0..cfg.cores)
                .map(|c| {
                    CoreControl::new(IoTuner::new(
                        cfg.autotune,
                        cfg.watermark,
                        seed ^ 0xA070 ^ ((c as u64) << 20),
                    ))
                })
                .collect(),
            buf_waiters: vec![BTreeSet::new(); cfg.cores],
            next_sweep: cfg.admission.sweep_interval,
            dirty_doorbells: BTreeMap::new(),
            completed_scratch: Vec::new(),
            rx_scratch: Vec::new(),
            resp_scratch: Vec::new(),
            sweep_serial: 0,
            tier,
            tier_ids,
            cache,
            cache_slots,
            cache_ready: Vec::new(),
            cold_scratch: Vec::with_capacity(64),
            cfg,
            phys,
        }
    }

    /// Tiering engine view (`None` unless `cfg.tier`).
    #[must_use]
    pub fn tier(&self) -> Option<&TierEngine> {
        self.tier.as_ref()
    }

    /// Hot-chunk cache view (`None` unless `cfg.tier_cache`).
    #[must_use]
    pub fn cache(&self) -> Option<&HotChunkCache> {
        self.cache.as_ref()
    }

    /// Assemble the legacy metrics view from the unified registry.
    #[must_use]
    pub fn metrics(&self) -> AtlasMetrics {
        AtlasMetrics {
            http_payload_bytes: self.reg.sum_prefixed("atlas.http_payload_bytes"),
            responses: self.reg.sum_prefixed("atlas.responses"),
            disk_read_bytes: self.reg.sum_prefixed("atlas.disk_read_bytes"),
            retransmit_fetches: self.reg.sum_prefixed("atlas.retransmit_fetches"),
            conns: self.reg.counter_value(self.ids.conns) as usize,
        }
    }

    /// Refresh gauge-type registry metrics from component state —
    /// buffer-pool depth per core, per-core TCP counters (RTO
    /// firings, retransmitted bytes), NIC and diskmap totals. Called
    /// at sample/report points, never on the per-chunk hot path; the
    /// per-core gauge handles are pre-registered in [`AtlasIds`] so a
    /// sampled run does no name scans here.
    pub fn publish_obs(&mut self) {
        for core in 0..self.cfg.cores {
            let free: u32 = self.core_disks[core]
                .queues
                .iter()
                .map(|q| q.pool_ref().available())
                .sum();
            self.reg.set(self.ids.pool_free_bufs[core], f64::from(free));
            self.reg.set(
                self.ids.overload_level[core],
                self.ctl[core].overload.level() as u8 as f64,
            );
            self.reg
                .set(self.ids.live_conns[core], self.ctl[core].live_conns as f64);
            let tcbs = self
                .slots
                .iter()
                .filter(|s| s.core == core)
                .map(|s| &s.conn.tcb);
            dcn_tcpstack::publish_tcb_metrics(&mut self.reg, core, tcbs);
        }
        self.nic.publish_metrics(&mut self.reg);
        self.kernel.publish_metrics(&mut self.reg);
        self.mem.counters.publish_metrics(&mut self.reg);
        let leaked = self.leaked_buffers();
        self.reg.set(self.ids.leaked_bufs, leaked as f64);
        if let Some(ids) = &self.tier_ids {
            if let Some(tier) = &self.tier {
                self.reg.set(ids.hot_count, tier.hot_count() as f64);
                self.reg.set(ids.hit_ratio, tier.hit_ratio());
                self.reg
                    .set(ids.cold_requests, tier.cold.stats.requests as f64);
                self.reg
                    .set(ids.cold_cost_ucents, tier.cold.stats.cost_ucents as f64);
                self.reg.set(ids.promotions, tier.stats.promotions as f64);
                self.reg.set(ids.demotions, tier.stats.demotions as f64);
                self.reg
                    .set(ids.promote_deferred, tier.stats.promote_deferred as f64);
                self.reg
                    .set(ids.promoted_bytes, tier.stats.promoted_bytes as f64);
                self.reg.set(ids.epochs, tier.stats.epochs as f64);
            }
            if let Some(cache) = &self.cache {
                self.reg.set(ids.cache_inserts, cache.stats.inserts as f64);
                self.reg
                    .set(ids.cache_evictions, cache.stats.evictions as f64);
                self.reg.set(ids.cache_hit_ratio, cache.hit_ratio());
                self.reg
                    .set(ids.cache_dram_bytes, cache.approx_dram_bytes() as f64);
            }
        }
        if let Some(p) = &self.profiler {
            p.borrow().publish(&mut self.reg);
        }
    }

    /// Snapshot the per-stage profile (`None` unless `cfg.profile`).
    #[must_use]
    pub fn prof_report(&self) -> Option<dcn_obs::ProfReport> {
        self.profiler.as_ref().map(|p| p.borrow().report())
    }

    // Profiler shims: one `Option` check when profiling is off.
    #[inline]
    fn prof_stage(&self, core: usize, stage: ProfStage) {
        if let Some(p) = &self.profiler {
            p.borrow_mut().set_context(core, stage);
        }
    }

    #[inline]
    fn prof_chunk(&self, stage: ProfStage, cycles: u64) {
        if let Some(p) = &self.profiler {
            p.borrow_mut().chunk_sample(stage, cycles);
        }
    }

    #[inline]
    fn prof_stall(&self, kind: StallKind) {
        if let Some(p) = &self.profiler {
            p.borrow_mut().stall(kind);
        }
    }

    fn core_of_flow(&self, flow: FlowId) -> usize {
        (flow.rss_hash() as usize) % self.cfg.cores
    }

    /// One core's resource observation for the admission policy:
    /// live connections, worst (minimum) DMA-pool free fraction and
    /// worst (maximum) NVMe SQ occupancy across its per-disk queues.
    fn resource_snapshot(&self, core: usize) -> ResourceSnapshot {
        let sq_depth = f64::from(NvmeConfig::default().queue_depth);
        let mut pool_free_frac = 1.0f64;
        let mut sq_occupancy = 0.0f64;
        for q in &self.core_disks[core].queues {
            let cap = f64::from(q.pool_ref().capacity()).max(1.0);
            pool_free_frac = pool_free_frac.min(f64::from(q.pool_ref().available()) / cap);
            sq_occupancy = sq_occupancy.max(q.inflight() as f64 / sq_depth);
        }
        ResourceSnapshot {
            conns: self.ctl[core].live_conns,
            pool_free_frac,
            sq_occupancy,
        }
    }

    /// Is any core currently shedding load (resource latch held or
    /// walking the degradation ladder) or at its connection cap? The
    /// cluster dispatcher treats a shedding server like `Draining`.
    #[must_use]
    pub fn is_shedding(&self) -> bool {
        self.any_shedding()
            || self
                .ctl
                .iter()
                .any(|c| c.live_conns >= self.cfg.admission.max_conns_per_core)
    }

    /// Current degradation-ladder rung for one core.
    #[must_use]
    pub fn overload_level(&self, core: usize) -> LadderLevel {
        self.ctl[core].overload.level()
    }

    // ------------------------------------------------------------ input

    /// Frames arriving from the wire at `now` (already RSS-steered by
    /// flow hash). Runs the full receive→fetch→(encrypt)→send loop
    /// and returns any bursts that left the NIC.
    pub fn on_wire_rx(&mut self, now: Nanos, frames: Vec<WireFrame>) -> Vec<SentBurst> {
        let mut scratch = std::mem::take(&mut self.rx_scratch);
        for frame in frames {
            let Some((flow, tcp, payload)) = parse_frame(&frame) else {
                continue;
            };
            let core = self.core_of_flow(flow);
            self.prof_stage(core, ProfStage::Parse);
            // Copy the borrowed payload into the reusable RX scratch
            // (no per-frame Vec; growth past the warm-up high-water
            // mark is a counted fallback allocation).
            let cap_before = scratch.capacity();
            payload.copy_into(&mut scratch);
            dcn_obs::steady::note_growth(cap_before, scratch.capacity());
            self.nic
                .rx_deliver(core, now, frame, &mut self.mem, self.rx_slots[core]);
            self.handle_segment(now, core, flow, &tcp, &scratch);
        }
        self.rx_scratch = scratch;
        self.flush_doorbells();
        // NIC TX DMA reads (payload leaving over the wire) attribute
        // to the TX-completion/drain stage.
        self.prof_stage(0, ProfStage::TxComplete);
        let bursts = self.nic.tx_drain_all(now, &mut self.mem, &self.host);
        self.trace_bursts(&bursts);
        self.reclaim_tx(now);
        self.wake_buf_waiters(now);
        self.flush_doorbells();
        bursts
    }

    /// Stamp NIC-DMA time (and LLC residency at that instant) for
    /// every chunk a drained burst carried. A burst whose payload DMA
    /// read touched zero DRAM bytes was served entirely from the LLC
    /// — the paper's ideal disk→LLC→wire path.
    fn trace_bursts(&mut self, bursts: &[SentBurst]) {
        if !self.tracer.is_enabled() {
            return;
        }
        for b in bursts {
            if b.completion != 0 {
                self.tracer
                    .stamp_tx(b.completion, Stage::NicTxDma, b.departed);
                self.tracer
                    .llc_at_nic_dma_tx(b.completion, b.dma_dram_bytes == 0);
            }
        }
    }

    fn handle_segment(
        &mut self,
        now: Nanos,
        core: usize,
        flow: FlowId,
        tcp: &TcpRepr,
        payload: &[u8],
    ) {
        let costs = self.cfg.costs;
        self.trace_rx_at = now;
        if tcp.flags.contains(dcn_packet::TcpFlags::SYN)
            && !tcp.flags.contains(dcn_packet::TcpFlags::ACK)
        {
            self.accept_conn(now, core, flow, tcp);
            return;
        }
        let Some(&slot_idx) = self.conns.get(&flow) else {
            return;
        };
        let cycles = costs.tcp_rx_ack_cycles;
        self.prof_stage(core, ProfStage::Parse);
        let done_at = self.cores.run_on(core, now, cycles);
        let slot = &mut self.slots[slot_idx];
        let outs = slot.conn.tcb.on_segment(now, tcp, payload);
        for out in outs {
            self.nic.tx_rings[core].push(out.into_tx(0));
        }
        self.process_conn_events(done_at, slot_idx);
    }

    fn accept_conn(&mut self, now: Nanos, core: usize, flow: FlowId, syn: &TcpRepr) {
        if self.conns.contains_key(&flow) {
            return; // duplicate SYN
        }
        let remote = Endpoint {
            mac: dcn_packet::MacAddr::from_host_id(flow.src_ip.0),
            ip: flow.src_ip,
            port: flow.src_port,
        };
        // Admission control: consult the per-core policy (connection
        // cap, pool low-watermark, SQ high-watermark) before spending
        // anything on this connection. Refused SYNs get an RST — the
        // cheapest possible "go away", no TCB, no DMA buffer.
        if !self.admit_syn(core) {
            let rst = rst_for_syn(self.cfg.server_endpoint, remote, syn);
            self.nic.tx_rings[core].push(rst.into_tx(0));
            self.reg.inc(self.ids.shed_new[core]);
            return;
        }
        let iss = SeqNumber(self.rng.next_u64() as u32);
        let (tcb, synack) = Tcb::accept(
            self.cfg.tcb,
            self.cfg.server_endpoint,
            remote,
            syn,
            iss,
            now,
        );
        let cipher = self.cfg.encrypted.then(|| {
            // Per-session key material (dummy keys, as in §4.2's TLS
            // emulation — handshake out of scope).
            let mut key = [0u8; 16];
            dcn_simcore::prf_bytes(u64::from(flow.rss_hash()) ^ 0x6B65_7931, 0, &mut key);
            RecordCipher::new(&key, flow.rss_hash())
        });
        let slot_idx = self.slots.len();
        let mut conn = AtlasConn::new(tcb, cipher);
        conn.established_at = now;
        conn.last_progress = now;
        conn.drain_mark_at = now;
        self.slots.push(ConnSlot { conn, core, flow });
        self.timer_of.push(None);
        self.conns.insert(flow, slot_idx);
        self.note_conn_opened(core);
        self.nic.tx_rings[core].push(synack.into_tx(0));
        self.sync_timer(slot_idx);
        self.reg.inc(self.ids.conns);
    }

    // ------------------------------------------------- event processing

    fn process_conn_events(&mut self, now: Nanos, slot_idx: usize) {
        let events = self.slots[slot_idx].conn.tcb.take_events();
        for ev in events {
            match ev {
                TcbEvent::Data(bytes) => self.on_request_bytes(now, slot_idx, &bytes),
                TcbEvent::WindowOpen(_) => {}
                TcbEvent::AckedTo(off) => {
                    let conn = &mut self.slots[slot_idx].conn;
                    conn.prune_acked(off);
                    if off > conn.acked_stream_off {
                        conn.acked_stream_off = off;
                        conn.last_progress = now;
                    }
                }
                TcbEvent::NeedRetransmit { offset, len } => {
                    self.on_retransmit_needed(now, slot_idx, offset, len);
                }
                TcbEvent::Established | TcbEvent::PeerFin => {}
                TcbEvent::Closed => {}
            }
        }
        self.drain_tx(now, slot_idx);
        self.pump(now, slot_idx);
        self.sync_timer(slot_idx);
    }

    fn on_request_bytes(&mut self, now: Nanos, slot_idx: usize, bytes: &[u8]) {
        let core = self.slots[slot_idx].core;
        let costs = self.cfg.costs;
        let file_size = self.catalog.file_size();
        let n_files = self.catalog.n_files();
        let encrypted = self.cfg.encrypted;
        // While this core is shedding, requests on already-established
        // keepalive connections are answered 503 + Retry-After instead
        // of being admitted into the fetch pipeline.
        let shedding = self.ctl[core].overload.is_shedding();
        let retry_after_ms = (self.cfg.admission.retry_after.as_nanos() / 1_000_000).max(1);
        let slot = &mut self.slots[slot_idx];
        slot.conn.parser.push(bytes);
        // Reusable per-call scratch (most calls park zero or one
        // response; the capacity persists across calls).
        let mut new_responses = std::mem::take(&mut self.resp_scratch);
        debug_assert!(new_responses.is_empty());
        let resp_cap_before = new_responses.capacity();
        let mut fatal_parse = false;
        loop {
            match slot.conn.parser.next_request() {
                Ok(Some(req)) => {
                    slot.conn.got_request = true;
                    slot.conn.last_progress = now;
                    if shedding {
                        new_responses
                            .push((ResponseInfo::ServiceUnavailable { retry_after_ms }, None));
                        self.reg.inc(self.ids.retry_503[core]);
                        continue;
                    }
                    // Range resumes are floored to a record boundary:
                    // records are the unit of both disk fetches and
                    // GCM framing, and reconnecting clients only ever
                    // ask for record-aligned offsets anyway.
                    let start = req.range_start.unwrap_or(0) / crate::conn::RECORD_PLAIN
                        * crate::conn::RECORD_PLAIN;
                    let info = match parse_chunk_path(&req.path) {
                        Some(f) if f.0 < n_files && start == 0 => ResponseInfo::Ok {
                            body_len: file_size,
                        },
                        Some(f) if f.0 < n_files && start < file_size => ResponseInfo::Partial {
                            body_len: file_size - start,
                            offset: start,
                        },
                        _ => ResponseInfo::NotFound,
                    };
                    new_responses.push((info, parse_chunk_path(&req.path)));
                }
                Ok(None) => break,
                Err(_) => {
                    // Fatal parse error (oversized request line or
                    // header block, garbage framing): answer 431 and
                    // tear the connection down — an unparseable stream
                    // has no request boundary to resynchronize on.
                    new_responses.push((ResponseInfo::HeaderTooLarge, None));
                    self.reg.inc(self.ids.bad_requests[core]);
                    fatal_parse = true;
                    break;
                }
            }
        }
        dcn_obs::steady::note_growth(resp_cap_before, new_responses.capacity());
        for (info, file) in new_responses.drain(..) {
            let cycles = costs.atlas_request_cycles;
            self.prof_stage(core, ProfStage::Parse);
            let done = self.cores.run_on(core, now, cycles);
            // Shared header block: the layout keeps one reference for
            // retransmit regeneration, the send path slices it into
            // the scatter-gather list without copying.
            let header: Arc<[u8]> = response_header(info, encrypted).into();
            let slot = &mut self.slots[slot_idx];
            // The next response starts where the previous one ends —
            // or, with nothing outstanding, at snd_nxt's stream
            // offset. The header goes out immediately (it is tiny and
            // the initial window always covers it).
            let cursor = slot
                .conn
                .layouts
                .last()
                .map(|l| l.end())
                .unwrap_or_else(|| slot.conn.tcb.stream_offset_of_snd_nxt());
            let served = match info {
                ResponseInfo::Ok { body_len } => Some((body_len, 0)),
                ResponseInfo::Partial { body_len, offset } => Some((body_len, offset)),
                ResponseInfo::NotFound
                | ResponseInfo::ServiceUnavailable { .. }
                | ResponseInfo::HeaderTooLarge => None,
            };
            // Tier classification is per admitted request (not per
            // record fetch): bump the object's heat once, count the
            // hit/miss, queue a promotion candidate if it crossed the
            // threshold.
            if let (Some(_), Some(f)) = (served, file) {
                if let Some(tier) = self.tier.as_mut() {
                    let ids = self.tier_ids.as_ref().expect("tier ids registered");
                    match tier.classify(f) {
                        Placement::Hot => self.reg.inc(ids.hot_hits[core]),
                        Placement::Cold => self.reg.inc(ids.cold_misses[core]),
                    }
                }
            }
            match (served, file) {
                (Some((body_len, file_off)), Some(file)) => {
                    let id = slot.conn.next_layout_id;
                    slot.conn.next_layout_id += 1;
                    let was_idle = slot.conn.active_layout().is_none();
                    slot.conn.layouts.push(ResponseLayout {
                        id,
                        start: cursor,
                        header: header.clone(),
                        file,
                        file_off,
                        body_len,
                        encrypted,
                    });
                    if was_idle {
                        slot.conn.next_record = 0;
                    }
                    let hdr_len = header.len();
                    slot.conn.ready_tx.insert(
                        cursor,
                        crate::conn::ReadyTx {
                            sg: SgList::from_shared(header, 0, hdr_len),
                            token: 0,
                            completes_response: false,
                        },
                    );
                    self.drain_tx(done, slot_idx);
                }
                _ => {
                    let slot = &mut self.slots[slot_idx];
                    let cursor2 = slot
                        .conn
                        .ready_tx
                        .last_key_value()
                        .map(|(k, v)| *k + v.sg.len())
                        .unwrap_or(cursor)
                        .max(cursor);
                    let hdr_len = header.len();
                    slot.conn.ready_tx.insert(
                        cursor2,
                        crate::conn::ReadyTx {
                            sg: SgList::from_shared(header, 0, hdr_len),
                            token: 0,
                            completes_response: false,
                        },
                    );
                    self.drain_tx(done, slot_idx);
                }
            }
        }
        self.resp_scratch = new_responses;
        if fatal_parse {
            // The 431 just parked drains above if the stream is
            // caught up; either way the connection is done.
            self.abort_conn(now, slot_idx);
        }
    }

    /// Transmit ready items whose stream offset has arrived — disk
    /// completions may arrive out of order, the TCP stream goes out
    /// in order.
    fn drain_tx(&mut self, now: Nanos, slot_idx: usize) {
        let core = self.slots[slot_idx].core;
        loop {
            // TX-ring backpressure: if the ring is full the item
            // stays parked; the next ACK (or TX completion) retries.
            if self.nic.tx_rings[core].space() == 0 {
                break;
            }
            let slot = &mut self.slots[slot_idx];
            let cursor = slot.conn.tcb.stream_offset_of_snd_nxt();
            let Some((&off, _)) = slot.conn.ready_tx.first_key_value() else {
                break;
            };
            debug_assert!(
                off >= cursor,
                "ready item behind the stream: {off} < {cursor}"
            );
            if off != cursor {
                // A hole: an earlier record's disk read is still in
                // flight — the in-order stream is NVMe-wait stalled.
                self.prof_stall(StallKind::NvmeWait);
                break;
            }
            let item = slot.conn.ready_tx.remove(&off).expect("just peeked");
            let len = item.sg.len();
            slot.conn.reserved = slot.conn.reserved.saturating_sub(len);
            if item.completes_response {
                slot.conn.responses_completed += 1;
                self.reg.inc(self.ids.responses[core]);
            }
            let out = slot.conn.tcb.send_data(now, item.sg, false);
            self.nic.tx_rings[core].push(out.into_tx(item.token));
            if item.token != 0 {
                self.tracer.stamp_tx(item.token, Stage::TsoPacketize, now);
            }
        }
    }

    /// §3 steps 1–2: issue on-demand reads for the active response
    /// while window space clears the watermark.
    fn pump(&mut self, now: Nanos, slot_idx: usize) {
        let core = self.slots[slot_idx].core;
        // Tuned per-core operating point (the fixed `cfg.watermark`
        // and an unbounded cap when autotuning is off).
        let watermark = self.ctl[core].tuner.watermark();
        let inflight_cap = self.ctl[core].tuner.inflight_cap();
        loop {
            let slot = &mut self.slots[slot_idx];
            // Start the next queued request if the active one is done.
            let Some(layout) = slot.conn.active_layout() else {
                break;
            };
            let record = slot.conn.next_record;
            let wire = layout.record_wire_len(record);
            let usable = slot
                .conn
                .tcb
                .usable_window()
                .saturating_sub(slot.conn.reserved);
            // The §3.2 watermark rule: issue the I/O once the window
            // clears 10×MSS (or the whole remaining tail, whichever is
            // smaller). A full 16 KiB record may overshoot the window
            // by up to record−watermark bytes — the paper sizes the
            // watermark so the fetched data is consumable immediately.
            //
            // Fallback (also §3.2): "if a TCP connection experiences a
            // retransmit timeout, or the effective window is smaller
            // than this high-watermark value and all sent data is
            // acknowledged, then we fall back issuing smaller I/O
            // requests" — without it, a post-loss cwnd below the
            // watermark with nothing in flight would deadlock the ACK
            // clock.
            let idle = slot.conn.tcb.inflight() == 0
                && slot.conn.fetches_inflight == 0
                && slot.conn.retx_inflight == 0
                && slot.conn.ready_tx.is_empty();
            if usable < watermark.min(wire) && !idle {
                // Window below the watermark with data in flight: the
                // pipeline is waiting on client ACKs, not on us.
                self.prof_stall(StallKind::CwndLimited);
                break;
            }
            // Tuned in-flight cap: when the tuner has backed off
            // (queueing latency or SQ saturation), stop issuing once
            // the core's outstanding reads reach the cap.
            if inflight_cap != u32::MAX {
                let outstanding: u32 = self.core_disks[core]
                    .queues
                    .iter()
                    .map(|q| (q.inflight() + q.staged_count()) as u32)
                    .sum();
                if outstanding >= inflight_cap {
                    self.prof_stall(StallKind::NvmeWait);
                    break;
                }
            }
            let file = layout.file;
            let plain = layout.record_plain_len(record);
            let file_off = layout.record_file_off(record);
            let layout_id = layout.id;
            slot.conn.next_record += 1;
            slot.conn.reserved += wire;
            slot.conn.fetches_inflight += 1;
            let issued = self.issue_fetch(
                now,
                slot_idx,
                InflightFetch {
                    layout_id,
                    record,
                    retx: None,
                },
                file,
                file_off,
                plain,
                0,
            );
            if !issued {
                // Buffer pool exhausted (TX completions will recycle
                // buffers shortly): undo, park on the waiter list —
                // the reclaim path re-pumps parked connections the
                // moment a buffer frees — and stop this round.
                let slot = &mut self.slots[slot_idx];
                slot.conn.next_record -= 1;
                slot.conn.reserved -= wire;
                slot.conn.fetches_inflight -= 1;
                if self.buf_waiters[core].insert(slot_idx) {
                    self.reg.inc(self.ids.empty_waits[core]);
                }
                self.prof_stall(StallKind::PoolEmpty);
                break;
            }
        }
    }

    /// Stage + submit one disk read. Returns false when the buffer
    /// pool is exhausted (caller decides how to back off). `attempt`
    /// is 0 for first issues; the retry policy re-enters with 1..=N.
    #[allow(clippy::too_many_arguments)]
    fn issue_fetch(
        &mut self,
        now: Nanos,
        slot_idx: usize,
        fetch: InflightFetch,
        file: dcn_store::FileId,
        file_off: u64,
        plain_len: u64,
        attempt: u32,
    ) -> bool {
        let core = self.slots[slot_idx].core;
        let (loc, aligned_len, _pre) = self.catalog.read_span(file, file_off, plain_len);
        let q = &mut self.core_disks[core].queues[loc.disk];
        // Retransmit-fetch priority: hold the last few buffers back
        // from fresh fetches so a connection in RTO recovery is never
        // starved behind newly admitted traffic. (Clamped so tiny
        // test pools aren't wedged by the reserve itself.)
        let reserve = self
            .cfg
            .admission
            .retx_reserve_bufs
            .min(q.pool_ref().capacity() / 4);
        if fetch.retx.is_none() && q.pool_ref().available() <= reserve {
            return false;
        }
        let Some(buf) = q.pool().alloc() else {
            return false;
        };
        let token = self.next_token;
        self.next_token += 1;
        let aligned = aligned_len.min(q.pool_ref().buf_size());
        // Route the fetch: DMA-cache probe first (a resident chunk
        // needs no storage round trip at all, hot or cold), then tier
        // residency — cold objects GET from the object store, hot
        // objects read the NVMe flat namespace as always. Every route
        // holds a pool buffer from here to TX reclaim, so cold misses
        // exert the same pool pressure admission control watches.
        let mut src = FetchSrc::Nvme;
        let mut cache_slot = 0usize;
        if let Some(cache) = self.cache.as_mut() {
            let ids = self.tier_ids.as_ref().expect("tier ids registered");
            match cache.lookup(file, file_off, plain_len) {
                Some(s) => {
                    src = FetchSrc::Cache;
                    cache_slot = s;
                    self.reg.inc(ids.cache_hits[core]);
                }
                None => self.reg.inc(ids.cache_misses[core]),
            }
        }
        if src == FetchSrc::Nvme {
            if let Some(tier) = self.tier.as_ref() {
                if tier.placement(file) == Placement::Cold {
                    src = FetchSrc::Cold;
                }
            }
        }
        match src {
            FetchSrc::Nvme => {
                q.nvme_read(
                    IoDesc {
                        user: token,
                        buf,
                        nsid: loc.nsid,
                        offset: loc.dev_offset,
                        len: aligned,
                    },
                    &self.cfg.costs,
                );
                // Doorbell batching: the command is staged now; one
                // `nvme_sqsync` per dirty (core, disk) queue at the end of
                // the control-loop pass rings the doorbell for every fetch
                // the pass produced, amortizing the syscall across the batch.
                // The per-command SQE-build cycles are accrued inside the
                // queue and charged at flush; the per-chunk profiler sample
                // here is the command's own share of the submit work.
                self.dirty_doorbells
                    .entry((core, loc.disk))
                    .and_modify(|t| *t = (*t).max(now))
                    .or_insert(now);
                self.prof_stage(core, ProfStage::Fetch);
                self.prof_chunk(ProfStage::Fetch, self.cfg.costs.nvme_submit_cycles);
            }
            FetchSrc::Cold => {
                // Issue a byte-range GET to the cold store. No SQE, no
                // doorbell — the request leaves over the NIC; its cost
                // here is the same submit-side CPU work as a disk read.
                let tier = self.tier.as_mut().expect("cold route without tier");
                tier.cold_fetch(now, file, file_off, aligned, token);
                self.prof_stage(core, ProfStage::Fetch);
                self.prof_chunk(ProfStage::Fetch, self.cfg.costs.nvme_submit_cycles);
                self.cores
                    .run_on(core, now, self.cfg.costs.nvme_submit_cycles);
            }
            FetchSrc::Cache => {
                // Serve from the DMA cache: copy slot → pool buffer,
                // charging the memory system both sides of the copy —
                // the DRAM bandwidth the ablation is asking about.
                let buf_region = self.core_disks[core].queues[loc.disk].buf_region(buf, plain_len);
                let slot_region = self.cache_slots[cache_slot];
                let rd = self.mem.cpu_read(now, slot_region);
                let wr = self.mem.cpu_write(now, buf_region);
                let cycles = rd.stall_cycles
                    + wr.stall_cycles
                    + (plain_len as f64 * self.cfg.costs.memcpy_cycles_per_byte) as u64;
                self.prof_stage(core, ProfStage::Fetch);
                self.prof_chunk(ProfStage::Fetch, cycles);
                let done = self.cores.run_on(core, now, cycles);
                if self.cfg.fidelity == Fidelity::Full {
                    let data = self.host.read_region(slot_region);
                    self.host.update_region(buf_region, |d| {
                        let n = d.len();
                        d.copy_from_slice(&data[..n]);
                    });
                }
                self.cache_ready.push(dcn_diskmap::CompletedIo {
                    user: token,
                    buf,
                    len: aligned,
                    status: dcn_diskmap::IoStatus::Ok,
                    submitted_at: now,
                    completed_at: done,
                });
            }
        }
        self.fetches
            .insert(token, (slot_idx, fetch, buf, loc.disk, attempt, src));
        if fetch.retx.is_some() {
            self.reg.inc(self.ids.retransmit_fetches[core]);
        }
        if self.tracer.is_enabled() {
            let kind = if fetch.retx.is_some() {
                ChunkKind::RetransmitFetch
            } else {
                ChunkKind::Fresh
            };
            self.tracer
                .begin(token, slot_idx as u64, core as u32, file_off, aligned, kind);
            self.tracer
                .stamp(token, Stage::AckArrival, self.trace_rx_at);
            if fetch.retx.is_none() {
                // A retransmit fetch is loss-driven, not watermark-
                // driven; the stage is legitimately absent for it.
                self.tracer.stamp(token, Stage::WatermarkTrigger, now);
            }
            // Staging time; the doorbell rings at pass end, at the
            // latest staging time recorded for this queue.
            self.tracer.stamp(token, Stage::NvmeSubmit, now);
        }
        true
    }

    /// Ring the doorbell once per (core, disk) queue that staged
    /// reads during this control-loop pass: one `nvme_sqsync` syscall
    /// covers every command the pass produced for that queue (the §3
    /// batching argument, applied to the storage side). Called at the
    /// end of every public entry point; between public calls no
    /// intentionally-staged command remains (QueueFull leftovers are
    /// re-driven via `resync_at`).
    fn flush_doorbells(&mut self) {
        while let Some(((core, disk), at)) = self.dirty_doorbells.pop_first() {
            let q = &mut self.core_disks[core].queues[disk];
            if q.staged_count() == 0 {
                continue;
            }
            let cycles = q
                .nvme_sqsync(&mut self.kernel, at, &self.cfg.costs)
                .expect("sqsync");
            if q.staged_count() > 0 {
                // The SQ refused (part of) the batch — QueueFull
                // backpressure, real or injected. The commands stay
                // staged; schedule a resubmission pass.
                let t = at + RESYNC_DELAY;
                self.resync_at = Some(self.resync_at.map_or(t, |x| x.min(t)));
            }
            self.prof_stage(core, ProfStage::Fetch);
            self.cores.run_on(core, at, cycles);
        }
    }

    fn on_retransmit_needed(&mut self, now: Nanos, slot_idx: usize, offset: u64, len: u64) {
        let slot = &mut self.slots[slot_idx];
        let Some(layout_idx) = slot.conn.layout_at(offset) else {
            // Nothing known at this offset (already pruned?): nothing
            // we can do; the RTO path will re-ask.
            return;
        };
        let layout = &slot.conn.layouts[layout_idx];
        if layout.in_header(offset) {
            // Header bytes: slice the shared header block into the
            // scatter-gather list — a refcount bump, no copy.
            let rel = (offset - layout.start) as usize;
            let end = (rel + len as usize).min(layout.header.len());
            let sg = SgList::from_shared(layout.header.clone(), rel, end - rel);
            let out = slot.conn.tcb.send_retransmit(now, offset, sg);
            let core = slot.core;
            self.nic.tx_rings[core].push(out.into_tx(0));
            return;
        }
        let Some(pos) = layout.locate_body(offset) else {
            return;
        };
        // Re-fetch the containing record; on completion, slice out
        // exactly [off_in_record, off_in_record+len).
        let record = pos.record;
        let file = layout.file;
        let plain = layout.record_plain_len(record);
        let file_off = layout.record_file_off(record);
        let wire_len = layout.record_wire_len(record);
        let retx_len = len.min(wire_len - pos.off_in_record);
        let layout_id = layout.id;
        slot.conn.retx_inflight += 1;
        let issued = self.issue_fetch(
            now,
            slot_idx,
            InflightFetch {
                layout_id,
                record,
                retx: Some((pos.off_in_record, retx_len)),
            },
            file,
            file_off,
            plain,
            0,
        );
        if !issued {
            // No buffer for the retransmit right now: tell the TCB so
            // the RTO (or further dup ACKs) can re-request it.
            let slot = &mut self.slots[slot_idx];
            slot.conn.retx_inflight -= 1;
            slot.conn.tcb.retransmit_abandoned();
        }
    }

    // ----------------------------------------------------- disk → wire

    /// Next instant the server needs service (disk completion, TCB
    /// timer, or a NIC port freeing up for queued descriptors).
    #[must_use]
    pub fn poll_at(&self) -> Option<Nanos> {
        let t = self.kernel.poll_at();
        let timer = self.timers.iter().next().map(|(d, _)| *d);
        let retry = self.retries.keys().next().map(|&(d, _)| d);
        // The overload sweep only needs to run while connections
        // exist; an empty server stays fully quiescent.
        let sweep =
            (self.ctl.iter().map(|c| c.live_conns).sum::<usize>() > 0).then_some(self.next_sweep);
        let tier = self
            .tier
            .as_ref()
            .map(TierEngine::poll_at)
            .filter(|&at| at != Nanos::MAX);
        let cache = self.cache_ready.iter().map(|io| io.completed_at).min();
        earliest(
            earliest(earliest(t, timer), self.nic.poll_at()),
            earliest(
                earliest(earliest(retry, self.resync_at), sweep),
                earliest(tier, cache),
            ),
        )
    }

    /// Advance to `now`: harvest disk completions (steps 3–5) and
    /// fire TCP timers. Returns bursts that left the NIC.
    pub fn advance(&mut self, now: Nanos) -> Vec<SentBurst> {
        // Disk-completion DMA writes (and any DDIO-cap evictions they
        // force) attribute to the fetch stage.
        self.prof_stage(0, ProfStage::Fetch);
        self.kernel.advance(now, &mut self.mem, &mut self.host);
        if self.resync_at.is_some_and(|t| t <= now) {
            self.resync_at = None;
            self.resync_staged(now);
        }
        self.fire_retries(now);
        if now >= self.next_sweep {
            self.overload_sweep(now);
            self.next_sweep = now + self.cfg.admission.sweep_interval;
        }
        // Batched completion sweep: gather every finished read for a
        // core (across all of its per-disk queues) into one reusable
        // scratch, feed the I/O tuner its latency/occupancy signals,
        // then run a single crypto+packetize pass over the batch —
        // consecutive records of one connection ride the hot TCB at
        // the batched TX-op cost, and the DMA buffers are still
        // LLC-resident when the pass reaches them.
        let n_disks = self.catalog.n_disks();
        let depth = usize::from(NvmeConfig::default().queue_depth);
        for core in 0..self.cfg.cores {
            self.sweep_serial += 1;
            let mut batch = std::mem::take(&mut self.completed_scratch);
            debug_assert!(batch.is_empty());
            let cap_before = batch.capacity();
            for disk in 0..n_disks {
                let mark = batch.len();
                let cycles = {
                    let q = &mut self.core_disks[core].queues[disk];
                    q.nvme_consume_completions_into(
                        &mut self.kernel,
                        now,
                        64,
                        &self.cfg.costs,
                        &mut batch,
                    )
                    .expect("consume")
                };
                if cycles > 0 {
                    self.prof_stage(core, ProfStage::Fetch);
                    self.cores.run_on(core, now, cycles);
                }
                if batch.len() > mark {
                    let q = &self.core_disks[core].queues[disk];
                    let outstanding = q.inflight() + q.staged_count();
                    for io in &batch[mark..] {
                        let lat = (io.completed_at - io.submitted_at).as_nanos();
                        self.ctl[core]
                            .tuner
                            .observe_completion(lat, outstanding, depth);
                    }
                }
            }
            dcn_obs::steady::note_growth(cap_before, batch.capacity());
            for io in batch.drain(..) {
                self.complete_fetch(now, io);
            }
            self.completed_scratch = batch;
        }
        self.drain_tier(now);
        // TCB timers.
        let due: Vec<usize> = self
            .timers
            .range(..=(now, usize::MAX))
            .map(|&(_, s)| s)
            .collect();
        for slot_idx in due {
            self.trace_rx_at = now;
            let slot = &mut self.slots[slot_idx];
            slot.conn.tcb.on_timer(now);
            self.process_conn_events(now, slot_idx);
        }
        self.prof_stage(0, ProfStage::TxComplete);
        let bursts = self.nic.tx_drain_all(now, &mut self.mem, &self.host);
        self.trace_bursts(&bursts);
        self.reclaim_tx(now);
        self.wake_buf_waiters(now);
        self.flush_doorbells();
        bursts
    }

    /// Tiered-catalog service, run each `advance` after the NVMe
    /// sweep: epoch work (heat decay, promotion launches), cold-store
    /// completions, and deferred cache-hit completions. Cold demand
    /// misses materialize their bytes into the DMA buffer reserved at
    /// issue (arriving over the NIC, charged as NIC DMA) and then ride
    /// the ordinary encrypt→packetize path; promotion reads are
    /// absorbed inside the engine. Deliberately *not* fed to the
    /// I/O-window tuner — cold latency is not an NVMe signal.
    fn drain_tier(&mut self, now: Nanos) {
        if let Some(tier) = self.tier.as_mut() {
            tier.maybe_epoch(now);
            let mut tickets = std::mem::take(&mut self.cold_scratch);
            debug_assert!(tickets.is_empty());
            tier.drain_serving(now, &mut tickets);
            if !tickets.is_empty() {
                self.sweep_serial += 1;
                for tk in tickets.drain(..) {
                    let Some(&(slot_idx, _, buf, disk, _, _)) = self.fetches.get(&tk.token) else {
                        continue;
                    };
                    let core = self.slots[slot_idx].core;
                    let region = self.core_disks[core].queues[disk].buf_region(buf, tk.len);
                    if self.cfg.fidelity == Fidelity::Full {
                        let seed = self.catalog.file_seed(tk.file);
                        self.host
                            .update_region(region, |data| prf_bytes(seed, tk.offset, data));
                    }
                    self.prof_stage(core, ProfStage::Fetch);
                    self.mem.dma_write(now, Agent::NicDma, region);
                    if let Some(ids) = &self.tier_ids {
                        self.reg.add(ids.cold_bytes[core], tk.len);
                        self.reg.observe(
                            ids.cold_fetch_ns,
                            (tk.done_at - tk.issued_at).as_nanos() as f64,
                        );
                    }
                    self.complete_fetch(
                        now,
                        dcn_diskmap::CompletedIo {
                            user: tk.token,
                            buf,
                            len: tk.len,
                            status: dcn_diskmap::IoStatus::Ok,
                            submitted_at: tk.issued_at,
                            completed_at: tk.done_at,
                        },
                    );
                }
            }
            self.cold_scratch = tickets;
        }
        if !self.cache_ready.is_empty() {
            self.sweep_serial += 1;
            let mut i = 0;
            while i < self.cache_ready.len() {
                if self.cache_ready[i].completed_at <= now {
                    let io = self.cache_ready.swap_remove(i);
                    self.complete_fetch(now, io);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// §3 step 4: read completion → (encrypt in place) → packetize →
    /// transmit.
    fn complete_fetch(&mut self, now: Nanos, io: dcn_diskmap::CompletedIo) {
        let Some((slot_idx, fetch, buf, disk, attempt, src)) = self.fetches.remove(&io.user) else {
            return;
        };
        self.tracer
            .stamp(io.user, Stage::FirmwareComplete, io.completed_at);
        let core = self.slots[slot_idx].core;
        let costs = self.cfg.costs;
        if self.slots[slot_idx].conn.aborted {
            // Late completion for a torn-down connection: the only
            // obligation left is returning the buffer to its pool.
            self.core_disks[core].queues[disk].pool().free(buf);
            self.tracer.discard(io.user);
            return;
        }
        if io.status != dcn_diskmap::IoStatus::Ok {
            self.fetch_failed(now, io.user, slot_idx, fetch, buf, disk, attempt);
            return;
        }
        let slot = &mut self.slots[slot_idx];
        slot.conn.fetch_failures = 0;
        let Some(layout) = slot.conn.layout_by_id(fetch.layout_id) else {
            // The response was fully acked and pruned while this
            // (retransmit) fetch was in flight: drop it, and undo the
            // in-flight accounting so the idle-fallback logic doesn't
            // see a phantom fetch forever.
            match fetch.retx {
                Some(_) => {
                    slot.conn.retx_inflight = slot.conn.retx_inflight.saturating_sub(1);
                    slot.conn.tcb.retransmit_abandoned();
                }
                None => {
                    slot.conn.fetches_inflight = slot.conn.fetches_inflight.saturating_sub(1);
                }
            }
            self.core_disks[core].queues[disk].pool().free(buf);
            self.tracer.discard(io.user);
            return;
        };
        let layout = layout.clone();
        let plain_len = layout.record_plain_len(fetch.record);
        let buf_region = self.core_disks[core].queues[disk].buf_region(buf, plain_len);
        // Batched packetize: the second and later records of the same
        // connection within one completion sweep reuse the hot TCB
        // state, the previous record's header template and the shared
        // TX-ring doorbell, at the reduced batched op cost.
        let batched = slot.conn.tx_sweep == self.sweep_serial;
        slot.conn.tx_sweep = self.sweep_serial;
        let tx_op_cycles = if batched {
            costs.tcp_tx_batched_op_cycles
        } else {
            costs.tcp_tx_op_cycles
        };
        let mut cycles = tx_op_cycles;

        // DMA-cache fill: capture the plaintext record before the
        // in-place encrypt below scrambles the buffer. Fresh fetches
        // only, and only for objects hot enough to filter one-hit
        // wonders; a record already resident (including the one this
        // completion was itself served from) is a no-op. Both sides of
        // the copy are charged to the memory system — the cache's
        // DRAM cost is never free.
        if fetch.retx.is_none() && src != FetchSrc::Cache {
            if let Some(cache) = self.cache.as_mut() {
                let hot_enough = self
                    .tier
                    .as_ref()
                    .is_none_or(|t| t.heat(layout.file) >= cache.insert_min_heat());
                if hot_enough && plain_len <= cache.slot_bytes() {
                    let rec_file_off = layout.record_file_off(fetch.record);
                    if let Some(slot_i) = cache.insert(layout.file, rec_file_off, plain_len) {
                        let slot_region = self.cache_slots[slot_i];
                        let rd = self.mem.cpu_read(now, buf_region);
                        let wr = self.mem.cpu_write(now, slot_region);
                        cycles += rd.stall_cycles
                            + wr.stall_cycles
                            + (plain_len as f64 * costs.memcpy_cycles_per_byte) as u64;
                        if self.cfg.fidelity == Fidelity::Full {
                            let data = self.host.read_region(buf_region);
                            self.host.update_region(slot_region, |d| {
                                d[..data.len()].copy_from_slice(&data);
                            });
                        }
                    }
                }
            }
        }

        // Encrypt in place (the LLC-resident DMA buffer), derive the
        // nonce from the record's position in the stream.
        let mut framing_tag: Option<([u8; 5], [u8; 16])> = None;
        if layout.encrypted {
            // Fig 12/14 classification, per chunk: is the DMA'd
            // buffer still LLC-resident as the CPU starts the
            // in-place encrypt? (Non-mutating probe — tracing on or
            // off, the simulation is bit-identical.)
            if self.tracer.is_enabled() {
                let resident = self.mem.probe_region(buf_region);
                self.tracer.llc_at_encrypt(io.user, resident);
                self.tracer.stamp(io.user, Stage::EncryptStart, now);
            }
            // (Field access, not the shim: `slot` holds a mutable
            // borrow of self.slots across this region.)
            if let Some(p) = &self.profiler {
                let mut p = p.borrow_mut();
                p.set_context(core, ProfStage::Encrypt);
                p.add_encrypt_bytes(plain_len);
            }
            let rmw = self.mem.cpu_rmw(now, buf_region);
            let enc_cycles =
                rmw.stall_cycles + (plain_len as f64 * costs.aes_gcm_cycles_per_byte) as u64;
            cycles += enc_cycles;
            if let Some(p) = &self.profiler {
                p.borrow_mut().chunk_sample(ProfStage::Encrypt, enc_cycles);
            }
            let record_plain_off = fetch.record * RECORD_PLAIN;
            let tag = if self.cfg.fidelity == Fidelity::Full {
                let cipher = slot
                    .conn
                    .cipher
                    .as_ref()
                    .expect("encrypted conn has cipher");
                self.host.update_region(buf_region, |data| {
                    cipher.seal_record(record_plain_off, data)
                })
            } else {
                [0u8; 16]
            };
            let mut rec_hdr = [0x17, 0x03, 0x03, 0, 0]; // TLS1.2 app-data
            rec_hdr[3..5].copy_from_slice(
                &u16::try_from(plain_len + 16)
                    .expect("record fits u16")
                    .to_be_bytes(),
            );
            framing_tag = Some((rec_hdr, tag));
        } else {
            // Plaintext path still touches headers only; payload goes
            // DMA→DMA untouched (the paper's Fig 5 ideal).
            if let Some(p) = &self.profiler {
                p.borrow_mut().set_context(core, ProfStage::Packetize);
            }
        }

        // Build the record's wire SgList. TLS framing (5-byte record
        // header, 16-byte GCM tag) rides inline in the chunk — no
        // heap allocation per record.
        let mut sg = SgList::empty();
        if let Some((hdr, tag)) = &framing_tag {
            sg.push_inline(hdr);
            sg.push_region(buf_region);
            sg.push_inline(tag);
        } else {
            sg.push_region(buf_region);
        }

        if let Some(p) = &self.profiler {
            let mut p = p.borrow_mut();
            p.chunk_sample(ProfStage::Packetize, tx_op_cycles);
            p.chunk_done(core);
        }
        let done_at = self.cores.run_on(core, now, cycles);
        if layout.encrypted {
            self.tracer.stamp(io.user, Stage::EncryptEnd, done_at);
        }
        let token = tx_token(core, disk, buf);
        self.tracer.map_tx(token, io.user);
        match fetch.retx {
            None => {
                slot.conn.fetches_inflight -= 1;
                self.reg.inc(self.ids.disk_reads[core]);
                self.reg.add(self.ids.http_payload_bytes[core], sg.len());
                // `disk_read_bytes` counts storage reads (NVMe or the
                // cold store); a cache hit moved no storage bytes.
                if src != FetchSrc::Cache {
                    self.reg.add(self.ids.disk_read_bytes[core], io.len);
                }
                let last = fetch.record + 1 == layout.n_records()
                    && fetch.layout_id + 1 == slot.conn.next_layout_id;
                // Park at the record's stream offset; drain sends
                // everything in order.
                let prev = slot.conn.ready_tx.insert(
                    layout.record_stream_off(fetch.record),
                    crate::conn::ReadyTx {
                        sg,
                        token,
                        completes_response: last,
                    },
                );
                debug_assert!(
                    prev.is_none(),
                    "duplicate fetch parked at one stream offset (would leak a buffer)"
                );
                self.drain_tx(done_at, slot_idx);
            }
            Some((off, len)) => {
                slot.conn.retx_inflight -= 1;
                self.reg.inc(self.ids.disk_reads[core]);
                if self.nic.tx_rings[core].space() == 0 {
                    // TX ring full: a push would be rejected and the
                    // descriptor — with its DMA buffer — dropped on
                    // the floor. Same policy as a failed retransmit
                    // read: recycle the buffer and abandon to the
                    // RTO, which re-drives the range.
                    slot.conn.tcb.retransmit_abandoned();
                    self.core_disks[core].queues[disk].pool().free(buf);
                    self.tracer.discard(io.user);
                } else {
                    // Slice exactly the requested wire range out of
                    // the regenerated record; retransmissions bypass
                    // the ordered queue (their stream position is
                    // explicit).
                    let mut rest = sg;
                    let _ = rest.split_front(off);
                    let mut want = rest;
                    let piece = want.split_front(len.min(want.len()));
                    let stream_off = layout.record_stream_off(fetch.record) + off;
                    let out = slot.conn.tcb.send_retransmit(done_at, stream_off, piece);
                    self.nic.tx_rings[core].push(out.into_tx(token));
                    self.tracer.stamp_tx(token, Stage::TsoPacketize, done_at);
                }
            }
        }
        // Keep pumping: completing a fetch freed a buffer slot and the
        // window may allow more.
        self.pump(done_at, slot_idx);
        self.sync_timer(slot_idx);
    }

    /// Recovery policy for a read that completed with an error. The
    /// buffer is returned immediately (the DMA never happened; its
    /// content is garbage). Fresh fetches retry with exponential
    /// backoff up to `max_fetch_retries`; retransmit fetches are
    /// abandoned to the RTO, which re-drives them — the mechanism
    /// that survives a second failure. Past `max_conn_failures`
    /// consecutive errors the connection is degraded away.
    #[allow(clippy::too_many_arguments)]
    fn fetch_failed(
        &mut self,
        now: Nanos,
        user: u64,
        slot_idx: usize,
        fetch: InflightFetch,
        buf: BufId,
        disk: usize,
        attempt: u32,
    ) {
        let core = self.slots[slot_idx].core;
        self.core_disks[core].queues[disk].pool().free(buf);
        self.tracer.discard(user);
        self.reg.inc(self.ids.fetch_errors[core]);
        let max_conn = self.cfg.max_conn_failures;
        let slot = &mut self.slots[slot_idx];
        slot.conn.fetch_failures += 1;
        let failures = slot.conn.fetch_failures;
        match fetch.retx {
            Some(_) => {
                slot.conn.retx_inflight -= 1;
                slot.conn.tcb.retransmit_abandoned();
                if failures > max_conn {
                    self.abort_conn(now, slot_idx);
                } else {
                    // The RTO timer is armed (unacked data exists by
                    // definition of a retransmission); it will ask
                    // again.
                    self.sync_timer(slot_idx);
                }
            }
            None => {
                if attempt >= self.cfg.max_fetch_retries || failures > max_conn {
                    self.abort_conn(now, slot_idx);
                } else {
                    self.reg.inc(self.ids.fetch_retries[core]);
                    let backoff = Nanos::from_nanos(
                        self.cfg.fetch_retry_backoff.as_nanos() << attempt.min(16),
                    );
                    let serial = self.next_retry;
                    self.next_retry += 1;
                    // fetches_inflight / reserved / next_record keep
                    // counting this record — it is still logically in
                    // flight until the retry resolves it.
                    self.retries.insert(
                        (now + backoff, serial),
                        RetryEntry {
                            slot_idx,
                            fetch,
                            attempt: attempt + 1,
                        },
                    );
                }
            }
        }
    }

    /// Re-issue failed fresh fetches whose backoff deadline passed.
    fn fire_retries(&mut self, now: Nanos) {
        while let Some((&(deadline, serial), _)) = self.retries.first_key_value() {
            if deadline > now {
                break;
            }
            let entry = self.retries.remove(&(deadline, serial)).expect("peeked");
            let slot = &mut self.slots[entry.slot_idx];
            if slot.conn.aborted {
                continue; // teardown already reconciled the counters
            }
            let Some(layout) = slot.conn.layout_by_id(entry.fetch.layout_id) else {
                // Unreachable for fresh fetches in practice (an unsent
                // record's layout can't be pruned); reconcile anyway.
                slot.conn.fetches_inflight = slot.conn.fetches_inflight.saturating_sub(1);
                continue;
            };
            let file = layout.file;
            let plain = layout.record_plain_len(entry.fetch.record);
            let file_off = layout.record_file_off(entry.fetch.record);
            self.trace_rx_at = now;
            let issued = self.issue_fetch(
                now,
                entry.slot_idx,
                entry.fetch,
                file,
                file_off,
                plain,
                entry.attempt,
            );
            if !issued {
                // Pool exhausted: try again one backoff later without
                // consuming an attempt.
                let serial = self.next_retry;
                self.next_retry += 1;
                self.retries.insert(
                    (now + self.cfg.fetch_retry_backoff, serial),
                    RetryEntry {
                        attempt: entry.attempt,
                        ..entry
                    },
                );
            }
        }
    }

    /// Resubmit staged-but-unadmitted NVMe commands after SQ
    /// backpressure (QueueFull, real or injected).
    fn resync_staged(&mut self, now: Nanos) {
        let mut still_staged = false;
        for core in 0..self.cfg.cores {
            for disk in 0..self.catalog.n_disks() {
                let q = &mut self.core_disks[core].queues[disk];
                if q.staged_count() == 0 {
                    continue;
                }
                let cycles = q
                    .nvme_sqsync(&mut self.kernel, now, &self.cfg.costs)
                    .expect("sqsync");
                if let Some(p) = &self.profiler {
                    p.borrow_mut().set_context(core, ProfStage::Fetch);
                }
                self.cores.run_on(core, now, cycles);
                if q.staged_count() > 0 {
                    still_staged = true;
                }
            }
        }
        if still_staged {
            let at = now + RESYNC_DELAY;
            self.resync_at = Some(self.resync_at.map_or(at, |t| t.min(at)));
        }
    }

    /// Periodic overload sweep: update the hysteretic latch, walk the
    /// degradation ladder, and enforce the slow-client deadlines —
    /// header-read timeout, idle keepalive reaping, and the
    /// minimum-drain-rate check for connections pinning DMA buffers.
    fn overload_sweep(&mut self, now: Nanos) {
        let acfg = self.cfg.admission;
        for core in 0..self.cfg.cores {
            let snap = self.resource_snapshot(core);
            self.ctl[core].overload.observe(&acfg, snap);
            let level = self.ctl[core].overload.on_sweep(&acfg);
            // Under pressure idle conns are reaped much sooner: a
            // few sweeps of silence instead of the full keepalive
            // allowance (kept above a WAN RTT so a healthy client
            // between requests isn't collateral damage).
            let idle_cut = if level >= LadderLevel::ReapIdle {
                acfg.idle_timeout
                    .min(Nanos::from_nanos(acfg.sweep_interval.as_nanos() * 4))
            } else {
                acfg.idle_timeout
            };
            let min_drain_per_window = acfg.min_drain_bytes_per_sec as u128
                * acfg.drain_window.as_nanos() as u128
                / 1_000_000_000;
            let slot_ids: Vec<usize> = (0..self.slots.len())
                .filter(|&i| self.slots[i].core == core && !self.slots[i].conn.aborted)
                .filter(|&i| self.conns.contains_key(&self.slots[i].flow))
                .collect();
            let mut slowest: Option<(u64, usize)> = None;
            for slot_idx in slot_ids {
                let conn = &mut self.slots[slot_idx].conn;
                // Slowloris defense: handshake done, no complete
                // request head within the deadline.
                if !conn.got_request && now - conn.established_at > acfg.header_timeout {
                    self.abort_conn(now, slot_idx);
                    self.reg.inc(self.ids.reaped_idle[core]);
                    continue;
                }
                // Idle keepalive reaping.
                if conn.got_request && conn.is_idle() && now - conn.last_progress > idle_cut {
                    self.abort_conn(now, slot_idx);
                    self.reg.inc(self.ids.reaped_idle[core]);
                    continue;
                }
                // Minimum-drain-rate check: a reader that holds DMA
                // buffers must ack at least `min_drain_bytes_per_sec`
                // over the window, or it loses the buffers.
                let holding = conn.holds_buffers();
                if !holding {
                    conn.drain_mark = conn.acked_stream_off;
                    conn.drain_mark_at = now;
                } else if min_drain_per_window > 0 && now - conn.drain_mark_at >= acfg.drain_window
                {
                    let drained = u128::from(conn.acked_stream_off - conn.drain_mark);
                    if drained < min_drain_per_window {
                        self.abort_conn(now, slot_idx);
                        self.reg.inc(self.ids.aborted_slow[core]);
                        continue;
                    }
                    conn.drain_mark = conn.acked_stream_off;
                    conn.drain_mark_at = now;
                }
                // Abort-slowest candidate ranking: least ack progress
                // since the previous sweep among buffer holders.
                let progressed = conn.acked_stream_off - conn.sweep_acked;
                conn.sweep_acked = conn.acked_stream_off;
                if holding && slowest.is_none_or(|(p, _)| progressed < p) {
                    slowest = Some((progressed, slot_idx));
                }
            }
            if level == LadderLevel::AbortSlowest {
                if let Some((_, victim)) = slowest {
                    self.abort_conn(now, victim);
                    self.reg.inc(self.ids.aborted_slow[core]);
                }
            }
        }
    }

    /// Re-pump connections parked for a DMA buffer. Called after TX
    /// reclaim / disk completions have returned buffers to the pools.
    fn wake_buf_waiters(&mut self, now: Nanos) {
        for core in 0..self.cfg.cores {
            if self.buf_waiters[core].is_empty() {
                continue;
            }
            let waiters: Vec<usize> = std::mem::take(&mut self.buf_waiters[core])
                .into_iter()
                .collect();
            for slot_idx in waiters {
                if self.slots[slot_idx].conn.aborted {
                    continue;
                }
                // pump() re-parks the slot if the pool is still dry.
                self.pump(now, slot_idx);
                self.drain_tx(now, slot_idx);
                self.sync_timer(slot_idx);
            }
        }
    }

    /// Graceful per-connection degradation: tear one connection down
    /// while keeping the server's buffer economy intact. Every DMA
    /// buffer the connection holds goes back to its LIFO pool — the
    /// parked records here, in-flight fetches when they complete, and
    /// frames already on the NIC TX path via normal completion
    /// collection.
    fn abort_conn(&mut self, now: Nanos, slot_idx: usize) {
        let slot = &mut self.slots[slot_idx];
        if slot.conn.aborted {
            return;
        }
        slot.conn.aborted = true;
        let flow = slot.flow;
        let core = slot.core;
        // Tell the peer: one RST (best-effort — a full TX ring just
        // drops it and the client's RTO discovers the teardown).
        let rst = slot.conn.tcb.send_rst();
        if self.nic.tx_rings[core].space() > 0 {
            self.nic.tx_rings[core].push(rst.into_tx(0));
        }
        let slot = &mut self.slots[slot_idx];
        let ready = std::mem::take(&mut slot.conn.ready_tx);
        slot.conn.reserved = 0;
        slot.conn.layouts.clear();
        slot.conn.pending_requests.clear();
        for item in ready.into_values() {
            if item.token != 0 {
                self.tracer.finish_tx(item.token, now);
                let (c, d, b) = untx_token(item.token);
                self.core_disks[c].queues[d].pool().free(b);
            }
        }
        if let Some(d) = self.timer_of[slot_idx] {
            self.timers.remove(&(d, slot_idx));
            self.timer_of[slot_idx] = None;
        }
        self.buf_waiters[core].remove(&slot_idx);
        self.conns.remove(&flow);
        self.note_conn_closed(core);
        self.reg.inc(self.ids.conns_aborted);
    }

    /// §3 step 5: NIC TX completions recycle buffers (LIFO).
    fn reclaim_tx(&mut self, now: Nanos) {
        for core in 0..self.cfg.cores {
            for token in self.nic.tx_rings[core].txsync_collect() {
                if token == 0 {
                    continue;
                }
                self.tracer.finish_tx(token, now);
                let (c, disk, buf) = untx_token(token);
                self.core_disks[c].queues[disk].pool().free(buf);
            }
        }
    }

    fn sync_timer(&mut self, slot_idx: usize) {
        let new = self.slots[slot_idx].conn.tcb.poll_at();
        let old = self.timer_of[slot_idx];
        if old == new {
            return;
        }
        if let Some(d) = old {
            self.timers.remove(&(d, slot_idx));
        }
        if let Some(d) = new {
            self.timers.insert((d, slot_idx));
        }
        self.timer_of[slot_idx] = new;
    }

    /// Diagnostics: total diskmap buffers currently free across pools.
    #[must_use]
    pub fn free_buffers(&self) -> u32 {
        self.core_disks
            .iter()
            .flat_map(|cd| cd.queues.iter())
            .map(|q| q.pool_ref().available())
            .sum()
    }

    /// Total diskmap buffer-pool capacity across pools (the
    /// denominator for occupancy readouts).
    #[must_use]
    pub fn pool_capacity(&self) -> u32 {
        self.core_disks
            .iter()
            .flat_map(|cd| cd.queues.iter())
            .map(|q| q.pool_ref().capacity())
            .sum()
    }

    /// Buffer-pool audit: DMA buffers not free and not accounted for
    /// by any legitimate holder (in-flight fetch, parked record, NIC
    /// TX pipeline, or a scheduled retry — which holds no buffer).
    /// Nonzero means a leak; the fault tests assert 0 after quiesce.
    #[must_use]
    pub fn leaked_buffers(&self) -> i64 {
        let capacity: i64 = self
            .core_disks
            .iter()
            .flat_map(|cd| cd.queues.iter())
            .map(|q| i64::from(q.pool_ref().capacity()))
            .sum();
        let free = i64::from(self.free_buffers());
        let inflight = self.fetches.len() as i64;
        let parked: i64 = self
            .slots
            .iter()
            .map(|s| s.conn.ready_tx.values().filter(|r| r.token != 0).count() as i64)
            .sum();
        let in_nic: i64 = self
            .nic
            .tx_rings
            .iter()
            .map(|r| r.unreclaimed_tokens() as i64)
            .sum();
        capacity - free - inflight - parked - in_nic
    }

    /// Arm the seeded fault injectors (device-level read errors and
    /// latency spikes per disk, SQ admission rejects in the kernel).
    /// Link and client faults live in the workload harness, not here.
    pub fn inject_faults(&mut self, f: &dcn_faults::FaultConfig, seed: u64) {
        for d in 0..self.catalog.n_disks() {
            self.kernel
                .disk(dcn_diskmap::DiskId(d))
                .set_faults(f.nvme, seed ^ ((d as u64 + 1) << 32));
        }
        self.kernel.set_sq_faults(f.nvme.sq_reject_p, seed);
    }

    /// Allocate an RX-slot-sized region (used by harnesses that build
    /// their own delivery paths).
    pub fn phys_mut(&mut self) -> &mut PhysAlloc {
        &mut self.phys
    }

    /// Which component wants service next (wake-storm debugging).
    #[must_use]
    pub fn poll_breakdown(&self) -> String {
        format!(
            "kernel={:?} timer={:?} nic={:?}",
            self.kernel.poll_at(),
            self.timers.iter().next().map(|(d, _)| *d),
            self.nic.poll_at()
        ) + &format!(" [{}]", self.nic.ring_state())
    }

    /// One-line state dump for stall debugging.
    #[must_use]
    pub fn debug_stats_string(&self) -> String {
        let mut per_conn = String::new();
        for (i, s) in self.slots.iter().enumerate().take(4) {
            let c = &s.conn;
            per_conn.push_str(&format!(
                " [conn{i}: state={:?} layouts={} next_rec={} ready={} reserved={} fetches={} retx_in={} usable={} inflight={} cwnd={} retx_bytes={}]",
                c.tcb.state,
                c.layouts.len(),
                c.next_record,
                c.ready_tx.len(),
                c.reserved,
                c.fetches_inflight,
                c.retx_inflight,
                c.tcb.usable_window(),
                c.tcb.inflight(),
                c.tcb.cc.cwnd(),
                c.tcb.bytes_retransmitted,
            ));
        }
        format!(
            "metrics={:?} inflight_fetch_tokens={} free_bufs={}{per_conn}",
            self.metrics(),
            self.fetches.len(),
            self.free_buffers(),
        )
    }
}

/// The shared control-loop skeleton: admission, shedding, connection
/// accounting and the I/O tuner all route through `dcn-srvcore` so
/// Atlas and the kstack cannot drift apart on policy semantics.
impl ControlPlane for AtlasServer {
    fn admission_cfg(&self) -> AdmissionConfig {
        self.cfg.admission
    }

    fn n_cores(&self) -> usize {
        self.cfg.cores
    }

    fn resource_snapshot(&self, core: usize) -> ResourceSnapshot {
        AtlasServer::resource_snapshot(self, core)
    }

    fn core_control(&mut self, core: usize) -> &mut CoreControl {
        &mut self.ctl[core]
    }

    fn core_control_ref(&self, core: usize) -> &CoreControl {
        &self.ctl[core]
    }
}

/// How long to wait before resubmitting staged NVMe commands after SQ
/// backpressure. Short relative to a stripe service time: a real
/// driver would retry on the next doorbell opportunity.
const RESYNC_DELAY: Nanos = Nanos::from_micros(5);

fn tx_token(core: usize, disk: usize, buf: BufId) -> u64 {
    1 | (core as u64) << 1 | (disk as u64) << 9 | u64::from(buf.0) << 17
}

fn untx_token(token: u64) -> (usize, usize, BufId) {
    (
        ((token >> 1) & 0xFF) as usize,
        ((token >> 9) & 0xFF) as usize,
        BufId((token >> 17) as u32),
    )
}

/// A parsed frame's TCP payload, borrowed from the frame. Parsing
/// allocates nothing — in particular, a virtual (length-only) payload
/// is no longer materialized as a `Vec` of zeros unless a caller
/// explicitly asks for one. Servers copy into a reusable scratch via
/// [`FramePayload::copy_into`]; flow-routing callers that only look
/// at headers never touch the payload at all.
#[derive(Debug)]
pub enum FramePayload<'a> {
    /// Payload bytes present in the frame.
    Slice(&'a [u8]),
    /// Virtual payload: `n` bytes of zeros, by convention.
    Virtual(u64),
}

impl FramePayload<'_> {
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            FramePayload::Slice(b) => b.len(),
            FramePayload::Virtual(n) => *n as usize,
        }
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the payload into a reusable scratch buffer (cleared
    /// first; the buffer's capacity persists across calls).
    pub fn copy_into(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            FramePayload::Slice(b) => out.extend_from_slice(b),
            FramePayload::Virtual(n) => out.resize(*n as usize, 0),
        }
    }

    /// Materialize an owned copy (client-side convenience; the server
    /// hot path uses [`FramePayload::copy_into`] instead).
    #[must_use]
    #[allow(clippy::wrong_self_convention)]
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len());
        self.copy_into(&mut v);
        v
    }
}

/// Parse the flow/TCP header out of a wire frame (what RSS + the
/// stack's demux do).
#[must_use]
pub fn parse_frame(frame: &WireFrame) -> Option<(FlowId, TcpRepr, FramePayload<'_>)> {
    let h = &frame.headers;
    if h.len() < ETH_HEADER_LEN {
        return None;
    }
    let extra = frame.payload.len() as usize;
    let (ip, ip_off) = Ipv4Repr::parse_with_extra(&h[ETH_HEADER_LEN..], extra).ok()?;
    let (tcp, tcp_off) = TcpRepr::parse(&h[ETH_HEADER_LEN + ip_off..], None).ok()?;
    let flow = FlowId {
        src_ip: ip.src,
        dst_ip: ip.dst,
        src_port: tcp.src_port,
        dst_port: tcp.dst_port,
    };
    // Payload may live in headers (inline frames) or in the payload
    // field (data frames).
    let inline = &h[ETH_HEADER_LEN + ip_off + tcp_off..];
    let payload = if !inline.is_empty() {
        FramePayload::Slice(inline)
    } else {
        match &frame.payload {
            dcn_netdev::PayloadBytes::Real(b) => FramePayload::Slice(b),
            dcn_netdev::PayloadBytes::Virtual(n) => FramePayload::Virtual(*n),
        }
    };
    Some((flow, tcp, payload))
}
