//! IPv4 header handling (no options, no fragmentation — video
//! streaming traffic is plain unfragmented TCP/IPv4).

use crate::{internet_checksum, ParseError};

pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    #[must_use]
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }
    #[must_use]
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// IP protocol numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IpProtocol {
    Tcp,
    Udp,
    Unknown(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Unknown(other),
        }
    }
}

impl IpProtocol {
    #[must_use]
    pub fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Unknown(v) => v,
        }
    }
}

/// Parsed IPv4 header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Repr {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: IpProtocol,
    /// Payload (L4) length in bytes.
    pub payload_len: u16,
    pub ttl: u8,
}

impl Ipv4Repr {
    /// Parse and checksum-verify; returns the repr and payload offset
    /// within `data`.
    pub fn parse(data: &[u8]) -> Result<(Ipv4Repr, usize), ParseError> {
        Self::parse_with_extra(data, 0)
    }

    /// Like [`Ipv4Repr::parse`], but `extra` payload bytes live in a
    /// separate buffer (scatter-gather frames carry L2–L4 headers and
    /// payload in different segments, as NIC descriptors do).
    pub fn parse_with_extra(data: &[u8], extra: usize) -> Result<(Ipv4Repr, usize), ParseError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        if data[0] >> 4 != 4 {
            return Err(ParseError::BadVersion);
        }
        let ihl = usize::from(data[0] & 0x0F) * 4;
        if !(IPV4_HEADER_LEN..=60).contains(&ihl) || data.len() < ihl {
            return Err(ParseError::BadHeaderLen);
        }
        if internet_checksum(0, &data[..ihl]) != 0 {
            return Err(ParseError::BadChecksum);
        }
        let total = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total < ihl || data.len() + extra < total {
            return Err(ParseError::Truncated);
        }
        Ok((
            Ipv4Repr {
                src: Ipv4Addr(u32::from_be_bytes([data[12], data[13], data[14], data[15]])),
                dst: Ipv4Addr(u32::from_be_bytes([data[16], data[17], data[18], data[19]])),
                protocol: data[9].into(),
                payload_len: (total - ihl) as u16,
                ttl: data[8],
            },
            ihl,
        ))
    }

    /// Emit a 20-byte header (checksummed) into `buf`.
    pub fn emit(&self, buf: &mut [u8]) {
        let total = IPV4_HEADER_LEN as u16 + self.payload_len;
        buf[0] = 0x45; // v4, ihl=5
        buf[1] = 0; // DSCP/ECN
        buf[2..4].copy_from_slice(&total.to_be_bytes());
        buf[4..6].copy_from_slice(&0u16.to_be_bytes()); // id
        buf[6..8].copy_from_slice(&0x4000u16.to_be_bytes()); // DF
        buf[8] = self.ttl;
        buf[9] = self.protocol.to_u8();
        buf[10..12].copy_from_slice(&[0, 0]);
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(0, &buf[..IPV4_HEADER_LEN]);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Partial pseudo-header sum for the TCP checksum.
    #[must_use]
    pub fn pseudo_header_sum(&self) -> u32 {
        let s = self.src.octets();
        let d = self.dst.octets();
        u32::from(u16::from_be_bytes([s[0], s[1]]))
            + u32::from(u16::from_be_bytes([s[2], s[3]]))
            + u32::from(u16::from_be_bytes([d[0], d[1]]))
            + u32::from(u16::from_be_bytes([d[2], d[3]]))
            + u32::from(self.protocol.to_u8())
            + u32::from(self.payload_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 1, 0, 1),
            dst: Ipv4Addr::new(10, 2, 0, 99),
            protocol: IpProtocol::Tcp,
            payload_len: 100,
            ttl: 64,
        }
    }

    #[test]
    fn round_trip_with_checksum() {
        let r = sample();
        let mut buf = vec![0u8; IPV4_HEADER_LEN + 100];
        r.emit(&mut buf);
        let (parsed, off) = Ipv4Repr::parse(&buf).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(off, IPV4_HEADER_LEN);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let r = sample();
        let mut buf = vec![0u8; IPV4_HEADER_LEN + 100];
        r.emit(&mut buf);
        buf[15] ^= 0xFF;
        assert_eq!(Ipv4Repr::parse(&buf), Err(ParseError::BadChecksum));
    }

    #[test]
    fn bad_version_rejected() {
        let r = sample();
        let mut buf = vec![0u8; IPV4_HEADER_LEN + 100];
        r.emit(&mut buf);
        buf[0] = 0x65;
        assert_eq!(Ipv4Repr::parse(&buf), Err(ParseError::BadVersion));
    }

    #[test]
    fn truncated_payload_rejected() {
        let r = sample();
        let mut buf = vec![0u8; IPV4_HEADER_LEN + 100];
        r.emit(&mut buf);
        buf.truncate(IPV4_HEADER_LEN + 50);
        assert_eq!(Ipv4Repr::parse(&buf), Err(ParseError::Truncated));
    }

    #[test]
    fn display_dotted_quad() {
        assert_eq!(Ipv4Addr::new(192, 168, 1, 7).to_string(), "192.168.1.7");
    }
}
