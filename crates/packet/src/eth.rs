//! Ethernet II framing.

use crate::ParseError;

pub const ETH_HEADER_LEN: usize = 14;

/// A MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Locally-administered address derived from a small host id —
    /// handy for generating fleets of simulated clients.
    #[must_use]
    pub fn from_host_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

/// EtherType values the stack understands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EtherType {
    Ipv4,
    Arp,
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Unknown(other),
        }
    }
}

impl EtherType {
    #[must_use]
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Unknown(v) => v,
        }
    }
}

/// Parsed Ethernet header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EthernetRepr {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parse the header from the front of `frame`; returns the repr
    /// and the payload offset.
    pub fn parse(frame: &[u8]) -> Result<(EthernetRepr, usize), ParseError> {
        if frame.len() < ETH_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&frame[0..6]);
        src.copy_from_slice(&frame[6..12]);
        let et = u16::from_be_bytes([frame[12], frame[13]]);
        Ok((
            EthernetRepr {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: et.into(),
            },
            ETH_HEADER_LEN,
        ))
    }

    /// Emit the header into the front of `frame`.
    pub fn emit(&self, frame: &mut [u8]) {
        frame[0..6].copy_from_slice(&self.dst.0);
        frame[6..12].copy_from_slice(&self.src.0);
        frame[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let repr = EthernetRepr {
            dst: MacAddr::from_host_id(7),
            src: MacAddr::from_host_id(9),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; ETH_HEADER_LEN];
        repr.emit(&mut buf);
        let (parsed, off) = EthernetRepr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(off, ETH_HEADER_LEN);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(EthernetRepr::parse(&[0u8; 13]), Err(ParseError::Truncated));
    }

    #[test]
    fn host_id_macs_are_local_and_unique() {
        let a = MacAddr::from_host_id(1);
        let b = MacAddr::from_host_id(2);
        assert_ne!(a, b);
        assert_eq!(a.0[0] & 0x02, 0x02, "locally administered bit");
        assert_eq!(a.0[0] & 0x01, 0x00, "unicast");
    }

    #[test]
    fn unknown_ethertype_preserved() {
        let et: EtherType = 0x88CCu16.into();
        assert_eq!(et.to_u16(), 0x88CC);
    }
}
