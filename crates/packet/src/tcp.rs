//! TCP header handling with wrapping sequence arithmetic.

use crate::{internet_checksum, ParseError};

/// Minimum TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// A TCP sequence number with RFC 793 modular comparison semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct SeqNumber(pub u32);

impl SeqNumber {
    #[must_use]
    pub fn wrapping_add(self, n: u32) -> SeqNumber {
        SeqNumber(self.0.wrapping_add(n))
    }
    /// Signed distance `self - other` (correct across wraparound for
    /// spans < 2^31).
    #[must_use]
    pub fn dist(self, other: SeqNumber) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }
    #[must_use]
    pub fn lt(self, other: SeqNumber) -> bool {
        self.dist(other) < 0
    }
    #[must_use]
    pub fn le(self, other: SeqNumber) -> bool {
        self.dist(other) <= 0
    }
    #[must_use]
    pub fn gt(self, other: SeqNumber) -> bool {
        self.dist(other) > 0
    }
    #[must_use]
    pub fn ge(self, other: SeqNumber) -> bool {
        self.dist(other) >= 0
    }
    #[must_use]
    pub fn max_seq(self, other: SeqNumber) -> SeqNumber {
        if self.ge(other) {
            self
        } else {
            other
        }
    }
}

bitflags_lite! {
    /// TCP header flags.
    pub struct TcpFlags: u8 {
        const FIN = 0x01;
        const SYN = 0x02;
        const RST = 0x04;
        const PSH = 0x08;
        const ACK = 0x10;
    }
}

/// Tiny local bitflags implementation (keeps dependencies to the
/// approved list).
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $(const $flag:ident = $val:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(pub $ty);
        impl $name {
            $(pub const $flag: $name = $name($val);)*
            pub const EMPTY: $name = $name(0);
            #[must_use]
            pub fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }
            #[must_use]
            pub fn intersects(self, other: $name) -> bool {
                self.0 & other.0 != 0
            }
        }
        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }
        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                let mut names: Vec<&str> = Vec::new();
                $(if self.contains($name::$flag) { names.push(stringify!($flag)); })*
                write!(f, "{}", if names.is_empty() { "·".to_string() } else { names.join("|") })
            }
        }
    };
}
use bitflags_lite;

/// Parsed TCP header (the options the stack uses, MSS, are surfaced;
/// others are skipped).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TcpRepr {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: SeqNumber,
    pub ack: SeqNumber,
    pub flags: TcpFlags,
    pub window: u16,
    /// MSS option (SYN segments only).
    pub mss: Option<u16>,
    /// Window-scale option (SYN segments only), RFC 7323.
    pub wscale: Option<u8>,
}

impl TcpRepr {
    /// Header length this repr will emit (options are padded to a
    /// 4-byte multiple).
    #[must_use]
    pub fn header_len(&self) -> usize {
        let opt =
            if self.mss.is_some() { 4 } else { 0 } + if self.wscale.is_some() { 3 } else { 0 };
        TCP_HEADER_LEN + (opt as usize).div_ceil(4) * 4
    }

    /// Parse a TCP header from `data`, verifying the checksum against
    /// the provided pseudo-header sum (pass `None` to skip — e.g. when
    /// NIC RX checksum offload already validated it).
    pub fn parse(data: &[u8], pseudo_sum: Option<u32>) -> Result<(TcpRepr, usize), ParseError> {
        if data.len() < TCP_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let data_off = usize::from(data[12] >> 4) * 4;
        if !(TCP_HEADER_LEN..=60).contains(&data_off) || data.len() < data_off {
            return Err(ParseError::BadHeaderLen);
        }
        if let Some(ps) = pseudo_sum {
            if internet_checksum(ps, data) != 0 {
                return Err(ParseError::BadChecksum);
            }
        }
        // Scan options for MSS and window scale.
        let mut mss = None;
        let mut wscale = None;
        let mut i = TCP_HEADER_LEN;
        while i < data_off {
            match data[i] {
                0 => break,  // EOL
                1 => i += 1, // NOP
                2 if i + 4 <= data_off => {
                    mss = Some(u16::from_be_bytes([data[i + 2], data[i + 3]]));
                    i += 4;
                }
                3 if i + 3 <= data_off => {
                    wscale = Some(data[i + 2]);
                    i += 3;
                }
                _ => {
                    // Any other option: skip by its length byte.
                    if i + 1 >= data_off {
                        break;
                    }
                    let l = usize::from(data[i + 1]);
                    if l < 2 {
                        return Err(ParseError::BadHeaderLen);
                    }
                    i += l;
                }
            }
        }
        Ok((
            TcpRepr {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: SeqNumber(u32::from_be_bytes([data[4], data[5], data[6], data[7]])),
                ack: SeqNumber(u32::from_be_bytes([data[8], data[9], data[10], data[11]])),
                flags: TcpFlags(data[13] & 0x1F),
                window: u16::from_be_bytes([data[14], data[15]]),
                mss,
                wscale,
            },
            data_off,
        ))
    }

    /// Emit header + options into `buf` and compute the checksum over
    /// header and `payload` with the given pseudo-header sum. `buf`
    /// must be at least `header_len()` bytes.
    pub fn emit(&self, buf: &mut [u8], pseudo_sum: u32, payload: &[u8]) {
        let hl = self.header_len();
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.0.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.0.to_be_bytes());
        buf[12] = ((hl / 4) as u8) << 4;
        buf[13] = self.flags.0;
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].copy_from_slice(&[0, 0]); // checksum placeholder
        buf[18..20].copy_from_slice(&[0, 0]); // urgent
        let mut o = TCP_HEADER_LEN;
        if let Some(mss) = self.mss {
            buf[o] = 2;
            buf[o + 1] = 4;
            buf[o + 2..o + 4].copy_from_slice(&mss.to_be_bytes());
            o += 4;
        }
        if let Some(ws) = self.wscale {
            buf[o] = 3;
            buf[o + 1] = 3;
            buf[o + 2] = ws;
            o += 3;
        }
        // Pad with NOPs to the emitted header length.
        while o < hl {
            buf[o] = 1;
            o += 1;
        }
        // Checksum over header then payload (chained).
        let head_sum = {
            let mut s = pseudo_sum;
            let mut chunks = buf[..hl].chunks_exact(2);
            for c in &mut chunks {
                s += u32::from(u16::from_be_bytes([c[0], c[1]]));
            }
            s
        };
        let csum = internet_checksum(head_sum, payload);
        buf[16..18].copy_from_slice(&csum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(payload_len: u16, hl: u16) -> u32 {
        // A fake but consistent pseudo-header sum.
        0x0A01_u32 + 0x0001 + 0x0A02 + 0x0063 + 6 + u32::from(payload_len + hl)
    }

    #[test]
    fn round_trip_with_payload_checksum() {
        let r = TcpRepr {
            src_port: 80,
            dst_port: 51234,
            seq: SeqNumber(0xDEAD_BEEF),
            ack: SeqNumber(0x0102_0304),
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 0xFFFF,
            mss: None,
            wscale: None,
        };
        let payload = b"hello video world";
        let mut buf = vec![0u8; r.header_len()];
        let ps = pseudo(payload.len() as u16, r.header_len() as u16);
        r.emit(&mut buf, ps, payload);
        let mut whole = buf.clone();
        whole.extend_from_slice(payload);
        let (parsed, off) = TcpRepr::parse(&whole, Some(ps)).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(off, TCP_HEADER_LEN);
    }

    #[test]
    fn syn_mss_option_round_trip() {
        let r = TcpRepr {
            src_port: 51234,
            dst_port: 80,
            seq: SeqNumber(1),
            ack: SeqNumber(0),
            flags: TcpFlags::SYN,
            window: 65535,
            mss: Some(1460),
            wscale: Some(7),
        };
        let mut buf = vec![0u8; r.header_len()];
        let ps = pseudo(0, r.header_len() as u16);
        r.emit(&mut buf, ps, &[]);
        let (parsed, off) = TcpRepr::parse(&buf, Some(ps)).unwrap();
        assert_eq!(parsed.mss, Some(1460));
        assert_eq!(parsed.wscale, Some(7));
        assert_eq!(off, 28);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let r = TcpRepr {
            src_port: 80,
            dst_port: 51234,
            seq: SeqNumber(77),
            ack: SeqNumber(88),
            flags: TcpFlags::ACK,
            window: 1000,
            mss: None,
            wscale: None,
        };
        let payload = b"data data data";
        let mut buf = vec![0u8; r.header_len()];
        let ps = pseudo(payload.len() as u16, 20);
        r.emit(&mut buf, ps, payload);
        let mut whole = buf;
        whole.extend_from_slice(payload);
        whole[25] ^= 0x01;
        assert_eq!(
            TcpRepr::parse(&whole, Some(ps)),
            Err(ParseError::BadChecksum)
        );
    }

    #[test]
    fn seq_arithmetic_wraps() {
        let a = SeqNumber(u32::MAX - 10);
        let b = a.wrapping_add(20);
        assert_eq!(b.0, 9);
        assert!(a.lt(b));
        assert!(b.gt(a));
        assert_eq!(b.dist(a), 20);
        assert_eq!(a.dist(b), -20);
        assert_eq!(a.max_seq(b), b);
    }

    #[test]
    fn flags_bit_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.intersects(TcpFlags::SYN | TcpFlags::FIN));
        assert_eq!(format!("{f:?}"), "SYN|ACK");
    }

    #[test]
    fn parse_skips_unknown_options() {
        // Build a header with NOP, NOP, MSS manually.
        let r = TcpRepr {
            src_port: 1,
            dst_port: 2,
            seq: SeqNumber(0),
            ack: SeqNumber(0),
            flags: TcpFlags::SYN,
            window: 100,
            mss: None,
            wscale: None,
        };
        let mut buf = vec![0u8; 28];
        r.emit(&mut buf, 0, &[]);
        buf[12] = 7 << 4; // 28-byte header
        buf[20] = 1; // NOP
        buf[21] = 1; // NOP
        buf[22] = 2; // MSS
        buf[23] = 4;
        buf[24..26].copy_from_slice(&1200u16.to_be_bytes());
        buf[26] = 0; // EOL
        let (parsed, off) = TcpRepr::parse(&buf, None).unwrap();
        assert_eq!(parsed.mss, Some(1200));
        assert_eq!(off, 28);
    }
}
