//! # dcn-packet — wire formats for the userspace network stack
//!
//! Ethernet II, IPv4 and TCP header parsing/building with real
//! checksums, plus flow hashing (the RSS hash used to shard
//! connections across stack instances, §2.1.3 and §4).
//!
//! Headers are built into and parsed from plain byte slices — the
//! same bytes that live in simulated DMA buffers — so the packet path
//! in the simulator carries genuine, checksum-valid frames end to
//! end. smoltcp-style representation structs (`EthernetRepr`,
//! `Ipv4Repr`, `TcpRepr`) keep parse → modify → emit round trips
//! explicit and testable.

pub mod eth;
pub mod ipv4;
pub mod tcp;

pub use eth::{EtherType, EthernetRepr, MacAddr, ETH_HEADER_LEN};
pub use ipv4::{IpProtocol, Ipv4Addr, Ipv4Repr, IPV4_HEADER_LEN};
pub use tcp::{SeqNumber, TcpFlags, TcpRepr, TCP_HEADER_LEN};

/// Errors from parsing malformed packets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParseError {
    Truncated,
    BadVersion,
    BadHeaderLen,
    BadChecksum,
    UnsupportedProtocol,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParseError::Truncated => "truncated packet",
            ParseError::BadVersion => "bad IP version",
            ParseError::BadHeaderLen => "bad header length",
            ParseError::BadChecksum => "bad checksum",
            ParseError::UnsupportedProtocol => "unsupported protocol",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Internet checksum (RFC 1071) over `data`, starting from `initial`
/// (used to chain the TCP pseudo-header).
#[must_use]
pub fn internet_checksum(initial: u32, data: &[u8]) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// A bidirectional TCP/IPv4 flow identifier (the 4-tuple).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowId {
    pub src_ip: Ipv4Addr,
    pub dst_ip: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
}

impl FlowId {
    /// The reverse direction of the same flow.
    #[must_use]
    pub fn reversed(self) -> FlowId {
        FlowId {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// Symmetric RSS-style hash: both directions of a flow map to the
    /// same bucket, which is what NIC RSS plus the stack's core
    /// sharding rely on.
    #[must_use]
    pub fn rss_hash(&self) -> u32 {
        let a = self.src_ip.0 ^ self.dst_ip.0;
        let p = u32::from(self.src_port ^ self.dst_port);
        let mut h = a ^ (p | p << 16);
        // fmix32 finalizer.
        h ^= h >> 16;
        h = h.wrapping_mul(0x85EB_CA6B);
        h ^= h >> 13;
        h = h.wrapping_mul(0xC2B2_AE35);
        h ^= h >> 16;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_complement_property() {
        // Appending a correct checksum makes the total sum verify.
        let data = [0x45u8, 0x00, 0x00, 0x34, 0x12, 0x34, 0x40, 0x00, 0x40, 0x06];
        let s = internet_checksum(0, &data);
        let mut whole = data.to_vec();
        whole.extend_from_slice(&s.to_be_bytes());
        assert_eq!(internet_checksum(0, &whole), 0);
    }

    #[test]
    fn checksum_odd_length_pads_with_zero() {
        assert_eq!(
            internet_checksum(0, &[0xFF, 0x00, 0xAB]),
            internet_checksum(0, &[0xFF, 0x00, 0xAB, 0x00])
        );
    }

    #[test]
    fn flow_hash_is_symmetric() {
        let f = FlowId {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 51000,
            dst_port: 80,
        };
        assert_eq!(f.rss_hash(), f.reversed().rss_hash());
        assert_eq!(f.reversed().reversed(), f);
    }

    #[test]
    fn flow_hash_distinguishes_flows() {
        let mk = |p: u16| FlowId {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: p,
            dst_port: 80,
        };
        let buckets: std::collections::HashSet<u32> =
            (1000..1256).map(|p| mk(p).rss_hash() % 8).collect();
        assert!(buckets.len() >= 7, "ports should spread across cores");
    }
}
