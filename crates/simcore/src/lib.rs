//! # dcn-simcore — deterministic discrete-event simulation core
//!
//! Foundation for the Disk|Crypt|Net reproduction: virtual time, a
//! deterministic event queue, seeded randomness, and the statistics
//! machinery (online mean/CI, histograms, time-bucketed counters) used
//! by every experiment in the paper's evaluation.
//!
//! Design follows the smoltcp idiom: components are passive state
//! machines that report the next instant they need service via
//! `poll_at()`-style methods; an explicit event loop advances them.
//! Nothing here depends on wall-clock time, so a given seed produces a
//! bit-identical run.

pub mod ids;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use ids::{Arena, Id};
pub use queue::{EventQueue, Scheduled};
pub use rng::{prf_bytes, RankPerm, SimRng, Zipf};
pub use stats::{Histogram, MeanCi, SeriesPoint, TimeBuckets};
pub use time::{Bandwidth, Nanos};

/// Earliest of two optional deadlines — the standard combinator for
/// merging `poll_at()` results from multiple components.
#[must_use]
pub fn earliest(a: Option<Nanos>, b: Option<Nanos>) -> Option<Nanos> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) => Some(x),
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_combinator() {
        let a = Some(Nanos::from_micros(5));
        let b = Some(Nanos::from_micros(3));
        assert_eq!(earliest(a, b), b);
        assert_eq!(earliest(a, None), a);
        assert_eq!(earliest(None, None), None);
    }

    #[test]
    fn add_span_distributes_busy_time() {
        let mut tb = TimeBuckets::new(Nanos::from_millis(10));
        // Busy from 5ms to 25ms: half of bucket 0, all of bucket 1,
        // half of bucket 2.
        tb.add_span(Nanos::from_millis(5), Nanos::from_millis(25), 1.0);
        let util = tb.rate_per_sec(Nanos::from_millis(10), Nanos::from_millis(20));
        assert!((util - 1.0).abs() < 1e-9, "util={util}");
        let total = tb.total();
        assert!((total - 0.020).abs() < 1e-9, "total={total}");
    }
}
