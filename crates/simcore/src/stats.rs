//! Statistics used to report experiments the way the paper does:
//! means with 95% confidence intervals (Figs 1/2/11/13 error bars),
//! latency histograms/CDFs (Fig 9), and time-bucketed rate counters
//! (memory-throughput panels).

use crate::time::Nanos;

/// Online mean/variance accumulator (Welford) with a normal-theory
/// 95% confidence half-interval, matching the paper's error bars.
#[derive(Clone, Debug, Default)]
pub struct MeanCi {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanCi {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 95% CI (1.96 σ/√n; adequate for the ≥3-seed
    /// sweeps the harness runs).
    #[must_use]
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev() / (self.n as f64).sqrt()
    }
}

/// One point of a figure series: x (e.g. #connections), mean y and CI.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    pub x: f64,
    pub y: f64,
    pub ci95: f64,
}

/// Fixed-width histogram over a value range, with quantile and CDF
/// extraction (Fig 9's latency CDFs).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// `lo..hi` value range divided into `n` buckets; out-of-range
    /// samples clamp into the edge buckets (and still update min/max).
    #[must_use]
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn add(&mut self, x: f64) {
        let n = self.buckets.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.buckets[idx.min(n - 1)] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile (bucket upper edge containing the qth
    /// sample).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target.max(1) {
                return self.lo
                    + (i as f64 + 1.0) / self.buckets.len() as f64 * (self.hi - self.lo);
            }
        }
        self.hi
    }

    /// CDF as (value, cumulative fraction) pairs — one per non-empty
    /// bucket — for plotting Fig 9.
    #[must_use]
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut acc = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            acc += b;
            let v = self.lo + (i as f64 + 1.0) / self.buckets.len() as f64 * (self.hi - self.lo);
            out.push((v, acc as f64 / self.count as f64));
        }
        out
    }
}

/// Byte/event counters bucketed by virtual time, yielding steady-state
/// rates with warm-up exclusion. The memory/network throughput panels
/// are read out of these.
#[derive(Clone, Debug)]
pub struct TimeBuckets {
    width: Nanos,
    buckets: Vec<f64>,
}

impl TimeBuckets {
    #[must_use]
    pub fn new(width: Nanos) -> Self {
        assert!(width > Nanos::ZERO);
        TimeBuckets {
            width,
            buckets: Vec::new(),
        }
    }

    pub fn add(&mut self, at: Nanos, amount: f64) {
        let idx = (at.as_nanos() / self.width.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += amount;
    }

    /// Mean per-second rate over buckets fully inside
    /// `[warmup, end)`.
    #[must_use]
    pub fn rate_per_sec(&self, warmup: Nanos, end: Nanos) -> f64 {
        let w = self.width.as_nanos();
        let first = warmup.as_nanos().div_ceil(w);
        let last = end.as_nanos() / w; // exclusive
        if last <= first {
            return 0.0;
        }
        let slice_end = (last as usize).min(self.buckets.len());
        let slice_start = (first as usize).min(slice_end);
        let total: f64 = self.buckets[slice_start..slice_end].iter().sum();
        let span_secs = (last - first) as f64 * self.width.as_secs_f64();
        total / span_secs
    }

    #[must_use]
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Add a time span, distributing `amount × overlap-fraction` into
    /// each bucket the span covers. Used for CPU busy-time accounting:
    /// `add_span(start, end, 1.0)` credits busy-seconds per second,
    /// so `rate_per_sec` then reads out utilization directly.
    pub fn add_span(&mut self, start: Nanos, end: Nanos, amount_per_sec: f64) {
        if end <= start {
            return;
        }
        let w = self.width.as_nanos();
        let mut t = start.as_nanos();
        let end = end.as_nanos();
        while t < end {
            let bucket_end = (t / w + 1) * w;
            let seg_end = bucket_end.min(end);
            let frac_secs = (seg_end - t) as f64 / 1e9;
            let idx = (t / w) as usize;
            if idx >= self.buckets.len() {
                self.buckets.resize(idx + 1, 0.0);
            }
            self.buckets[idx] += amount_per_sec * frac_secs;
            t = seg_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_basics() {
        let mut m = MeanCi::new();
        for x in [2.0, 4.0, 6.0] {
            m.add(x);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 4.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!(m.ci95() > 0.0);
    }

    #[test]
    fn mean_ci_constant_series_has_zero_ci() {
        let mut m = MeanCi::new();
        for _ in 0..10 {
            m.add(5.0);
        }
        assert_eq!(m.ci95(), 0.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 1000);
        for i in 0..1000 {
            h.add(i as f64 / 10.0);
        }
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 1.0, "median={med}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 99.0).abs() < 1.5, "p99={p99}");
    }

    #[test]
    fn histogram_percentiles_known_distributions() {
        // Uniform 0..1000: pXX ≈ XX% of the range.
        let mut h = Histogram::new(0.0, 1000.0, 10_000);
        for i in 0..10_000 {
            h.add(i as f64 / 10.0);
        }
        assert!(
            (h.quantile(0.50) - 500.0).abs() < 1.0,
            "p50={}",
            h.quantile(0.50)
        );
        assert!(
            (h.quantile(0.99) - 990.0).abs() < 1.0,
            "p99={}",
            h.quantile(0.99)
        );
        assert!(
            (h.quantile(0.999) - 999.0).abs() < 1.0,
            "p999={}",
            h.quantile(0.999)
        );

        // Bimodal: 99% at 10, 1% at 900 — p50 sits on the low mode,
        // p999 on the high one.
        let mut h = Histogram::new(0.0, 1000.0, 1000);
        for i in 0..1000 {
            h.add(if i < 990 { 10.0 } else { 900.0 });
        }
        assert!((h.quantile(0.50) - 10.0).abs() < 2.0);
        assert!((h.quantile(0.98) - 10.0).abs() < 2.0);
        assert!((h.quantile(0.999) - 900.0).abs() < 2.0);

        // Point mass: every quantile is the single value.
        let mut h = Histogram::new(0.0, 100.0, 100);
        for _ in 0..50 {
            h.add(42.0);
        }
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert!(
                (h.quantile(q) - 43.0).abs() < 1.0,
                "q={q} -> {}",
                h.quantile(q)
            );
        }
    }

    #[test]
    fn histogram_single_sample() {
        // One sample: every quantile lands in that sample's bucket,
        // mean/min/max are the sample itself, and the CDF is a single
        // point at fraction 1.0.
        let mut h = Histogram::new(0.0, 100.0, 100);
        h.add(37.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 37.0);
        assert_eq!(h.min(), 37.0);
        assert_eq!(h.max(), 37.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!(
                (h.quantile(q) - 38.0).abs() < 1e-9,
                "q={q} -> {}",
                h.quantile(q)
            );
        }
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 1);
        assert!((cdf[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_is_safe() {
        let h = Histogram::new(0.0, 100.0, 10);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0.0);
        }
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn histogram_out_of_range_quantile_edges() {
        // Out-of-range samples clamp into the edge buckets, so
        // quantiles stay within [lo, hi] while min/max keep the true
        // extremes.
        let mut h = Histogram::new(0.0, 100.0, 100);
        for _ in 0..500 {
            h.add(-1e9);
        }
        for _ in 0..500 {
            h.add(1e9);
        }
        assert!(h.quantile(0.25) <= 1.0 + 1e-9);
        assert!((h.quantile(0.999) - 100.0).abs() < 1e-9);
        assert_eq!(h.min(), -1e9);
        assert_eq!(h.max(), 1e9);
        // All quantiles bounded by the configured range.
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!((0.0..=100.0).contains(&v), "q={q} -> {v}");
        }
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(-5.0);
        h.add(50.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 50.0);
    }

    #[test]
    fn cdf_monotone_ends_at_one() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        let mut r = crate::rng::SimRng::new(1);
        for _ in 0..1000 {
            h.add(r.next_f64());
        }
        let cdf = h.cdf();
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_bucket_rates_exclude_warmup() {
        let mut tb = TimeBuckets::new(Nanos::from_millis(10));
        // 100 units per 10ms bucket from 0..100ms => 10_000/sec.
        for i in 0..10 {
            tb.add(Nanos::from_millis(i * 10 + 5), 100.0);
        }
        let r = tb.rate_per_sec(Nanos::from_millis(20), Nanos::from_millis(100));
        assert!((r - 10_000.0).abs() < 1e-6, "r={r}");
        // Empty window.
        assert_eq!(
            tb.rate_per_sec(Nanos::from_millis(90), Nanos::from_millis(90)),
            0.0
        );
    }
}
