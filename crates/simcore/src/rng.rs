//! Seeded, deterministic randomness for simulations.
//!
//! Wraps a small-state xoshiro-style generator seeded explicitly; the
//! same seed always yields the same stream. Helpers cover the
//! distributions the models need: uniform ranges, exponential
//! interarrivals, log-normal service jitter, and Zipf content
//! popularity (for buffer-cache hit-ratio experiments).

/// Positional pseudo-random bytes: fills `out` with the bytes of the
/// infinite deterministic stream `PRF(seed)` starting at `offset`.
/// Any byte of any stream can be generated (and therefore verified)
/// independently — this is how the reproduction serves a synthetic
/// multi-terabyte video catalog without storing it: the byte at
/// (file, offset) is `prf_bytes(file_seed, offset, ..)`.
pub fn prf_bytes(seed: u64, offset: u64, out: &mut [u8]) {
    let mut pos = offset;
    let mut written = 0usize;
    while written < out.len() {
        let block = pos / 8;
        let in_block = (pos % 8) as usize;
        // SplitMix64 of (seed, block) — cheap and high quality.
        let mut z = seed ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let bytes = z.to_le_bytes();
        let n = (8 - in_block).min(out.len() - written);
        out[written..written + n].copy_from_slice(&bytes[in_block..in_block + n]);
        written += n;
        pos += n as u64;
    }
}

/// Deterministic PRNG (xoshiro256** core).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed via SplitMix64 expansion so that nearby seeds give
    /// unrelated streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derive an independent child stream (e.g. one per flow) without
    /// correlating with the parent.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Log-normal with the given median and sigma (of the underlying
    /// normal). Used for NVMe firmware service-time jitter.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.std_normal()).exp()
    }

    /// Standard normal via Box–Muller (one value per call; the twin is
    /// discarded to keep the stream position deterministic and simple).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Zipf(α) sampler over `{0, .., n-1}` using the rejection-inversion
/// method — O(1) per sample, suitable for large catalogs.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// `alpha` must be positive and not exactly 1 (use 1.0001 for the
    /// classic web value).
    #[must_use]
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1 && alpha > 0.0 && (alpha - 1.0).abs() > 1e-9);
        let h = |x: f64| ((1.0 - alpha) * x.ln()).exp() / (1.0 - alpha) * x;
        // H(x) = x^(1-alpha)/(1-alpha); written via exp/ln for clarity.
        let hf = |x: f64| x.powf(1.0 - alpha) / (1.0 - alpha);
        let _ = h;
        Zipf {
            n,
            alpha,
            h_x1: hf(1.5) - 1.0f64.powf(-alpha),
            h_n: hf(n as f64 + 0.5),
            s: 2.0 - Self::h_inv_inner(hf(1.5) - 1.0f64.powf(-alpha), alpha),
        }
    }

    fn h_inv_inner(x: f64, alpha: f64) -> f64 {
        ((1.0 - alpha) * x).powf(1.0 / (1.0 - alpha))
    }

    fn h(&self, x: f64) -> f64 {
        x.powf(1.0 - self.alpha) / (1.0 - self.alpha)
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_inner(x, self.alpha)
    }

    /// Draw a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            let u = self.h_x1 + rng.next_f64() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().max(1.0).min(self.n as f64);
            if k - x <= self.s || u >= self.h(k + 0.5) - (-self.alpha * k.ln()).exp() {
                return k as u64 - 1;
            }
        }
    }
}

/// Seeded pseudo-random permutation of `{0, .., n-1}` — a 4-round
/// Feistel network over the smallest even-width bit domain covering
/// `n`, with cycle-walking to stay inside the range. O(1) per lookup
/// and O(1) state, so a million-object catalog can map popularity
/// *rank* to object *id* (and scatter the hot set across the id
/// space) without materializing a shuffle table.
#[derive(Clone, Copy, Debug)]
pub struct RankPerm {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl RankPerm {
    #[must_use]
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n >= 1);
        // Domain 2^(2*half_bits) >= n, smallest such (min 2 bits so
        // the Feistel halves are non-degenerate).
        let bits = (64 - (n - 1).leading_zeros()).max(2);
        let half_bits = bits.div_ceil(2);
        let mut ks = SimRng::new(seed ^ 0x5EED_FE15_7E11_0000);
        RankPerm {
            n,
            half_bits,
            keys: [ks.next_u64(), ks.next_u64(), ks.next_u64(), ks.next_u64()],
        }
    }

    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn round(&self, right: u64, key: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut z = right ^ key;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & mask
    }

    fn encrypt_once(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let (mut l, mut r) = (x >> self.half_bits, x & mask);
        for key in self.keys {
            let (nl, nr) = (r, l ^ self.round(r, key));
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    /// Map rank `x` (0 = most popular) to its permuted object id in
    /// `[0, n)`; bijective over the range.
    #[must_use]
    pub fn apply(&self, x: u64) -> u64 {
        assert!(x < self.n);
        // Cycle-walk: re-encrypt until the value lands in range. The
        // domain is < 4n so this terminates quickly in expectation.
        let mut y = self.encrypt_once(x);
        while y >= self.n {
            y = self.encrypt_once(y);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let x = r.gen_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn exp_mean_approx() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1000, 0.9);
        let mut r = SimRng::new(5);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let k = z.sample(&mut r);
            assert!(k < 1000);
            counts[k as usize] += 1;
        }
        // Rank 0 must dominate rank 100 heavily under Zipf(0.9).
        assert!(
            counts[0] > counts[100] * 5,
            "{} vs {}",
            counts[0],
            counts[100]
        );
    }

    #[test]
    fn rank_perm_is_bijective() {
        for n in [1u64, 2, 7, 64, 1000, 4097] {
            let p = RankPerm::new(n, 99);
            let mut seen = vec![false; n as usize];
            for x in 0..n {
                let y = p.apply(x);
                assert!(y < n);
                assert!(!seen[y as usize], "collision at {x} -> {y} (n={n})");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn rank_perm_seed_changes_mapping() {
        let a = RankPerm::new(100_000, 1);
        let b = RankPerm::new(100_000, 2);
        let same = (0..1000).filter(|&x| a.apply(x) == b.apply(x)).count();
        assert!(same < 10, "{same} fixed points across seeds");
        // Same seed is stable.
        let c = RankPerm::new(100_000, 1);
        assert!((0..1000).all(|x| a.apply(x) == c.apply(x)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn std_normal_moments() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}

#[cfg(test)]
mod prf_tests {
    use super::*;

    #[test]
    fn prf_positional_consistency() {
        // Reading [0,100) in one shot equals reading it in shards at
        // arbitrary offsets.
        let mut whole = vec![0u8; 100];
        prf_bytes(99, 0, &mut whole);
        for start in [0u64, 1, 7, 8, 13, 63, 64, 99] {
            let mut part = vec![0u8; 100 - start as usize];
            prf_bytes(99, start, &mut part);
            assert_eq!(&whole[start as usize..], &part[..], "offset {start}");
        }
    }

    #[test]
    fn prf_streams_differ_by_seed() {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        prf_bytes(1, 0, &mut a);
        prf_bytes(2, 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn prf_bytes_look_random() {
        let mut buf = vec![0u8; 65536];
        prf_bytes(7, 0, &mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        let total = 65536 * 8;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
