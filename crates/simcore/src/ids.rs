//! Typed index arenas.
//!
//! Simulation objects (connections, buffers, in-flight I/Os) are held
//! in arenas and referred to by small typed indices rather than Rust
//! references — the standard pattern for mutable graphs of simulation
//! state. `Id<T>` is a `u32` with a phantom tag so a buffer id cannot
//! be confused with a connection id at compile time.

use std::fmt;
use std::marker::PhantomData;

/// Typed arena index.
pub struct Id<T> {
    raw: u32,
    _tag: PhantomData<fn() -> T>,
}

impl<T> Id<T> {
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        Id {
            raw,
            _tag: PhantomData,
        }
    }
    #[must_use]
    pub fn raw(self) -> u32 {
        self.raw
    }
    #[must_use]
    pub fn index(self) -> usize {
        self.raw as usize
    }
}

// Manual impls: derive would bound on `T`, which is only a tag.
impl<T> Clone for Id<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Id<T> {}
impl<T> PartialEq for Id<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Id<T> {}
impl<T> std::hash::Hash for Id<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<T> PartialOrd for Id<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Id<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<T> fmt::Debug for Id<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.raw)
    }
}

/// Slab arena with free-list reuse. Slots keep a generation-free
/// design on purpose: simulation code frees an id exactly once by
/// construction (buffer pools, connection tables), and the arena
/// asserts on double-free in debug builds.
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    #[must_use]
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    pub fn insert(&mut self, value: T) -> Id<T> {
        self.live += 1;
        if let Some(raw) = self.free.pop() {
            self.slots[raw as usize] = Some(value);
            Id::from_raw(raw)
        } else {
            let raw = u32::try_from(self.slots.len()).expect("arena overflow");
            self.slots.push(Some(value));
            Id::from_raw(raw)
        }
    }

    pub fn remove(&mut self, id: Id<T>) -> T {
        let v = self.slots[id.index()]
            .take()
            .expect("double free / stale id");
        self.free.push(id.raw());
        self.live -= 1;
        v
    }

    #[must_use]
    pub fn get(&self, id: Id<T>) -> Option<&T> {
        self.slots.get(id.index()).and_then(|s| s.as_ref())
    }
    pub fn get_mut(&mut self, id: Id<T>) -> Option<&mut T> {
        self.slots.get_mut(id.index()).and_then(|s| s.as_mut())
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = (Id<T>, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (Id::from_raw(i as u32), v)))
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Id<T>, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (Id::from_raw(i as u32), v)))
    }

    /// All live ids (snapshot) — useful when the loop body needs
    /// `&mut self`.
    #[must_use]
    pub fn ids(&self) -> Vec<Id<T>> {
        self.iter().map(|(id, _)| id).collect()
    }
}

impl<T> std::ops::Index<Id<T>> for Arena<T> {
    type Output = T;
    fn index(&self, id: Id<T>) -> &T {
        self.slots[id.index()].as_ref().expect("stale id")
    }
}

impl<T> std::ops::IndexMut<Id<T>> for Arena<T> {
    fn index_mut(&mut self, id: Id<T>) -> &mut T {
        self.slots[id.index()].as_mut().expect("stale id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a: Arena<String> = Arena::new();
        let id = a.insert("hello".into());
        assert_eq!(a[id], "hello");
        assert_eq!(a.len(), 1);
        let v = a.remove(id);
        assert_eq!(v, "hello");
        assert!(a.is_empty());
        assert!(a.get(id).is_none());
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut a: Arena<u32> = Arena::new();
        let id1 = a.insert(1);
        a.remove(id1);
        let id2 = a.insert(2);
        assert_eq!(id1.raw(), id2.raw());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_remove_panics() {
        let mut a: Arena<u32> = Arena::new();
        let id = a.insert(1);
        a.remove(id);
        a.remove(id);
    }

    #[test]
    fn iteration_sees_only_live() {
        let mut a: Arena<u32> = Arena::new();
        let ids: Vec<_> = (0..5).map(|i| a.insert(i)).collect();
        a.remove(ids[2]);
        let live: Vec<u32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec![0, 1, 3, 4]);
        assert_eq!(a.ids().len(), 4);
    }
}
