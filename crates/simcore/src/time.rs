//! Virtual time and rate types.
//!
//! All simulation time is carried as [`Nanos`], a `u64` nanosecond
//! count since simulation start. 2^64 ns ≈ 584 years, so overflow is
//! not a practical concern; arithmetic is nevertheless saturating on
//! subtraction to keep invariants local.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    pub const ZERO: Nanos = Nanos(0);
    pub const MAX: Nanos = Nanos(u64::MAX);

    #[must_use]
    pub const fn from_nanos(n: u64) -> Self {
        Nanos(n)
    }
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }
    /// Construct from a floating-point second count (e.g. scenario
    /// configs). Negative inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        Nanos((s.max(0.0) * 1e9) as u64)
    }

    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference: `self - other`, or zero when `other`
    /// is later.
    #[must_use]
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Scale a span by a dimensionless factor (used for jitter).
    #[must_use]
    pub fn mul_f64(self, f: f64) -> Nanos {
        Nanos((self.0 as f64 * f.max(0.0)) as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// Panics in debug builds on underflow: a time going backwards is
    /// always a simulation bug worth catching loudly.
    fn sub(self, rhs: Nanos) -> Nanos {
        debug_assert!(self.0 >= rhs.0, "Nanos underflow: {self:?} - {rhs:?}");
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A data rate. Stored as bits per second to match how the paper
/// reports every throughput number (Gb/s).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Bandwidth {
    bits_per_sec: f64,
}

impl Bandwidth {
    #[must_use]
    pub fn from_gbps(g: f64) -> Self {
        Bandwidth {
            bits_per_sec: g * 1e9,
        }
    }
    #[must_use]
    pub fn from_bits_per_sec(b: f64) -> Self {
        Bandwidth { bits_per_sec: b }
    }
    #[must_use]
    pub fn as_gbps(self) -> f64 {
        self.bits_per_sec / 1e9
    }
    #[must_use]
    pub fn as_bits_per_sec(self) -> f64 {
        self.bits_per_sec
    }

    /// Time to serialize `bytes` at this rate.
    #[must_use]
    pub fn tx_time(self, bytes: u64) -> Nanos {
        if self.bits_per_sec <= 0.0 {
            return Nanos::MAX;
        }
        Nanos(((bytes as f64 * 8.0) / self.bits_per_sec * 1e9).ceil() as u64)
    }

    /// Rate implied by moving `bytes` over `span`.
    #[must_use]
    pub fn from_bytes_over(bytes: u64, span: Nanos) -> Self {
        if span == Nanos::ZERO {
            return Bandwidth {
                bits_per_sec: f64::INFINITY,
            };
        }
        Bandwidth {
            bits_per_sec: bytes as f64 * 8.0 / span.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Nanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Nanos::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Nanos::from_micros(1);
        let b = Nanos::from_micros(2);
        assert_eq!(b.saturating_sub(a), Nanos::from_micros(1));
        assert_eq!(a.saturating_sub(b), Nanos::ZERO);
    }

    #[test]
    fn bandwidth_tx_time() {
        // 1 Gb/s: 125 bytes take 1 us.
        let bw = Bandwidth::from_gbps(1.0);
        assert_eq!(bw.tx_time(125), Nanos::from_micros(1));
        // 40 GbE: a 1538-byte frame takes ~307.6 ns.
        let bw = Bandwidth::from_gbps(40.0);
        let t = bw.tx_time(1538);
        assert!(t.as_nanos() >= 307 && t.as_nanos() <= 309, "{t:?}");
    }

    #[test]
    fn bandwidth_inverse() {
        let bw = Bandwidth::from_bytes_over(125_000_000, Nanos::from_secs(1));
        assert!((bw.as_gbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn debug_formats_scale() {
        assert_eq!(format!("{:?}", Nanos(500)), "500ns");
        assert_eq!(format!("{:?}", Nanos::from_secs(2)), "2.000s");
    }
}
