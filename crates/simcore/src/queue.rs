//! Deterministic event queue.
//!
//! A binary heap keyed by `(time, sequence)` — the sequence number
//! breaks ties in insertion order so that two events scheduled for the
//! same instant always fire in the order they were scheduled,
//! independent of heap internals. This is what makes a run with a
//! fixed seed bit-reproducible.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of user-defined type `E` scheduled for a point in time.
#[derive(Debug)]
pub struct Scheduled<E> {
    pub at: Nanos,
    seq: u64,
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (and, within a tie, the first-scheduled) event on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Current virtual time: the timestamp of the most recently popped
    /// event (monotonically non-decreasing).
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past
    /// is clamped to `now` (the event fires "immediately"), which keeps
    /// causality: time never runs backwards.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: Nanos, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "event queue time went backwards");
        self.now = ev.at;
        Some(ev)
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_at(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(5), "c");
        q.schedule(Nanos::from_micros(1), "a");
        q.schedule(Nanos::from_micros(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos::from_micros(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(10), ());
        q.pop();
        assert_eq!(q.now(), Nanos::from_micros(10));
        // Scheduling in the past clamps to now.
        q.schedule(Nanos::from_micros(2), ());
        let e = q.pop().unwrap();
        assert_eq!(e.at, Nanos::from_micros(10));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(10), 1);
        q.pop();
        q.schedule_after(Nanos::from_micros(5), 2);
        assert_eq!(q.peek_at(), Some(Nanos::from_micros(15)));
    }
}
