//! # dcn-netdev — NIC model, netmap-style rings, and the test network
//!
//! The server-side network hardware of the reproduction:
//!
//! * [`sg`] — scatter-gather payload lists: the zero-copy unit the
//!   TCP stack hands to the NIC (header bytes + references into DMA
//!   buffer memory — the moral equivalent of an mbuf chain of
//!   `sf_buf`s, or of netmap slots pointing into diskmap buffers);
//! * [`rings`] — netmap-semantics TX/RX rings: `txsync`/`rxsync`
//!   syscalls move slot ownership between host and NIC; TX-completion
//!   visibility is **batched**, reproducing the delayed-notification
//!   artifact the paper blames for Atlas's extra memory writes
//!   (Fig 12a) and calls out as a netmap improvement opportunity;
//! * [`nic`] — the NIC itself: per-port serialization at 40 Gb/s,
//!   TSO segmentation with checksum offload (the Chelsio T580
//!   modification of §3.2), RSS steering of received frames, DMA
//!   through the LLC/DDIO model;
//! * [`wire`] — wire frames, and the latency middlebox of §4 that
//!   applies a constant per-flow delay drawn from 10–40 ms bands to
//!   client→server traffic.

pub mod nic;
pub mod pcap;
pub mod rings;
pub mod sg;
pub mod wire;

pub use nic::{tcp_frame_info, Nic, NicConfig, SentBurst, TcpFrameInfo};
pub use pcap::PcapWriter;
pub use rings::{RxRing, TxDescriptor, TxRing};
pub use sg::{PayloadBytes, SgChunk, SgList};
pub use wire::{DelayMiddlebox, WireFrame, ETH_WIRE_OVERHEAD};
