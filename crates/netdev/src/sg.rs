//! Scatter-gather payload lists.
//!
//! A TCP segment's payload is a sequence of chunks: small inline byte
//! runs (record headers, GCM tags, HTTP headers) and references into
//! DMA buffer memory (the video data — never copied). TSO splits an
//! SgList at arbitrary byte boundaries without touching payload
//! bytes.

use dcn_mem::{HostMem, PhysRegion};
use std::sync::Arc;

/// Capacity of an [`SgChunk::Inline`] chunk: enough for a TLS record
/// header (5 B) plus a GCM tag (16 B), the two tiny byte runs the
/// per-record hot path emits.
pub const SG_INLINE_CAP: usize = 24;

/// One chunk of payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SgChunk {
    /// Materialized bytes owned by the segment (framing, tags, HTTP).
    Bytes(Vec<u8>),
    /// Small byte run stored inline — no heap allocation. Used for
    /// per-record TLS framing so the steady state stays alloc-free.
    Inline { len: u8, data: [u8; SG_INLINE_CAP] },
    /// Slice of shared immutable bytes (response headers: built once
    /// per response, referenced by the initial send and any
    /// retransmit without copying).
    Shared {
        bytes: Arc<[u8]>,
        off: u32,
        len: u32,
    },
    /// Zero-copy reference into DMA-visible memory.
    Region(PhysRegion),
}

impl SgChunk {
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            SgChunk::Bytes(b) => b.len() as u64,
            SgChunk::Inline { len, .. } => u64::from(*len),
            SgChunk::Shared { len, .. } => u64::from(*len),
            SgChunk::Region(r) => r.len,
        }
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Byte view for every in-memory variant (None for a Region —
    /// those bytes live in simulated host memory).
    #[must_use]
    pub fn as_slice(&self) -> Option<&[u8]> {
        match self {
            SgChunk::Bytes(b) => Some(b),
            SgChunk::Inline { len, data } => Some(&data[..usize::from(*len)]),
            SgChunk::Shared { bytes, off, len } => {
                Some(&bytes[*off as usize..(*off + *len) as usize])
            }
            SgChunk::Region(_) => None,
        }
    }
}

/// A scatter-gather list (mbuf-chain equivalent).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SgList(pub Vec<SgChunk>);

impl SgList {
    #[must_use]
    pub fn empty() -> Self {
        SgList(Vec::new())
    }

    #[must_use]
    pub fn from_bytes(b: Vec<u8>) -> Self {
        SgList(vec![SgChunk::Bytes(b)])
    }

    #[must_use]
    pub fn from_region(r: PhysRegion) -> Self {
        SgList(vec![SgChunk::Region(r)])
    }

    pub fn push_bytes(&mut self, b: Vec<u8>) {
        if !b.is_empty() {
            self.0.push(SgChunk::Bytes(b));
        }
    }

    /// Push a small byte run without allocating. Panics past
    /// [`SG_INLINE_CAP`] — callers use this only for record framing,
    /// whose size is a protocol constant.
    pub fn push_inline(&mut self, b: &[u8]) {
        assert!(b.len() <= SG_INLINE_CAP, "inline chunk over capacity");
        if !b.is_empty() {
            let mut data = [0u8; SG_INLINE_CAP];
            data[..b.len()].copy_from_slice(b);
            self.0.push(SgChunk::Inline {
                len: b.len() as u8,
                data,
            });
        }
    }

    /// Push a slice of shared immutable bytes (refcount bump, no
    /// copy).
    pub fn push_shared(&mut self, bytes: Arc<[u8]>, off: usize, len: usize) {
        assert!(off + len <= bytes.len(), "shared slice past end");
        if len > 0 {
            self.0.push(SgChunk::Shared {
                bytes,
                off: off as u32,
                len: len as u32,
            });
        }
    }

    #[must_use]
    pub fn from_shared(bytes: Arc<[u8]>, off: usize, len: usize) -> Self {
        let mut sg = SgList::empty();
        sg.push_shared(bytes, off, len);
        sg
    }

    pub fn push_region(&mut self, r: PhysRegion) {
        if r.len > 0 {
            self.0.push(SgChunk::Region(r));
        }
    }

    pub fn append(&mut self, mut other: SgList) {
        self.0.append(&mut other.0);
    }

    #[must_use]
    pub fn len(&self) -> u64 {
        self.0.iter().map(SgChunk::len).sum()
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All physical regions referenced (for DMA accounting).
    pub fn regions(&self) -> impl Iterator<Item = PhysRegion> + '_ {
        self.0.iter().filter_map(|c| match c {
            SgChunk::Region(r) => Some(*r),
            _ => None,
        })
    }

    /// Split off the first `at` bytes; `self` keeps the remainder.
    /// Chunks are sliced, not copied (a Region split yields two
    /// sub-regions of the same buffer).
    pub fn split_front(&mut self, at: u64) -> SgList {
        assert!(at <= self.len(), "split past end");
        let mut front = Vec::new();
        let mut need = at;
        let mut rest = std::mem::take(&mut self.0).into_iter();
        for chunk in rest.by_ref() {
            if need == 0 {
                self.0.push(chunk);
                break;
            }
            let l = chunk.len();
            if l <= need {
                need -= l;
                front.push(chunk);
            } else {
                match chunk {
                    SgChunk::Bytes(mut b) => {
                        let tail = b.split_off(need as usize);
                        front.push(SgChunk::Bytes(b));
                        self.0.push(SgChunk::Bytes(tail));
                    }
                    SgChunk::Inline { len, data } => {
                        // Two inline chunks — still no allocation.
                        let cut = need as usize;
                        let mut tail = [0u8; SG_INLINE_CAP];
                        let tail_len = usize::from(len) - cut;
                        tail[..tail_len].copy_from_slice(&data[cut..usize::from(len)]);
                        front.push(SgChunk::Inline {
                            len: cut as u8,
                            data,
                        });
                        self.0.push(SgChunk::Inline {
                            len: tail_len as u8,
                            data: tail,
                        });
                    }
                    SgChunk::Shared { bytes, off, len } => {
                        let cut = need as u32;
                        front.push(SgChunk::Shared {
                            bytes: Arc::clone(&bytes),
                            off,
                            len: cut,
                        });
                        self.0.push(SgChunk::Shared {
                            bytes,
                            off: off + cut,
                            len: len - cut,
                        });
                    }
                    SgChunk::Region(r) => {
                        front.push(SgChunk::Region(r.slice(0, need)));
                        self.0.push(SgChunk::Region(r.slice(need, r.len - need)));
                    }
                }
                need = 0;
            }
        }
        self.0.extend(rest);
        SgList(front)
    }

    /// Materialize the full payload (what the NIC's DMA engine reads
    /// onto the wire). Regions are read from simulated host memory.
    #[must_use]
    pub fn materialize(&self, host: &HostMem) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for c in &self.0 {
            match c.as_slice() {
                Some(b) => out.extend_from_slice(b),
                None => match c {
                    SgChunk::Region(r) => out.extend_from_slice(&host.read_region(*r)),
                    _ => unreachable!(),
                },
            }
        }
        out
    }
}

/// Wire payload representation: real bytes at full fidelity, a length
/// at modeled fidelity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PayloadBytes {
    Real(Vec<u8>),
    Virtual(u64),
}

impl PayloadBytes {
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            PayloadBytes::Real(b) => b.len() as u64,
            PayloadBytes::Virtual(n) => *n,
        }
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_mem::PhysAddr;

    fn region(addr: u64, len: u64) -> PhysRegion {
        PhysRegion::new(PhysAddr(addr), len)
    }

    #[test]
    fn length_sums_chunks() {
        let mut sg = SgList::empty();
        sg.push_bytes(vec![1, 2, 3]);
        sg.push_region(region(4096, 1000));
        sg.push_bytes(vec![9; 16]);
        assert_eq!(sg.len(), 3 + 1000 + 16);
    }

    #[test]
    fn split_front_within_bytes_chunk() {
        let mut sg = SgList::from_bytes(vec![0, 1, 2, 3, 4, 5]);
        let front = sg.split_front(2);
        assert_eq!(front, SgList::from_bytes(vec![0, 1]));
        assert_eq!(sg, SgList::from_bytes(vec![2, 3, 4, 5]));
    }

    #[test]
    fn split_front_within_region_chunk() {
        let mut sg = SgList::from_region(region(8192, 4096));
        let front = sg.split_front(1500);
        assert_eq!(front.len(), 1500);
        assert_eq!(sg.len(), 2596);
        // The split regions tile the original.
        let SgChunk::Region(fr) = front.0[0] else {
            panic!()
        };
        let SgChunk::Region(re) = sg.0[0] else {
            panic!()
        };
        assert_eq!(fr.addr.0, 8192);
        assert_eq!(re.addr.0, 8192 + 1500);
    }

    #[test]
    fn split_front_across_chunks() {
        let mut sg = SgList::empty();
        sg.push_bytes(vec![7; 100]);
        sg.push_region(region(4096, 200));
        sg.push_bytes(vec![8; 50]);
        let front = sg.split_front(250);
        assert_eq!(front.len(), 250);
        assert_eq!(sg.len(), 100);
        assert_eq!(front.0.len(), 2);
        assert_eq!(sg.0.len(), 2); // 50-byte region tail + 50 bytes
    }

    #[test]
    fn split_at_boundary_and_zero() {
        let mut sg = SgList::from_bytes(vec![1; 10]);
        let f = sg.split_front(0);
        assert!(f.is_empty());
        assert_eq!(sg.len(), 10);
        let f = sg.split_front(10);
        assert_eq!(f.len(), 10);
        assert!(sg.is_empty());
    }

    #[test]
    fn materialize_reads_regions_from_host_memory() {
        let mut host = HostMem::new();
        host.write(PhysAddr(4096), &[0xAB; 100]);
        let mut sg = SgList::empty();
        sg.push_bytes(vec![1, 2]);
        sg.push_region(region(4096, 100));
        sg.push_bytes(vec![3]);
        let m = sg.materialize(&host);
        assert_eq!(m.len(), 103);
        assert_eq!(&m[..2], &[1, 2]);
        assert!(m[2..102].iter().all(|&b| b == 0xAB));
        assert_eq!(m[102], 3);
    }

    #[test]
    #[should_panic(expected = "split past end")]
    fn split_past_end_panics() {
        let mut sg = SgList::from_bytes(vec![0; 4]);
        sg.split_front(5);
    }

    #[test]
    fn inline_chunks_round_trip_and_split_without_heap_vecs() {
        let host = HostMem::new();
        let mut sg = SgList::empty();
        sg.push_inline(&[0x17, 0x03, 0x03, 0x40, 0x11]);
        sg.push_region(region(4096, 100));
        sg.push_inline(&[0xAA; 16]);
        assert_eq!(sg.len(), 5 + 100 + 16);
        // Split inside the leading inline chunk: both halves inline.
        let front = sg.split_front(3);
        assert!(matches!(front.0[0], SgChunk::Inline { len: 3, .. }));
        assert!(matches!(sg.0[0], SgChunk::Inline { len: 2, .. }));
        assert_eq!(front.materialize(&host), vec![0x17, 0x03, 0x03]);
        assert_eq!(sg.0[0].as_slice(), Some(&[0x40, 0x11][..]));
    }

    #[test]
    #[should_panic(expected = "inline chunk over capacity")]
    fn inline_overflow_panics() {
        let mut sg = SgList::empty();
        sg.push_inline(&[0u8; SG_INLINE_CAP + 1]);
    }

    #[test]
    fn shared_chunks_slice_without_copying() {
        let host = HostMem::new();
        let header: Arc<[u8]> = (0u8..100).collect::<Vec<u8>>().into();
        let mut sg = SgList::from_shared(Arc::clone(&header), 0, 100);
        assert_eq!(sg.len(), 100);
        let front = sg.split_front(30);
        // Both halves reference the same backing allocation.
        let SgChunk::Shared {
            bytes: f,
            off: 0,
            len: 30,
        } = &front.0[0]
        else {
            panic!("{front:?}");
        };
        let SgChunk::Shared {
            bytes: t,
            off: 30,
            len: 70,
        } = &sg.0[0]
        else {
            panic!("{sg:?}");
        };
        assert!(Arc::ptr_eq(f, t) && Arc::ptr_eq(f, &header));
        assert_eq!(front.materialize(&host), (0u8..30).collect::<Vec<u8>>());
        assert_eq!(sg.materialize(&host), (30u8..100).collect::<Vec<u8>>());
        // A mid-header retransmit slice reads the right window.
        let retx = SgList::from_shared(header, 10, 5);
        assert_eq!(retx.materialize(&host), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn empty_inline_and_shared_pushes_are_elided() {
        let mut sg = SgList::empty();
        sg.push_inline(&[]);
        sg.push_shared(Arc::from(vec![1u8, 2].into_boxed_slice()), 1, 0);
        assert!(sg.0.is_empty());
    }
}
