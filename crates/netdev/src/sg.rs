//! Scatter-gather payload lists.
//!
//! A TCP segment's payload is a sequence of chunks: small inline byte
//! runs (record headers, GCM tags, HTTP headers) and references into
//! DMA buffer memory (the video data — never copied). TSO splits an
//! SgList at arbitrary byte boundaries without touching payload
//! bytes.

use dcn_mem::{HostMem, PhysRegion};

/// One chunk of payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SgChunk {
    /// Materialized bytes owned by the segment (framing, tags, HTTP).
    Bytes(Vec<u8>),
    /// Zero-copy reference into DMA-visible memory.
    Region(PhysRegion),
}

impl SgChunk {
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            SgChunk::Bytes(b) => b.len() as u64,
            SgChunk::Region(r) => r.len,
        }
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A scatter-gather list (mbuf-chain equivalent).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SgList(pub Vec<SgChunk>);

impl SgList {
    #[must_use]
    pub fn empty() -> Self {
        SgList(Vec::new())
    }

    #[must_use]
    pub fn from_bytes(b: Vec<u8>) -> Self {
        SgList(vec![SgChunk::Bytes(b)])
    }

    #[must_use]
    pub fn from_region(r: PhysRegion) -> Self {
        SgList(vec![SgChunk::Region(r)])
    }

    pub fn push_bytes(&mut self, b: Vec<u8>) {
        if !b.is_empty() {
            self.0.push(SgChunk::Bytes(b));
        }
    }

    pub fn push_region(&mut self, r: PhysRegion) {
        if r.len > 0 {
            self.0.push(SgChunk::Region(r));
        }
    }

    pub fn append(&mut self, mut other: SgList) {
        self.0.append(&mut other.0);
    }

    #[must_use]
    pub fn len(&self) -> u64 {
        self.0.iter().map(SgChunk::len).sum()
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All physical regions referenced (for DMA accounting).
    pub fn regions(&self) -> impl Iterator<Item = PhysRegion> + '_ {
        self.0.iter().filter_map(|c| match c {
            SgChunk::Region(r) => Some(*r),
            SgChunk::Bytes(_) => None,
        })
    }

    /// Split off the first `at` bytes; `self` keeps the remainder.
    /// Chunks are sliced, not copied (a Region split yields two
    /// sub-regions of the same buffer).
    pub fn split_front(&mut self, at: u64) -> SgList {
        assert!(at <= self.len(), "split past end");
        let mut front = Vec::new();
        let mut need = at;
        let mut rest = std::mem::take(&mut self.0).into_iter();
        for chunk in rest.by_ref() {
            if need == 0 {
                self.0.push(chunk);
                break;
            }
            let l = chunk.len();
            if l <= need {
                need -= l;
                front.push(chunk);
            } else {
                match chunk {
                    SgChunk::Bytes(mut b) => {
                        let tail = b.split_off(need as usize);
                        front.push(SgChunk::Bytes(b));
                        self.0.push(SgChunk::Bytes(tail));
                    }
                    SgChunk::Region(r) => {
                        front.push(SgChunk::Region(r.slice(0, need)));
                        self.0.push(SgChunk::Region(r.slice(need, r.len - need)));
                    }
                }
                need = 0;
            }
        }
        self.0.extend(rest);
        SgList(front)
    }

    /// Materialize the full payload (what the NIC's DMA engine reads
    /// onto the wire). Regions are read from simulated host memory.
    #[must_use]
    pub fn materialize(&self, host: &HostMem) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for c in &self.0 {
            match c {
                SgChunk::Bytes(b) => out.extend_from_slice(b),
                SgChunk::Region(r) => out.extend_from_slice(&host.read_region(*r)),
            }
        }
        out
    }
}

/// Wire payload representation: real bytes at full fidelity, a length
/// at modeled fidelity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PayloadBytes {
    Real(Vec<u8>),
    Virtual(u64),
}

impl PayloadBytes {
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            PayloadBytes::Real(b) => b.len() as u64,
            PayloadBytes::Virtual(n) => *n,
        }
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_mem::PhysAddr;

    fn region(addr: u64, len: u64) -> PhysRegion {
        PhysRegion::new(PhysAddr(addr), len)
    }

    #[test]
    fn length_sums_chunks() {
        let mut sg = SgList::empty();
        sg.push_bytes(vec![1, 2, 3]);
        sg.push_region(region(4096, 1000));
        sg.push_bytes(vec![9; 16]);
        assert_eq!(sg.len(), 3 + 1000 + 16);
    }

    #[test]
    fn split_front_within_bytes_chunk() {
        let mut sg = SgList::from_bytes(vec![0, 1, 2, 3, 4, 5]);
        let front = sg.split_front(2);
        assert_eq!(front, SgList::from_bytes(vec![0, 1]));
        assert_eq!(sg, SgList::from_bytes(vec![2, 3, 4, 5]));
    }

    #[test]
    fn split_front_within_region_chunk() {
        let mut sg = SgList::from_region(region(8192, 4096));
        let front = sg.split_front(1500);
        assert_eq!(front.len(), 1500);
        assert_eq!(sg.len(), 2596);
        // The split regions tile the original.
        let SgChunk::Region(fr) = front.0[0] else {
            panic!()
        };
        let SgChunk::Region(re) = sg.0[0] else {
            panic!()
        };
        assert_eq!(fr.addr.0, 8192);
        assert_eq!(re.addr.0, 8192 + 1500);
    }

    #[test]
    fn split_front_across_chunks() {
        let mut sg = SgList::empty();
        sg.push_bytes(vec![7; 100]);
        sg.push_region(region(4096, 200));
        sg.push_bytes(vec![8; 50]);
        let front = sg.split_front(250);
        assert_eq!(front.len(), 250);
        assert_eq!(sg.len(), 100);
        assert_eq!(front.0.len(), 2);
        assert_eq!(sg.0.len(), 2); // 50-byte region tail + 50 bytes
    }

    #[test]
    fn split_at_boundary_and_zero() {
        let mut sg = SgList::from_bytes(vec![1; 10]);
        let f = sg.split_front(0);
        assert!(f.is_empty());
        assert_eq!(sg.len(), 10);
        let f = sg.split_front(10);
        assert_eq!(f.len(), 10);
        assert!(sg.is_empty());
    }

    #[test]
    fn materialize_reads_regions_from_host_memory() {
        let mut host = HostMem::new();
        host.write(PhysAddr(4096), &[0xAB; 100]);
        let mut sg = SgList::empty();
        sg.push_bytes(vec![1, 2]);
        sg.push_region(region(4096, 100));
        sg.push_bytes(vec![3]);
        let m = sg.materialize(&host);
        assert_eq!(m.len(), 103);
        assert_eq!(&m[..2], &[1, 2]);
        assert!(m[2..102].iter().all(|&b| b == 0xAB));
        assert_eq!(m[102], 3);
    }

    #[test]
    #[should_panic(expected = "split past end")]
    fn split_past_end_panics() {
        let mut sg = SgList::from_bytes(vec![0; 4]);
        sg.split_front(5);
    }
}
