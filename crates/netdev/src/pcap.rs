//! pcap capture of simulated traffic.
//!
//! Any point in the simulated network (server TX, client TX, the
//! middlebox) can be tapped into a classic libpcap file and opened in
//! Wireshark — the same debugging affordance smoltcp's examples
//! provide, and the fastest way to diagnose a protocol bug in the
//! simulated stacks. Timestamps are the simulation's virtual clock.

use crate::wire::WireFrame;
use dcn_simcore::Nanos;

/// Classic pcap global header values.
const PCAP_MAGIC_NS: u32 = 0xA1B2_3C4D; // nanosecond-resolution pcap
const PCAP_VERSION_MAJOR: u16 = 2;
const PCAP_VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;

/// An in-memory pcap writer (callers flush the bytes to disk when the
/// run completes; the simulator itself never does I/O).
pub struct PcapWriter {
    buf: Vec<u8>,
    snaplen: u32,
    frames: u64,
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new(65535)
    }
}

impl PcapWriter {
    #[must_use]
    pub fn new(snaplen: u32) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&PCAP_MAGIC_NS.to_le_bytes());
        buf.extend_from_slice(&PCAP_VERSION_MAJOR.to_le_bytes());
        buf.extend_from_slice(&PCAP_VERSION_MINOR.to_le_bytes());
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&snaplen.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        PcapWriter {
            buf,
            snaplen,
            frames: 0,
        }
    }

    /// Record one frame at virtual time `at`. The payload portion is
    /// whatever bytes the frame carries (real at full fidelity,
    /// zero-filled content at modeled fidelity — headers are always
    /// real, so Wireshark dissects the capture either way).
    pub fn record(&mut self, at: Nanos, frame: &WireFrame) {
        let secs = (at.as_nanos() / 1_000_000_000) as u32;
        let nanos = (at.as_nanos() % 1_000_000_000) as u32;
        let mut bytes = frame.headers.clone();
        match &frame.payload {
            crate::sg::PayloadBytes::Real(b) => bytes.extend_from_slice(b),
            crate::sg::PayloadBytes::Virtual(n) => {
                bytes.extend(std::iter::repeat_n(0u8, *n as usize));
            }
        }
        let orig_len = bytes.len() as u32;
        let incl = orig_len.min(self.snaplen);
        bytes.truncate(incl as usize);
        self.buf.extend_from_slice(&secs.to_le_bytes());
        self.buf.extend_from_slice(&nanos.to_le_bytes());
        self.buf.extend_from_slice(&incl.to_le_bytes());
        self.buf.extend_from_slice(&orig_len.to_le_bytes());
        self.buf.extend_from_slice(&bytes);
        self.frames += 1;
    }

    /// Record every frame of a burst.
    pub fn record_burst(&mut self, at: Nanos, frames: &[WireFrame]) {
        for f in frames {
            self.record(at, f);
        }
    }

    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The complete pcap file contents.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sg::PayloadBytes;

    fn frame(n: usize) -> WireFrame {
        WireFrame::single(vec![0xEEu8; 54], PayloadBytes::Real(vec![0x11; n]))
    }

    #[test]
    fn header_is_valid_pcap() {
        let w = PcapWriter::default();
        let b = w.bytes();
        assert_eq!(&b[0..4], &PCAP_MAGIC_NS.to_le_bytes());
        assert_eq!(u16::from_le_bytes([b[4], b[5]]), 2);
        assert_eq!(u16::from_le_bytes([b[6], b[7]]), 4);
        assert_eq!(
            u32::from_le_bytes([b[20], b[21], b[22], b[23]]),
            LINKTYPE_ETHERNET
        );
        assert_eq!(b.len(), 24);
    }

    #[test]
    fn records_carry_timestamps_and_lengths() {
        let mut w = PcapWriter::default();
        w.record(Nanos::from_secs(3) + Nanos::from_nanos(123), &frame(100));
        let b = w.bytes();
        let rec = &b[24..];
        assert_eq!(u32::from_le_bytes(rec[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(rec[4..8].try_into().unwrap()), 123);
        assert_eq!(u32::from_le_bytes(rec[8..12].try_into().unwrap()), 154);
        assert_eq!(u32::from_le_bytes(rec[12..16].try_into().unwrap()), 154);
        assert_eq!(rec[16..].len(), 154);
        assert_eq!(w.frames(), 1);
    }

    #[test]
    fn snaplen_truncates_but_keeps_orig_len() {
        let mut w = PcapWriter::new(64);
        w.record(Nanos::ZERO, &frame(1000));
        let b = w.bytes();
        let rec = &b[24..];
        assert_eq!(u32::from_le_bytes(rec[8..12].try_into().unwrap()), 64);
        assert_eq!(u32::from_le_bytes(rec[12..16].try_into().unwrap()), 1054);
        assert_eq!(rec[16..].len(), 64);
    }

    #[test]
    fn virtual_payload_is_zero_filled() {
        let mut w = PcapWriter::default();
        let f = WireFrame::single(vec![0xAA; 54], PayloadBytes::Virtual(10));
        w.record(Nanos::ZERO, &f);
        let b = w.bytes();
        let data = &b[24 + 16..];
        assert_eq!(data.len(), 64);
        assert!(data[54..].iter().all(|&x| x == 0));
    }

    #[test]
    fn multiple_records_append() {
        let mut w = PcapWriter::default();
        w.record_burst(Nanos::from_micros(5), &[frame(10), frame(20)]);
        assert_eq!(w.frames(), 2);
        let total = w.finish().len();
        assert_eq!(total, 24 + (16 + 64) + (16 + 74));
    }
}
