//! Wire frames and the latency middlebox.

use crate::sg::PayloadBytes;
use dcn_packet::FlowId;
use dcn_simcore::{Nanos, SimRng};

/// Per-frame Ethernet overhead beyond header bytes: preamble + SFD
/// (8), FCS (4), inter-frame gap (12) = 24 bytes on the wire.
pub const ETH_WIRE_OVERHEAD: u64 = 24;

/// A frame on the wire: real L2–L4 headers plus payload (real bytes
/// at full fidelity, zero-filled content at modeled fidelity).
///
/// `aggregated` is the number of MSS-sized wire segments this frame
/// stands for: at modeled fidelity the NIC emits one aggregated
/// frame per TSO train (the receiver GRO-merges them anyway), and
/// serialization is still charged for every segment's headers and
/// Ethernet overhead. Full fidelity always uses `aggregated == 1`.
#[derive(Clone, Debug)]
pub struct WireFrame {
    pub headers: Vec<u8>,
    pub payload: PayloadBytes,
    pub aggregated: u32,
}

impl WireFrame {
    /// A plain single-segment frame.
    #[must_use]
    pub fn single(headers: Vec<u8>, payload: PayloadBytes) -> Self {
        WireFrame {
            headers,
            payload,
            aggregated: 1,
        }
    }

    /// Total bytes this frame occupies on the wire (incl. Ethernet
    /// overheads) — what link serialization is charged for.
    #[must_use]
    pub fn wire_len(&self) -> u64 {
        self.payload.len()
            + u64::from(self.aggregated.max(1)) * (self.headers.len() as u64 + ETH_WIRE_OVERHEAD)
    }

    /// L2 view (headers + payload), excluding preamble/FCS.
    #[must_use]
    pub fn frame_len(&self) -> u64 {
        self.headers.len() as u64 + self.payload.len()
    }
}

/// The §4 middlebox: "a configurable set of delay bands — we use this
/// feature to add different delays to different flows, with latencies
/// chosen from the range 10 to 40 ms", applied on the client→server
/// path, constant per flow (no reordering within a flow).
pub struct DelayMiddlebox {
    bands: Vec<Nanos>,
    /// Salt so different experiment seeds shuffle flows across bands.
    salt: u32,
}

impl DelayMiddlebox {
    /// Evenly spaced bands over `[min, max]`.
    #[must_use]
    pub fn new(min: Nanos, max: Nanos, n_bands: usize, seed: u64) -> Self {
        assert!(n_bands >= 1 && max >= min);
        let mut rng = SimRng::new(seed);
        let bands = (0..n_bands)
            .map(|i| {
                if n_bands == 1 {
                    min
                } else {
                    let frac = i as f64 / (n_bands - 1) as f64;
                    min + (max - min).mul_f64(frac)
                }
            })
            .collect();
        DelayMiddlebox {
            bands,
            salt: rng.next_u64() as u32,
        }
    }

    /// The paper's configuration: 10–40 ms in 7 bands.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self::new(Nanos::from_millis(10), Nanos::from_millis(40), 7, seed)
    }

    /// The constant delay applied to this flow.
    #[must_use]
    pub fn delay(&self, flow: FlowId) -> Nanos {
        let h = flow.rss_hash() ^ self.salt;
        self.bands[(h as usize) % self.bands.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_packet::Ipv4Addr;

    fn flow(port: u16) -> FlowId {
        FlowId {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 1, 0, 1),
            src_port: port,
            dst_port: 80,
        }
    }

    #[test]
    fn wire_len_includes_overheads() {
        let f = WireFrame::single(vec![0; 54], PayloadBytes::Virtual(1448));
        assert_eq!(f.wire_len(), 54 + 1448 + 24);
        assert_eq!(f.frame_len(), 1502);
    }

    #[test]
    fn per_flow_delay_is_constant_and_in_range() {
        let mb = DelayMiddlebox::paper(1);
        for p in 1000..1100 {
            let d1 = mb.delay(flow(p));
            let d2 = mb.delay(flow(p));
            assert_eq!(d1, d2, "constant per flow (no intra-flow reordering)");
            assert!(d1 >= Nanos::from_millis(10) && d1 <= Nanos::from_millis(40));
        }
    }

    #[test]
    fn delays_spread_across_bands() {
        let mb = DelayMiddlebox::paper(1);
        let distinct: std::collections::HashSet<u64> = (1000u16..1200)
            .map(|p| mb.delay(flow(p)).as_nanos())
            .collect();
        assert!(
            distinct.len() >= 5,
            "flows should spread over bands: {distinct:?}"
        );
    }

    #[test]
    fn symmetric_flow_same_band() {
        let mb = DelayMiddlebox::paper(9);
        let f = flow(1234);
        assert_eq!(mb.delay(f), mb.delay(f.reversed()));
    }
}
