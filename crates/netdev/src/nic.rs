//! The NIC: TSO segmentation, per-port serialization, RSS RX
//! steering, DMA through the memory model.
//!
//! The evaluation server drives two 40 GbE ports (§4). Each TX ring
//! is bound to a port; the NIC drains rings in arrival order,
//! serializing frames at line rate. With TSO, one descriptor becomes
//! a train of MSS-sized wire frames whose TCP sequence numbers are
//! patched per frame and whose checksums are computed in hardware —
//! the train leaves back-to-back and is delivered to the wire as one
//! burst (the receiver's GRO view).

use crate::rings::{RxFrame, RxRing, TxRing};
use crate::sg::{PayloadBytes, SgList};
use crate::wire::WireFrame;
use dcn_mem::{Agent, Fidelity, HostMem, MemSystem};
use dcn_packet::{Ipv4Repr, TcpRepr, ETH_HEADER_LEN};
use dcn_simcore::{Bandwidth, Nanos};

/// The L3/L4 identity of one wire frame, as the switch/fault layer
/// sees it: enough to classify retransmissions and tell data frames
/// from pure control frames, without materializing the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpFrameInfo {
    /// Direction-sensitive flow key (all four tuple fields folded).
    pub flow_key: u64,
    /// TCP sequence number of the first payload byte.
    pub seq: u32,
    /// TCP payload bytes (inline or scatter-gather).
    pub payload_len: u32,
}

/// Peek at a frame's TCP header (no checksum verification, no payload
/// copy). Returns `None` for anything that doesn't parse as
/// Ethernet + IPv4 + TCP.
#[must_use]
pub fn tcp_frame_info(frame: &WireFrame) -> Option<TcpFrameInfo> {
    let h = &frame.headers;
    if h.len() < ETH_HEADER_LEN {
        return None;
    }
    let extra = frame.payload.len() as usize;
    let (ip, ip_off) = Ipv4Repr::parse_with_extra(&h[ETH_HEADER_LEN..], extra).ok()?;
    let (tcp, tcp_off) = TcpRepr::parse(&h[ETH_HEADER_LEN + ip_off..], None).ok()?;
    let inline = h.len() - (ETH_HEADER_LEN + ip_off + tcp_off);
    let flow_key = (u64::from(ip.src.0) << 32)
        ^ u64::from(ip.dst.0)
        ^ (u64::from(tcp.src_port) << 48)
        ^ (u64::from(tcp.dst_port) << 16);
    Some(TcpFrameInfo {
        flow_key,
        seq: tcp.seq.0,
        payload_len: (inline as u64 + frame.payload.len()) as u32,
    })
}

pub use dcn_mem::Fidelity as NicFidelity;

/// NIC geometry and behaviour.
#[derive(Clone, Copy, Debug)]
pub struct NicConfig {
    /// Physical ports (each serializes independently).
    pub ports: usize,
    /// Line rate per port.
    pub port_rate: Bandwidth,
    /// TX/RX ring pairs (one per stack core; ring i transmits on port
    /// `i % ports`).
    pub rings: usize,
    pub ring_slots: usize,
    /// TX completions are reported in batches of this many (netmap's
    /// lazy reporting; 1 = timely, the §5 proposal).
    pub tx_report_batch: usize,
    /// Hardware TSO available (Chelsio T580 + the paper's netmap
    /// driver changes).
    pub tso: bool,
    pub fidelity: Fidelity,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            ports: 2,
            port_rate: Bandwidth::from_gbps(40.0),
            rings: 4,
            ring_slots: 1024,
            tx_report_batch: 32,
            tso: true,
            fidelity: Fidelity::Full,
        }
    }
}

/// A burst of frames that left one port back-to-back (one TSO train,
/// or a single frame). Delivered to the wire as a unit.
#[derive(Debug)]
pub struct SentBurst {
    /// When the last bit of the burst left the port.
    pub departed: Nanos,
    pub port: usize,
    pub ring: usize,
    /// The descriptor's completion token (0 = none) — lets callers
    /// correlate the burst back to the buffer / chunk it carried.
    pub completion: u64,
    /// DRAM bytes the payload DMA read actually touched. Zero means
    /// the whole payload was still LLC-resident at transmit time
    /// (the paper's ideal disk→LLC→wire path).
    pub dma_dram_bytes: u64,
    pub frames: Vec<WireFrame>,
}

impl SentBurst {
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.frames.iter().map(WireFrame::wire_len).sum()
    }
}

struct Port {
    busy_until: Nanos,
}

/// The NIC device.
pub struct Nic {
    cfg: NicConfig,
    ports: Vec<Port>,
    pub tx_rings: Vec<TxRing>,
    pub rx_rings: Vec<RxRing>,
    /// Wire bytes transmitted (all ports).
    pub tx_wire_bytes: u64,
    /// Data payload bytes transmitted (excludes all headers).
    pub tx_payload_bytes: u64,
    pub tx_frames: u64,
}

impl Nic {
    #[must_use]
    pub fn new(cfg: NicConfig) -> Self {
        Nic {
            ports: (0..cfg.ports)
                .map(|_| Port {
                    busy_until: Nanos::ZERO,
                })
                .collect(),
            tx_rings: (0..cfg.rings)
                .map(|_| TxRing::new(cfg.ring_slots, cfg.tx_report_batch))
                .collect(),
            rx_rings: (0..cfg.rings)
                .map(|_| RxRing::new(cfg.ring_slots))
                .collect(),
            cfg,
            tx_wire_bytes: 0,
            tx_payload_bytes: 0,
            tx_frames: 0,
        }
    }

    #[must_use]
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    fn port_of_ring(&self, ring: usize) -> usize {
        ring % self.cfg.ports
    }

    /// Transmit pending descriptors on `ring` whose serialization can
    /// begin by `now`, at the port's line rate. Each TX descriptor
    /// becomes one burst. The payload DMA read happens **at transmit
    /// time**, not enqueue time — under backlog, data waits in the
    /// ring and may be evicted from the LLC before the NIC fetches it
    /// (the working-set effect §4.1 observes past 4 k connections).
    /// Descriptors whose start time is still in the future stay
    /// queued; [`Nic::poll_at`] says when to come back.
    pub fn tx_drain(
        &mut self,
        ring: usize,
        now: Nanos,
        mem: &mut MemSystem,
        host: &HostMem,
    ) -> Vec<SentBurst> {
        let port_idx = self.port_of_ring(ring);
        let mut out = Vec::new();
        loop {
            let start = self.ports[port_idx].busy_until.max(now);
            if self.ports[port_idx].busy_until > now {
                break; // port still serializing an earlier burst
            }
            let Some(desc) = self.tx_rings[ring].nic_take() else {
                break;
            };
            // DMA-read the payload regions (cache accounting) at the
            // moment the wire actually consumes them.
            let mut dma_dram_bytes = 0u64;
            for r in desc.payload.regions() {
                dma_dram_bytes += mem.dma_read(start, Agent::NicDma, r).dram_read_bytes;
            }
            let frames = self.segment(&desc, host);
            let burst_wire: u64 = frames.iter().map(WireFrame::wire_len).sum();
            let t = self.cfg.port_rate.tx_time(burst_wire);
            let departed = start + t;
            self.ports[port_idx].busy_until = departed;
            self.tx_wire_bytes += burst_wire;
            self.tx_payload_bytes += desc.payload.len();
            self.tx_frames += frames.len() as u64;
            let token = desc.completion;
            out.push(SentBurst {
                departed,
                port: port_idx,
                ring,
                completion: token,
                dma_dram_bytes,
                frames,
            });
            self.tx_rings[ring].nic_done(token);
        }
        out
    }

    /// Drain every ring (the per-core stacks each own one, but the
    /// ports are shared — a server's advance() services them all).
    pub fn tx_drain_all(
        &mut self,
        now: Nanos,
        mem: &mut MemSystem,
        host: &HostMem,
    ) -> Vec<SentBurst> {
        let mut out = Vec::new();
        for ring in 0..self.tx_rings.len() {
            out.extend(self.tx_drain(ring, now, mem, host));
        }
        out
    }

    /// Per-ring pending/port state (debugging).
    #[must_use]
    pub fn ring_state(&self) -> String {
        (0..self.tx_rings.len())
            .map(|r| {
                format!(
                    "r{r}:pend={},infl={},port_busy={:?}",
                    self.tx_rings[r].pending_len(),
                    self.tx_rings[r].inflight(),
                    self.ports[self.port_of_ring(r)].busy_until
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Next instant a queued descriptor can start serializing.
    #[must_use]
    pub fn poll_at(&self) -> Option<Nanos> {
        let mut at: Option<Nanos> = None;
        for (ring, r) in self.tx_rings.iter().enumerate() {
            if r.pending_len() > 0 {
                let t = self.ports[self.port_of_ring(ring)].busy_until;
                at = Some(at.map_or(t, |a: Nanos| a.min(t)));
            }
        }
        at
    }

    /// TSO: split one descriptor into MSS-sized frames, patching the
    /// TCP sequence number per frame. Without TSO the descriptor
    /// must already be ≤ MSS and maps to exactly one frame.
    fn segment(&self, desc: &crate::rings::TxDescriptor, host: &HostMem) -> Vec<WireFrame> {
        let total = desc.payload.len();
        let mss = match desc.tso_mss {
            Some(m) if self.cfg.tso && total > u64::from(m) => u64::from(m),
            _ => {
                // Single frame.
                let payload = self.payload_bytes(&desc.payload, host);
                return vec![WireFrame::single(desc.headers.clone(), payload)];
            }
        };
        if self.cfg.fidelity == Fidelity::Modeled {
            // One aggregated frame per train: identical protocol
            // semantics at the GRO receiver, a fraction of the
            // simulation cost. Wire accounting still charges every
            // segment's headers (see WireFrame::wire_len).
            let n = total.div_ceil(mss) as u32;
            let mut headers = desc.headers.clone();
            patch_ip_len(&mut headers, total);
            return vec![WireFrame {
                headers,
                payload: self.payload_bytes(&desc.payload, host),
                aggregated: n,
            }];
        }
        let mut frames = Vec::with_capacity((total / mss + 2) as usize);
        let mut rest = desc.payload.clone();
        let mut off = 0u64;
        let base_seq = if desc.tcp_seq_off != usize::MAX {
            u32::from_be_bytes(
                desc.headers[desc.tcp_seq_off..desc.tcp_seq_off + 4]
                    .try_into()
                    .expect("seq field"),
            )
        } else {
            0
        };
        while !rest.is_empty() {
            let n = rest.len().min(mss);
            let chunk = rest.split_front(n);
            let mut headers = desc.headers.clone();
            if desc.tcp_seq_off != usize::MAX {
                let seq = base_seq.wrapping_add(off as u32);
                headers[desc.tcp_seq_off..desc.tcp_seq_off + 4].copy_from_slice(&seq.to_be_bytes());
            }
            // Patch the IP total length for this frame and restore a
            // valid header checksum — TSO hardware rewrites both per
            // derived frame (standard 14-byte Ethernet framing).
            patch_ip_len(&mut headers, n);
            frames.push(WireFrame::single(headers, self.payload_bytes(&chunk, host)));
            off += n;
        }
        frames
    }

    fn payload_bytes(&self, sg: &SgList, host: &HostMem) -> PayloadBytes {
        match self.cfg.fidelity {
            Fidelity::Full => PayloadBytes::Real(sg.materialize(host)),
            Fidelity::Modeled => {
                // Protocol bytes (HTTP headers, record framing) must
                // survive — receivers parse them — while bulk content
                // is zero-filled instead of read from host memory.
                let mut out = vec![0u8; sg.len() as usize];
                let mut pos = 0usize;
                for chunk in &sg.0 {
                    match chunk.as_slice() {
                        Some(b) => {
                            out[pos..pos + b.len()].copy_from_slice(b);
                            pos += b.len();
                        }
                        None => pos += chunk.len() as usize,
                    }
                }
                PayloadBytes::Real(out)
            }
        }
    }

    /// Deliver a frame arriving from the wire into RX ring
    /// `ring` (RSS steering is the caller's hash-based choice —
    /// symmetric with how connections are sharded across cores).
    /// DMA-writes the frame into host memory via the cache model.
    pub fn rx_deliver(
        &mut self,
        ring: usize,
        now: Nanos,
        frame: WireFrame,
        mem: &mut MemSystem,
        rx_slot_region: dcn_mem::PhysRegion,
    ) {
        mem.dma_write(
            now,
            Agent::NicDma,
            rx_slot_region.slice(0, frame.frame_len().min(rx_slot_region.len)),
        );
        self.rx_rings[ring].nic_deliver(RxFrame { at: now, frame });
    }

    /// Earliest port-idle instant (diagnostics: NIC saturation).
    #[must_use]
    pub fn ports_busy_until(&self) -> Nanos {
        self.ports
            .iter()
            .map(|p| p.busy_until)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Publish NIC counters into a dcn-obs registry under `nic.*`
    /// (idempotent registration; called at sample/report points, not
    /// on the per-frame hot path).
    pub fn publish_metrics(&self, reg: &mut dcn_obs::Registry) {
        let g = reg.gauge("nic.tx_wire_bytes");
        reg.set(g, self.tx_wire_bytes as f64);
        let g = reg.gauge("nic.tx_payload_bytes");
        reg.set(g, self.tx_payload_bytes as f64);
        let g = reg.gauge("nic.tx_frames");
        reg.set(g, self.tx_frames as f64);
        for (ring, r) in self.tx_rings.iter().enumerate() {
            let g = reg.gauge(&dcn_obs::registry::labeled(
                "nic.tx_ring_pending",
                &[("ring", ring as u64)],
            ));
            reg.set(g, r.pending_len() as f64);
        }
    }
}

/// Rewrite the IPv4 total-length field (and header checksum) for a
/// frame carrying `payload_len` L4 payload bytes past the TCP header
/// (standard 14-byte Ethernet + 20-byte IP framing).
fn patch_ip_len(headers: &mut [u8], payload_len: u64) {
    if headers.len() < 14 + 20 {
        return;
    }
    let l4_len = headers.len() as u64 - 14 - 20 + payload_len;
    let total = (20 + l4_len) as u16;
    headers[16..18].copy_from_slice(&total.to_be_bytes());
    headers[24..26].copy_from_slice(&[0, 0]);
    let csum = dcn_packet::internet_checksum(0, &headers[14..34]);
    headers[24..26].copy_from_slice(&csum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rings::TxDescriptor;
    use dcn_mem::{CostParams, LlcConfig, PhysAlloc};

    fn mem() -> (MemSystem, HostMem, PhysAlloc) {
        (
            MemSystem::new(
                LlcConfig::xeon_e5_2667v3(),
                CostParams::default(),
                Nanos::from_millis(1),
            ),
            HostMem::new(),
            PhysAlloc::new(),
        )
    }

    fn data_desc(payload: SgList, mss: Option<u16>, seq: u32, token: u64) -> TxDescriptor {
        let mut headers = vec![0u8; 54];
        headers[38..42].copy_from_slice(&seq.to_be_bytes()); // 14+20+4
        TxDescriptor {
            headers,
            payload,
            tso_mss: mss,
            completion: token,
            tcp_seq_off: 38,
        }
    }

    #[test]
    fn tso_segments_and_patches_seq() {
        let (mut m, mut h, mut pa) = mem();
        let mut nic = Nic::new(NicConfig::default());
        let buf = pa.alloc(16384);
        h.fill_region(buf, |b| {
            b.iter_mut().enumerate().for_each(|(i, x)| *x = i as u8)
        });
        let desc = data_desc(SgList::from_region(buf), Some(1448), 1000, 7);
        nic.tx_rings[0].push(desc);
        let bursts = nic.tx_drain(0, Nanos::ZERO, &mut m, &h);
        assert_eq!(bursts.len(), 1);
        let frames = &bursts[0].frames;
        assert_eq!(frames.len(), 12); // ceil(16384/1448)
                                      // Sequence numbers advance by payload length.
        let seq_of = |f: &WireFrame| u32::from_be_bytes(f.headers[38..42].try_into().unwrap());
        assert_eq!(seq_of(&frames[0]), 1000);
        assert_eq!(seq_of(&frames[1]), 1000 + 1448);
        assert_eq!(seq_of(&frames[11]), 1000 + 11 * 1448);
        // Reassembled payload equals the buffer contents.
        let mut reassembled = Vec::new();
        for f in frames {
            let PayloadBytes::Real(b) = &f.payload else {
                panic!("full fidelity")
            };
            reassembled.extend_from_slice(b);
        }
        assert_eq!(reassembled, h.read_region(buf));
    }

    #[test]
    fn serialization_takes_line_rate_time() {
        let (mut m, h, mut pa) = mem();
        let mut nic = Nic::new(NicConfig {
            fidelity: Fidelity::Modeled,
            ..NicConfig::default()
        });
        let buf = pa.alloc(16384);
        let desc = data_desc(SgList::from_region(buf), Some(1448), 0, 1);
        nic.tx_rings[0].push(desc);
        let bursts = nic.tx_drain(0, Nanos::ZERO, &mut m, &h);
        let d = bursts[0].departed;
        // 16384B + 12*(54+24) overhead ≈ 17320B at 40Gb/s ≈ 3.46us.
        let us = d.as_micros_f64();
        assert!((3.0..4.5).contains(&us), "departure {us}us");
        // Next burst on the same port waits for the port: draining
        // while it is busy yields nothing (the descriptor stays
        // queued; poll_at says when to retry)...
        let buf2 = pa.alloc(16384);
        nic.tx_rings[0].push(data_desc(SgList::from_region(buf2), Some(1448), 0, 2));
        assert!(nic.tx_drain(0, Nanos::ZERO, &mut m, &h).is_empty());
        assert_eq!(nic.poll_at(), Some(d));
        // ...and draining at the port-free instant transmits it.
        let b2 = nic.tx_drain(0, d, &mut m, &h);
        assert!(b2[0].departed > d);
        assert_eq!(nic.poll_at(), None);
    }

    #[test]
    fn rings_map_to_ports_round_robin() {
        let nic = Nic::new(NicConfig::default());
        assert_eq!(nic.port_of_ring(0), 0);
        assert_eq!(nic.port_of_ring(1), 1);
        assert_eq!(nic.port_of_ring(2), 0);
        assert_eq!(nic.port_of_ring(3), 1);
    }

    #[test]
    fn ports_serialize_independently() {
        let (mut m, h, mut pa) = mem();
        let mut nic = Nic::new(NicConfig {
            fidelity: Fidelity::Modeled,
            ..NicConfig::default()
        });
        let b0 = pa.alloc(16384);
        let b1 = pa.alloc(16384);
        nic.tx_rings[0].push(data_desc(SgList::from_region(b0), Some(1448), 0, 1));
        nic.tx_rings[1].push(data_desc(SgList::from_region(b1), Some(1448), 0, 2));
        let d0 = nic.tx_drain(0, Nanos::ZERO, &mut m, &h)[0].departed;
        let d1 = nic.tx_drain(1, Nanos::ZERO, &mut m, &h)[0].departed;
        assert_eq!(
            d0, d1,
            "different ports do not serialize against each other"
        );
    }

    #[test]
    fn non_tso_descriptor_is_single_frame() {
        let (mut m, h, _pa) = mem();
        let mut nic = Nic::new(NicConfig::default());
        let desc = TxDescriptor {
            headers: vec![0; 54],
            payload: SgList::from_bytes(vec![9; 100]),
            tso_mss: None,
            completion: 0,
            tcp_seq_off: usize::MAX,
        };
        nic.tx_rings[0].push(desc);
        let bursts = nic.tx_drain(0, Nanos::ZERO, &mut m, &h);
        assert_eq!(bursts[0].frames.len(), 1);
        assert_eq!(bursts[0].frames[0].payload.len(), 100);
    }

    #[test]
    fn tx_dma_counts_against_cache_model() {
        let (mut m, h, mut pa) = mem();
        let mut nic = Nic::new(NicConfig {
            fidelity: Fidelity::Modeled,
            ..NicConfig::default()
        });
        let buf = pa.alloc(16384);
        // Buffer NOT in LLC → NIC DMA reads from DRAM.
        nic.tx_rings[0].push(data_desc(SgList::from_region(buf), Some(1448), 0, 1));
        nic.tx_drain(0, Nanos::ZERO, &mut m, &h);
        assert_eq!(m.counters.totals().dram_read_bytes, 16384);
    }
}
