//! netmap-semantics TX/RX rings.
//!
//! Ownership of ring slots alternates between host and NIC exactly as
//! in netmap: the host fills TX slots and calls `txsync` (a syscall)
//! to hand them to hardware; it calls `rxsync` to harvest received
//! frames and return RX slots. Completion reporting on TX is
//! **lazy**: the host only learns that the NIC finished a slot (so
//! its buffer can be recycled) at a later sync, and the NIC updates
//! its completed-count in batches — the behaviour §4.1 identifies as
//! the source of Atlas's extra memory writes ("netmap does not
//! provide timely enough TX completion notifications to allow
//! buffers to be immediately reused").

use crate::sg::SgList;
use dcn_simcore::Nanos;
use std::collections::VecDeque;

/// What the stack puts in a TX slot.
#[derive(Clone, Debug)]
pub struct TxDescriptor {
    /// Ethernet+IP+TCP header template (real bytes, checksummed by
    /// the NIC when TSO is used).
    pub headers: Vec<u8>,
    /// Payload scatter-gather list (may be empty for pure ACKs).
    pub payload: SgList,
    /// When set, the NIC segments the payload into MSS-sized wire
    /// frames, adjusting sequence numbers per frame (TSO).
    pub tso_mss: Option<u16>,
    /// Opaque token reported back on completion (Atlas: the diskmap
    /// buffer to recycle; 0 = nothing to report).
    pub completion: u64,
    /// Offset of the TCP sequence-number field within `headers`
    /// (TSO needs to patch it per segment); `usize::MAX` if none.
    pub tcp_seq_off: usize,
}

/// A TX ring: queue of descriptors handed to the NIC plus the lazy
/// completion pipeline.
pub struct TxRing {
    pub(crate) slots: usize,
    /// Handed to NIC, not yet transmitted.
    pub(crate) pending: VecDeque<TxDescriptor>,
    /// Transmitted by the NIC but not yet *reported* to the host.
    pub(crate) done_unreported: Vec<u64>,
    /// Reported tokens waiting for the host to collect at next sync.
    pub(crate) reported: Vec<u64>,
    /// NIC reports completions only in batches of this many (netmap's
    /// interrupt-moderated completion behaviour).
    pub(crate) report_batch: usize,
    /// In-flight count (pending + transmitted-but-unreported).
    inflight: usize,
}

impl TxRing {
    #[must_use]
    pub fn new(slots: usize, report_batch: usize) -> Self {
        TxRing {
            slots,
            pending: VecDeque::new(),
            done_unreported: Vec::new(),
            reported: Vec::new(),
            report_batch: report_batch.max(1),
            inflight: 0,
        }
    }

    /// Free TX slots (descriptors the host may still enqueue).
    #[must_use]
    pub fn space(&self) -> usize {
        self.slots - self.inflight
    }

    /// Host: place a descriptor in the ring. Returns false when full
    /// — the stack must back off (and this backpressure is what
    /// couples the TCP loop to the NIC).
    pub fn push(&mut self, desc: TxDescriptor) -> bool {
        if self.inflight >= self.slots {
            return false;
        }
        self.inflight += 1;
        self.pending.push_back(desc);
        true
    }

    /// NIC: take the next descriptor to transmit.
    pub(crate) fn nic_take(&mut self) -> Option<TxDescriptor> {
        self.pending.pop_front()
    }

    /// NIC: mark a descriptor transmitted; its completion token joins
    /// the unreported set and is published in batches.
    pub(crate) fn nic_done(&mut self, token: u64) {
        self.done_unreported.push(token);
        if self.done_unreported.len() >= self.report_batch {
            self.publish();
        }
    }

    fn publish(&mut self) {
        let n = self.done_unreported.len();
        self.reported.append(&mut self.done_unreported);
        self.inflight -= n;
    }

    /// Host `txsync`: collect completion tokens published so far.
    /// (The enqueue side of txsync is `push` + the NIC advancing.)
    pub fn txsync_collect(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.reported)
    }

    /// Force-publish everything transmitted (used by an explicit
    /// "timely completion" ablation, and at quiesce points).
    pub fn flush_completions(&mut self) {
        self.publish();
    }

    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Descriptors handed to the NIC and not yet transmitted.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Nonzero completion tokens the stack has not yet collected via
    /// `txsync_collect`: still queued for transmit, transmitted but
    /// unreported (lazy batching), or reported but uncollected. The
    /// buffer-pool leak audit counts these as legitimately held.
    #[must_use]
    pub fn unreclaimed_tokens(&self) -> u64 {
        (self.pending.iter().filter(|d| d.completion != 0).count()
            + self.done_unreported.iter().filter(|t| **t != 0).count()
            + self.reported.iter().filter(|t| **t != 0).count()) as u64
    }
}

/// A received frame as seen by the host after `rxsync`.
#[derive(Clone, Debug)]
pub struct RxFrame {
    pub at: Nanos,
    pub frame: crate::wire::WireFrame,
}

/// An RX ring: frames DMA'd by the NIC await `rxsync`.
pub struct RxRing {
    pub(crate) slots: usize,
    pub(crate) queued: VecDeque<RxFrame>,
    /// Frames dropped because the ring was full (host too slow).
    pub drops: u64,
}

impl RxRing {
    #[must_use]
    pub fn new(slots: usize) -> Self {
        RxRing {
            slots,
            queued: VecDeque::new(),
            drops: 0,
        }
    }

    pub(crate) fn nic_deliver(&mut self, f: RxFrame) {
        if self.queued.len() >= self.slots {
            self.drops += 1;
            return;
        }
        self.queued.push_back(f);
    }

    /// Host `rxsync`: harvest up to `max` frames.
    pub fn rxsync(&mut self, max: usize) -> Vec<RxFrame> {
        let n = max.min(self.queued.len());
        self.queued.drain(..n).collect()
    }

    #[must_use]
    pub fn pending(&self) -> usize {
        self.queued.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(token: u64) -> TxDescriptor {
        TxDescriptor {
            headers: vec![0; 54],
            payload: SgList::empty(),
            tso_mss: None,
            completion: token,
            tcp_seq_off: usize::MAX,
        }
    }

    #[test]
    fn tx_ring_backpressure() {
        let mut r = TxRing::new(2, 1);
        assert!(r.push(desc(1)));
        assert!(r.push(desc(2)));
        assert!(!r.push(desc(3)), "full ring rejects");
        // NIC sends one; with batch=1 it is immediately reported.
        let d = r.nic_take().unwrap();
        r.nic_done(d.completion);
        assert_eq!(r.space(), 1);
        assert!(r.push(desc(3)));
        assert_eq!(r.txsync_collect(), vec![1]);
    }

    #[test]
    fn lazy_completion_reporting_batches() {
        let mut r = TxRing::new(64, 4);
        for i in 0..6 {
            r.push(desc(i));
        }
        for _ in 0..3 {
            let d = r.nic_take().unwrap();
            r.nic_done(d.completion);
        }
        // Three done but below the batch: nothing visible, slots not
        // reclaimed.
        assert!(r.txsync_collect().is_empty());
        assert_eq!(r.space(), 64 - 6);
        let d = r.nic_take().unwrap();
        r.nic_done(d.completion);
        // Batch of 4 reached: all four published.
        assert_eq!(r.txsync_collect(), vec![0, 1, 2, 3]);
        assert_eq!(r.space(), 64 - 2);
    }

    #[test]
    fn flush_publishes_partial_batch() {
        let mut r = TxRing::new(8, 100);
        r.push(desc(7));
        let d = r.nic_take().unwrap();
        r.nic_done(d.completion);
        assert!(r.txsync_collect().is_empty());
        r.flush_completions();
        assert_eq!(r.txsync_collect(), vec![7]);
    }

    #[test]
    fn rx_ring_drops_when_full() {
        let mut r = RxRing::new(2);
        let mk = || RxFrame {
            at: Nanos::ZERO,
            frame: crate::wire::WireFrame::single(vec![0; 54], crate::sg::PayloadBytes::Virtual(0)),
        };
        r.nic_deliver(mk());
        r.nic_deliver(mk());
        r.nic_deliver(mk());
        assert_eq!(r.drops, 1);
        assert_eq!(r.rxsync(10).len(), 2);
        assert_eq!(r.pending(), 0);
    }
}
