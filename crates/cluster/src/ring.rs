//! Consistent-hash ring: `FileId` → owning server(s).
//!
//! Classic Karger-style ring with virtual nodes: every server
//! contributes `vnodes` points at `mix(server ⊕ salt·vnode)`; a file
//! hashes to a point and walks clockwise to the first vnode, whose
//! server owns it. Replicas are the next *distinct* servers along the
//! ring, so the replica set of a hot file is stable under unrelated
//! membership changes — the property that makes failover cheap: when
//! one server dies, only the files it owned move, and they move to
//! servers that (for the hot set) already carry a replica.

use dcn_store::FileId;

/// SplitMix64 finalizer — the same mixer `dcn-simcore`'s PRF family
/// builds on; good avalanche, no allocation, no external deps.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The ring. Immutable after construction — liveness is the
/// dispatcher's concern, placement is the ring's.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// (point, server), sorted by point.
    points: Vec<(u64, u32)>,
    n_servers: usize,
}

impl HashRing {
    /// `vnodes` virtual nodes per server (≥1; 64 gives a ±few-percent
    /// balanced split for small clusters).
    #[must_use]
    pub fn new(n_servers: usize, vnodes: usize) -> Self {
        assert!(n_servers > 0, "ring needs at least one server");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(n_servers * vnodes);
        for s in 0..n_servers as u32 {
            for v in 0..vnodes as u64 {
                points.push((
                    mix64(u64::from(s) ^ v.wrapping_mul(0xA5A5_0001_C0FE_E000)),
                    s,
                ));
            }
        }
        points.sort_unstable();
        HashRing { points, n_servers }
    }

    #[must_use]
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    fn start_index(&self, file: FileId) -> usize {
        let h = mix64(file.0 ^ 0xD15C_C89F_7A11_0C0D);
        match self.points.binary_search_by(|&(p, _)| p.cmp(&h)) {
            Ok(i) | Err(i) => i % self.points.len(),
        }
    }

    /// The first `k` *distinct* servers clockwise from the file's
    /// point: `owners(f, 1)[0]` is the primary, the rest are replicas
    /// in preference order. `k` is clamped to the cluster size.
    #[must_use]
    pub fn owners(&self, file: FileId, k: usize) -> Vec<u32> {
        let k = k.clamp(1, self.n_servers);
        let mut out = Vec::with_capacity(k);
        let start = self.start_index(file);
        for off in 0..self.points.len() {
            let s = self.points[(start + off) % self.points.len()].1;
            if !out.contains(&s) {
                out.push(s);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// The primary owner.
    #[must_use]
    pub fn primary(&self, file: FileId) -> u32 {
        self.owners(file, 1)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_are_distinct_and_clamped() {
        let ring = HashRing::new(4, 64);
        for f in 0..200 {
            let o = ring.owners(FileId(f), 3);
            assert_eq!(o.len(), 3);
            let mut d = o.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3, "distinct owners for file {f}");
            // k beyond cluster size clamps.
            assert_eq!(ring.owners(FileId(f), 10).len(), 4);
        }
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0u64; 4];
        for f in 0..40_000 {
            counts[ring.primary(FileId(f)) as usize] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        // Virtual nodes keep the split within ~2x even for a tiny
        // cluster; in practice it is much tighter.
        assert!(
            max < 2 * min,
            "imbalanced primaries: {counts:?} (min {min}, max {max})"
        );
    }

    #[test]
    fn replica_sets_are_stable_across_cluster_growth() {
        // Growing the cluster must not reshuffle everything: most
        // files keep their primary when a server is added (the
        // consistent-hashing property; naive `hash % n` moves ~all).
        let small = HashRing::new(4, 64);
        let big = HashRing::new(5, 64);
        let total = 20_000u64;
        let moved = (0..total)
            .filter(|&f| small.primary(FileId(f)) != big.primary(FileId(f)))
            .count() as f64;
        let frac = moved / total as f64;
        assert!(
            frac < 0.40,
            "adding one server moved {:.0}% of primaries",
            frac * 100.0
        );
    }

    #[test]
    fn single_server_ring_owns_everything() {
        let ring = HashRing::new(1, 8);
        for f in 0..50 {
            assert_eq!(ring.owners(FileId(f), 2), vec![0]);
        }
    }
}
