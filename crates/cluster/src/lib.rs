//! # dcn-cluster — scale-out Atlas
//!
//! Runs N independent [`dcn_atlas::AtlasServer`] instances in one
//! virtual-time simulation behind a content-aware dispatcher:
//!
//! * [`ring`] — consistent-hash placement (`FileId` → owners) with
//!   virtual nodes, so membership changes move a minimal file set.
//! * [`dispatcher`] — health-aware routing: hot files carry
//!   `replication` owners, cold files one; requests prefer the
//!   primary, fail over to replicas, and overflow past the owner set
//!   when everything it names is down.
//! * [`sim`] — the event loop: the single-server §4 testbed
//!   generalized to N servers plus a fail-stop kill/drain/detect
//!   control loop. Interrupted transfers reconnect to a replica and
//!   resume with HTTP range requests; stream verification carries
//!   across the reconnect at absolute file offsets.
//!
//! See DESIGN.md §9 for the model and its deliberate simplifications.

pub mod dispatcher;
pub mod ring;
pub mod sim;

pub use dispatcher::{Dispatcher, Health};
pub use ring::HashRing;
pub use sim::{
    run_cluster, run_cluster_observed, ClusterConfig, ClusterMetrics, RecoveryStats, ServerStats,
};
