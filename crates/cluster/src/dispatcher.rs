//! The content-aware dispatcher: routes each request to a server by
//! consistent hashing, with hot-set replication and health-aware
//! failover.
//!
//! Cold files (the long tail) live on exactly one owner — replicating
//! the whole catalog would defeat the per-server disk capacity that
//! motivates sharding in the first place. The hot set (`FileId <
//! hot_files`, matching the fleet's cacheable workload) gets
//! `replication` owners, so when a server dies the popular bytes are
//! already on a replica and clients resume immediately; cold files
//! fall through to the next server on the ring (every server is built
//! from the same `Catalog`, so the fallback serves correct content —
//! in deployment terms, it fetches from origin).

use crate::ring::HashRing;
use dcn_store::FileId;

/// Dispatcher's view of one server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    Healthy,
    /// Finishing in-flight work, taking no new requests.
    Draining,
    Down,
}

/// Routing policy + health table.
#[derive(Debug)]
pub struct Dispatcher {
    ring: HashRing,
    health: Vec<Health>,
    /// Owners for hot files (≥1; ≥2 gives kill-tolerance).
    replication: usize,
    /// `FileId < hot_files` is the replicated hot set.
    hot_files: u64,
    /// Requests routed to a non-primary owner (health fallback).
    pub fallback_routes: u64,
    /// Requests that left the owner set entirely (cold file, owner
    /// down → next live server on the ring).
    pub overflow_routes: u64,
    pub routed: u64,
}

impl Dispatcher {
    #[must_use]
    pub fn new(n_servers: usize, vnodes: usize, replication: usize, hot_files: u64) -> Self {
        Dispatcher {
            ring: HashRing::new(n_servers, vnodes),
            health: vec![Health::Healthy; n_servers],
            replication: replication.max(1),
            hot_files,
            fallback_routes: 0,
            overflow_routes: 0,
            routed: 0,
        }
    }

    #[must_use]
    pub fn n_servers(&self) -> usize {
        self.ring.n_servers()
    }

    #[must_use]
    pub fn health(&self, server: usize) -> Health {
        self.health[server]
    }

    pub fn set_health(&mut self, server: usize, h: Health) {
        self.health[server] = h;
    }

    #[must_use]
    pub fn n_live(&self) -> usize {
        self.health
            .iter()
            .filter(|h| matches!(h, Health::Healthy))
            .count()
    }

    /// The replica set a file *should* live on (ignores health).
    #[must_use]
    pub fn owners(&self, file: FileId) -> Vec<u32> {
        let k = if file.0 < self.hot_files {
            self.replication
        } else {
            1
        };
        self.ring.owners(file, k)
    }

    /// Pick the serving server for `file`, or `None` if every server
    /// is down/draining. Preference order: healthy owners (primary
    /// first), then any healthy server walking the ring past the
    /// owner set.
    pub fn route(&mut self, file: FileId) -> Option<usize> {
        let owners = self.owners(file);
        for (i, &s) in owners.iter().enumerate() {
            if self.health[s as usize] == Health::Healthy {
                self.routed += 1;
                if i > 0 {
                    self.fallback_routes += 1;
                }
                return Some(s as usize);
            }
        }
        // Owner set entirely unavailable: walk the whole ring.
        for &s in &self.ring.owners(file, self.ring.n_servers()) {
            if self.health[s as usize] == Health::Healthy {
                self.routed += 1;
                self.overflow_routes += 1;
                return Some(s as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_to_primary_when_healthy() {
        let mut d = Dispatcher::new(4, 64, 2, 100);
        for f in 0..50 {
            let owners = d.owners(FileId(f));
            assert_eq!(d.route(FileId(f)), Some(owners[0] as usize));
        }
        assert_eq!(d.fallback_routes, 0);
    }

    #[test]
    fn hot_files_fail_over_to_replica() {
        let mut d = Dispatcher::new(4, 64, 2, 1_000);
        let f = FileId(7); // hot: two owners
        let owners = d.owners(f);
        assert_eq!(owners.len(), 2);
        d.set_health(owners[0] as usize, Health::Down);
        assert_eq!(d.route(f), Some(owners[1] as usize));
        assert_eq!(d.fallback_routes, 1);
        assert_eq!(d.overflow_routes, 0);
    }

    #[test]
    fn cold_files_overflow_past_dead_owner() {
        let mut d = Dispatcher::new(4, 64, 2, 0); // nothing hot
        let f = FileId(7);
        let owners = d.owners(f);
        assert_eq!(owners.len(), 1, "cold file: single owner");
        d.set_health(owners[0] as usize, Health::Down);
        let s = d.route(f).expect("another server serves it");
        assert_ne!(s, owners[0] as usize);
        assert_eq!(d.overflow_routes, 1);
    }

    #[test]
    fn draining_server_gets_no_new_requests() {
        let mut d = Dispatcher::new(2, 64, 1, 0);
        d.set_health(0, Health::Draining);
        d.set_health(1, Health::Healthy);
        for f in 0..40 {
            assert_eq!(d.route(FileId(f)), Some(1));
        }
    }

    #[test]
    fn all_down_routes_nowhere() {
        let mut d = Dispatcher::new(2, 64, 1, 0);
        d.set_health(0, Health::Down);
        d.set_health(1, Health::Down);
        assert_eq!(d.route(FileId(1)), None);
    }
}
