//! N Atlas servers, one virtual-time simulation.
//!
//! The topology generalizes `dcn-workload`'s single-server testbed:
//! every server sits behind the same cut-through switch; the delay
//! middlebox stays on the client→server path only. The dispatcher is
//! *control-plane only* — it picks which server a request goes to
//! (the way a CDN's request router or DNS steering does), and the
//! client then talks TCP to that server directly, so the data path is
//! byte-identical to the single-server runs.
//!
//! Failure handling is fail-stop with delayed detection: a killed
//! server's frames (in both directions) vanish, and `detect_delay`
//! later the control loop marks it down, severs its client
//! connections, and re-dispatches every interrupted transfer to a
//! replica with a `Range: bytes=N-` resume.

use crate::dispatcher::{Dispatcher, Health};
use dcn_atlas::server::parse_frame;
use dcn_atlas::{AtlasConfig, AtlasServer};
use dcn_faults::{salt, FaultConfig, FrameFate, FrameInfo, LinkFaults};
use dcn_mem::Fidelity;
use dcn_netdev::{tcp_frame_info, DelayMiddlebox, SentBurst, WireFrame};
use dcn_obs::export::{chunk_to_json, stage_summary, TimeSeries};
use dcn_packet::{FlowId, Ipv4Addr, MacAddr};
use dcn_simcore::{EventQueue, Nanos};
use dcn_store::Catalog;
use dcn_tcpstack::Endpoint;
use dcn_workload::fleet::{AbrReadout, ClientTx, FleetConfig};
use dcn_workload::runner::{ObsOptions, ObsReport};
use dcn_workload::{MultiFleet, NeedStep, RequestNeed};
use std::collections::HashMap;
use std::io::Write as _;

/// Switch forwarding latency (same switch as the single-server
/// testbed).
const SWITCH_LATENCY: Nanos = Nanos(2_000);

/// One cluster experiment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    pub n_servers: usize,
    /// Per-server Atlas configuration (the endpoint is overridden per
    /// server: server *i* listens on 10.0.0.(i+1):80).
    pub atlas: AtlasConfig,
    /// Client workload. `hot_files` doubles as the dispatcher's
    /// replicated hot set, so the cacheable workload's popular files
    /// are exactly the ones with standby replicas.
    pub fleet: FleetConfig,
    pub catalog: Catalog,
    /// Owners per hot file (≥2 ⇒ kill-tolerant hot set).
    pub replication: usize,
    /// Virtual nodes per server on the hash ring.
    pub vnodes: usize,
    pub warmup: Nanos,
    pub duration: Nanos,
    pub seed: u64,
    /// Fault schedule; `faults.cluster` drives server kill/drain.
    pub faults: FaultConfig,
    /// Control-loop failure-detection latency (kill → mark-down +
    /// re-dispatch).
    pub detect_delay: Nanos,
    /// Client-path middlebox delay band `[min, max]` (7 bands). The
    /// paper's WAN testbed is 10–40 ms; scale-out experiments model
    /// an edge pod with clients a few ms away, where per-server
    /// capacity (not client round trips) is the bottleneck.
    pub client_delay: (Nanos, Nanos),
}

impl ClusterConfig {
    /// Test-sized cluster: full fidelity, verification on.
    #[must_use]
    pub fn smoke(n_servers: usize, n_clients: usize, seed: u64) -> ClusterConfig {
        ClusterConfig {
            n_servers,
            atlas: AtlasConfig::default(),
            fleet: FleetConfig {
                n_clients,
                ..FleetConfig::default()
            },
            catalog: Catalog::new(50_000, 300 * 1024, 4, seed),
            replication: 2,
            vnodes: 64,
            warmup: Nanos::from_millis(250),
            duration: Nanos::from_millis(700),
            seed,
            faults: FaultConfig::default(),
            detect_delay: Nanos::from_millis(30),
            client_delay: (Nanos::from_millis(10), Nanos::from_millis(40)),
        }
    }

    /// Server *i*'s endpoint: 10.0.0.(i+1):80.
    #[must_use]
    pub fn endpoints(n_servers: usize) -> Vec<Endpoint> {
        (0..n_servers)
            .map(|i| Endpoint {
                mac: MacAddr::from_host_id(i as u32 + 1),
                ip: Ipv4Addr::new(10, 0, 0, i as u8 + 1),
                port: 80,
            })
            .collect()
    }
}

/// Per-server readout.
#[derive(Clone, Debug)]
pub struct ServerStats {
    pub server: usize,
    pub alive: bool,
    pub responses: u64,
    pub http_payload_bytes: u64,
    pub disk_read_bytes: u64,
    pub cpu_pct: f64,
    pub leaked_buffers: i64,
    /// Tier hot-hit ratio; 1.0 when this server ran without a tier
    /// engine (no `tier.*` metrics registered).
    pub tier_hit_ratio: f64,
    /// Bytes this server pulled from the cold object store.
    pub tier_cold_bytes: u64,
}

/// Goodput before the kill vs after the control loop re-converged.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryStats {
    pub kill_at: Nanos,
    pub detect_at: Nanos,
    /// Aggregate goodput over [warmup, kill).
    pub pre_kill_gbps: f64,
    /// Aggregate goodput over [detect + settle, end) — the
    /// re-converged steady state on the surviving servers.
    pub post_recovery_gbps: f64,
}

/// Everything a cluster run reports.
#[derive(Clone, Debug)]
pub struct ClusterMetrics {
    pub label: String,
    pub n_servers: usize,
    /// Aggregate client goodput over [warmup, end).
    pub net_gbps: f64,
    pub responses: u64,
    pub total_body_bytes: u64,
    pub verified_bytes: u64,
    pub verify_failures: u64,
    pub live_fraction: f64,
    /// Clients re-dispatched after a server failure.
    pub failovers: u64,
    /// Failovers that resumed mid-body via a range request.
    pub resumed_responses: u64,
    /// Plaintext bytes the resumes did not re-download.
    pub resumed_bytes_saved: u64,
    /// Requests served by a non-primary owner.
    pub fallback_routes: u64,
    /// Requests that left the owner set entirely.
    pub overflow_routes: u64,
    /// Requests with no live server at all (clients go idle).
    pub unroutable: u64,
    pub per_server: Vec<ServerStats>,
    /// Present when a kill was scheduled inside the run window.
    pub recovery: Option<RecoveryStats>,
    /// ABR readout (QoE + decision trace), present when the fleet ran
    /// in adaptive mode.
    pub abr: Option<AbrReadout>,
}

enum Ev {
    /// Ramp-up: spawn client `idx` and issue its first request.
    Spawn(usize),
    /// Frames arrive at server `s`.
    ServerRx(usize, Vec<WireFrame>),
    /// A burst arrives at the clients for `flow` (server→client
    /// direction).
    ClientRx(FlowId, Vec<WireFrame>),
    /// Server `s` internal wake (disk completion / TCP timer).
    ServerWake(usize),
    /// Fail-stop: server `s` goes dark (frames black-holed).
    Kill(usize),
    /// Operator drain: `s` takes no new requests, finishes in-flight.
    Drain(usize),
    /// Control loop notices `s` is gone: mark down, sever, re-route.
    Detect(usize),
    /// Client `c`'s ABR playout buffer drained to the resume level:
    /// draw its next need and dispatch it.
    AbrWake(usize),
}

/// Run a cluster scenario and report metrics.
pub fn run_cluster(sc: &ClusterConfig) -> ClusterMetrics {
    run_cluster_observed(sc, &ObsOptions::disabled()).0
}

/// Run with observability: per-server metrics sampled into one CSV
/// (metric names prefixed `s0.`, `s1.`, …, plus `cluster.*`
/// aggregates) and all servers' chunk traces concatenated into one
/// JSONL.
pub fn run_cluster_observed(sc: &ClusterConfig, obs: &ObsOptions) -> (ClusterMetrics, ObsReport) {
    assert!(sc.n_servers > 0, "cluster needs at least one server");
    let endpoints = ClusterConfig::endpoints(sc.n_servers);
    let ip_to_server: HashMap<Ipv4Addr, usize> = endpoints
        .iter()
        .enumerate()
        .map(|(i, e)| (e.ip, i))
        .collect();

    let fcfg = sc.faults;
    if let Some(k) = fcfg.cluster.kill {
        assert!(
            (k.server as usize) < sc.n_servers,
            "kill targets server {} of {}",
            k.server,
            sc.n_servers
        );
    }
    let mut servers: Vec<AtlasServer> = (0..sc.n_servers)
        .map(|i| {
            let mut cfg = sc.atlas.clone();
            cfg.server_endpoint = endpoints[i];
            if obs.trace_out.is_some() {
                cfg.trace = true;
            }
            // Distinct seed per server: independent NVMe timings,
            // firmware jitter, fault schedules.
            let seed = sc.seed ^ ((i as u64 + 1) << 48);
            let mut srv = AtlasServer::new(cfg, sc.catalog.clone(), seed);
            srv.inject_faults(&fcfg, seed);
            srv
        })
        .collect();

    let mut fleet_cfg = sc.fleet;
    if !matches!(sc.atlas.fidelity, Fidelity::Full) {
        fleet_cfg.verify = false; // nothing real to verify
    }
    let mut fleet = MultiFleet::new(fleet_cfg, sc.catalog.clone(), endpoints);
    let mut dispatcher =
        Dispatcher::new(sc.n_servers, sc.vnodes, sc.replication, sc.fleet.hot_files);
    let middlebox = DelayMiddlebox::new(sc.client_delay.0, sc.client_delay.1, 7, sc.seed);
    let mut link = LinkFaults::new(fcfg.net, sc.seed);
    let mut stall_rng = dcn_faults::rng_for(sc.seed, salt::CLIENT);
    let mut stalled_until: HashMap<FlowId, Nanos> = HashMap::new();
    let mut client_stalls: u64 = 0;
    let mut unroutable: u64 = 0;

    let mut q: EventQueue<Ev> = EventQueue::new();
    let ramp = sc.warmup.min(Nanos::from_millis(150));
    for idx in 0..sc.fleet.n_clients {
        let at = ramp.mul_f64(idx as f64 / sc.fleet.n_clients.max(1) as f64);
        q.schedule(at, Ev::Spawn(idx));
    }
    for s in 0..sc.n_servers {
        q.schedule(Nanos::ZERO, Ev::ServerWake(s));
    }
    // The fault schedule: kill (with delayed detection) and drain.
    let mut kill_times: Option<(Nanos, Nanos)> = None;
    if let Some(k) = fcfg.cluster.kill {
        let detect = k.at + sc.detect_delay;
        q.schedule(k.at, Ev::Kill(k.server as usize));
        q.schedule(detect, Ev::Detect(k.server as usize));
        kill_times = Some((k.at, detect));
    }
    if let Some(d) = fcfg.cluster.drain {
        if (d.server as usize) < sc.n_servers {
            q.schedule(d.at, Ev::Drain(d.server as usize));
        }
    }

    let mut alive = vec![true; sc.n_servers];
    let mut next_wake = vec![Nanos::MAX; sc.n_servers];
    // Admission-control feedback: servers holding their overload
    // latch are marked Draining so the dispatcher routes around them;
    // `shed_marked` remembers which Draining states are ours to undo
    // (operator drains and kill-detection stay authoritative).
    let mut shed_marked = vec![false; sc.n_servers];
    let mut operator_drained = vec![false; sc.n_servers];

    let sample_interval = obs.sample_interval.unwrap_or(Nanos::from_millis(10));
    let mut series = obs.metrics_out.as_ref().map(|_| TimeSeries::new());
    let mut next_sample = sample_interval;

    while let Some(ev) = q.pop() {
        let now = ev.at;
        if now > sc.duration {
            break;
        }
        if let Some(ts) = series.as_mut() {
            while next_sample <= now {
                sample_cluster(
                    ts,
                    next_sample,
                    &mut servers,
                    &alive,
                    &fleet,
                    &dispatcher,
                    &link,
                    client_stalls,
                );
                next_sample += sample_interval;
            }
        }
        // Which server's internal state this event touched (its wake
        // deadline may have moved).
        let mut touched: Option<usize> = None;
        match ev.event {
            Ev::Spawn(idx) => {
                fleet.spawn(idx, sc.seed);
                issue_next_need(
                    &mut q,
                    &middlebox,
                    &ip_to_server,
                    now,
                    &mut fleet,
                    &mut dispatcher,
                    idx,
                    &mut unroutable,
                );
            }
            Ev::ServerRx(s, frames) => {
                if alive[s] {
                    let bursts = servers[s].on_wire_rx(now, frames);
                    route_bursts(&mut q, bursts, &mut link);
                    touched = Some(s);
                }
            }
            Ev::ClientRx(flow, frames) => {
                if fcfg.client.is_active() {
                    let until = stalled_until.get(&flow).copied();
                    if let Some(until) = until.filter(|&u| u > now) {
                        q.schedule(until, Ev::ClientRx(flow, frames));
                        continue;
                    }
                    if stall_rng.chance(fcfg.client.stall_p) {
                        client_stalls += 1;
                        let until = now + fcfg.client.stall;
                        stalled_until.insert(flow, until);
                        q.schedule(until, Ev::ClientRx(flow, frames));
                        continue;
                    }
                }
                if let Some(out) = fleet.on_burst(now, flow, frames) {
                    route_client_tx(&mut q, &middlebox, &ip_to_server, now, out.tx);
                    for _ in 0..out.completed {
                        issue_next_need(
                            &mut q,
                            &middlebox,
                            &ip_to_server,
                            now,
                            &mut fleet,
                            &mut dispatcher,
                            out.client,
                            &mut unroutable,
                        );
                    }
                }
            }
            Ev::ServerWake(s) => {
                if now >= next_wake[s] {
                    next_wake[s] = Nanos::MAX;
                }
                if alive[s] {
                    let bursts = servers[s].advance(now);
                    route_bursts(&mut q, bursts, &mut link);
                    touched = Some(s);
                }
            }
            Ev::Kill(s) => {
                // Fail-stop: the server stops mid-whatever. Frames to
                // and from it are black-holed from this instant; the
                // control loop notices at Detect.
                alive[s] = false;
            }
            Ev::Drain(s) => {
                operator_drained[s] = true;
                dispatcher.set_health(s, Health::Draining);
            }
            Ev::Detect(s) => {
                dispatcher.set_health(s, Health::Down);
                for plan in fleet.fail_server(s) {
                    issue_request(
                        &mut q,
                        &middlebox,
                        &ip_to_server,
                        now,
                        &mut fleet,
                        &mut dispatcher,
                        plan,
                        &mut unroutable,
                    );
                }
            }
            Ev::AbrWake(c) => {
                issue_next_need(
                    &mut q,
                    &middlebox,
                    &ip_to_server,
                    now,
                    &mut fleet,
                    &mut dispatcher,
                    c,
                    &mut unroutable,
                );
            }
        }
        if let Some(s) = touched {
            // Single-pending-wake per server, as in the single-server
            // runner: only schedule if earlier than the pending one.
            if let Some(at) = servers[s].poll_at() {
                let at = at.max(q.now());
                if at < next_wake[s] {
                    q.schedule(at, Ev::ServerWake(s));
                    next_wake[s] = at;
                }
            }
            // A server shedding load is treated like a draining one:
            // no new requests route to it until its latch clears.
            // Operator drains and detected failures are never undone
            // from here.
            let shedding = servers[s].is_shedding();
            if shedding != shed_marked[s] && alive[s] && !operator_drained[s] {
                shed_marked[s] = shedding;
                dispatcher.set_health(
                    s,
                    if shedding {
                        Health::Draining
                    } else {
                        Health::Healthy
                    },
                );
            }
        }
    }

    let end = sc.duration;
    let mut report = ObsReport::default();
    for srv in servers.iter_mut() {
        srv.publish_obs();
    }
    if let Some(ts) = series.as_mut() {
        sample_cluster(
            ts,
            end,
            &mut servers,
            &alive,
            &fleet,
            &dispatcher,
            &link,
            client_stalls,
        );
    }
    if let (Some(path), Some(ts)) = (obs.metrics_out.as_ref(), series.as_ref()) {
        if let Err(e) = ts.write_csv(path) {
            eprintln!(
                "warning: failed to write metrics CSV {}: {e}",
                path.display()
            );
        }
    }
    if let Some(path) = obs.trace_out.as_ref() {
        match write_cluster_traces(path, &servers) {
            Ok(n) => report.traced_chunks = n,
            Err(e) => eprintln!(
                "warning: failed to write trace JSONL {}: {e}",
                path.display()
            ),
        }
        let mut s = String::new();
        for (i, srv) in servers.iter().enumerate() {
            if srv.tracer.finished().is_empty() {
                continue;
            }
            s.push_str(&format!("server {i}:\n"));
            s.push_str(&stage_summary(&srv.tracer));
        }
        report.stage_summary = s;
    }

    let per_server: Vec<ServerStats> = servers
        .iter()
        .enumerate()
        .map(|(i, srv)| ServerStats {
            server: i,
            alive: alive[i],
            responses: srv.reg.sum_prefixed("atlas.responses"),
            http_payload_bytes: srv.reg.sum_prefixed("atlas.http_payload_bytes"),
            disk_read_bytes: srv.reg.sum_prefixed("atlas.disk_read_bytes"),
            cpu_pct: srv.cores.utilization_pct(sc.warmup, end),
            leaked_buffers: srv.leaked_buffers(),
            tier_hit_ratio: srv.reg.find_gauge("tier.hit_ratio").unwrap_or(1.0),
            tier_cold_bytes: srv.reg.sum_prefixed("tier.cold_bytes"),
        })
        .collect();

    let recovery = kill_times
        .filter(|&(kill_at, _)| kill_at > sc.warmup && kill_at < end)
        .map(|(kill_at, detect_at)| {
            // Let TCP and the re-dispatched transfers settle before
            // measuring the recovered steady state.
            let settle = detect_at + Nanos::from_millis(100);
            let post_start = settle.min(end);
            RecoveryStats {
                kill_at,
                detect_at,
                pre_kill_gbps: fleet.goodput.rate_per_sec(sc.warmup, kill_at) * 8.0 / 1e9,
                post_recovery_gbps: fleet.goodput.rate_per_sec(post_start, end) * 8.0 / 1e9,
            }
        });

    let metrics = ClusterMetrics {
        label: format!(
            "cluster x{}{}",
            sc.n_servers,
            if sc.atlas.encrypted { " TLS" } else { "" }
        ),
        n_servers: sc.n_servers,
        net_gbps: fleet.goodput.rate_per_sec(sc.warmup, end) * 8.0 / 1e9,
        responses: fleet.responses_completed,
        total_body_bytes: fleet.total_body_bytes,
        verified_bytes: fleet.verify_stats.verified_bytes,
        verify_failures: fleet.verify_stats.failures,
        live_fraction: fleet.live_fraction(),
        failovers: fleet.failovers,
        resumed_responses: fleet.resumed_responses,
        resumed_bytes_saved: fleet.resumed_bytes_saved,
        fallback_routes: dispatcher.fallback_routes,
        overflow_routes: dispatcher.overflow_routes,
        unroutable,
        per_server,
        recovery,
        abr: fleet.finish_abr(end),
    };
    (metrics, report)
}

/// Draw client `idx`'s next need (ABR-aware) and dispatch it; an
/// on-off pause becomes an `AbrWake` at the session's resume time.
#[allow(clippy::too_many_arguments)]
fn issue_next_need(
    q: &mut EventQueue<Ev>,
    mb: &DelayMiddlebox,
    ip_to_server: &HashMap<Ipv4Addr, usize>,
    now: Nanos,
    fleet: &mut MultiFleet,
    dispatcher: &mut Dispatcher,
    idx: usize,
    unroutable: &mut u64,
) {
    match fleet.next_need_at(idx, now) {
        NeedStep::Need(need) => issue_request(
            q,
            mb,
            ip_to_server,
            now,
            fleet,
            dispatcher,
            need,
            unroutable,
        ),
        NeedStep::PausedUntil(t) => q.schedule(t, Ev::AbrWake(idx)),
    }
}

/// Route a request to the dispatcher's pick; clients with no live
/// server go idle.
#[allow(clippy::too_many_arguments)]
fn issue_request(
    q: &mut EventQueue<Ev>,
    mb: &DelayMiddlebox,
    ip_to_server: &HashMap<Ipv4Addr, usize>,
    now: Nanos,
    fleet: &mut MultiFleet,
    dispatcher: &mut Dispatcher,
    need: RequestNeed,
    unroutable: &mut u64,
) {
    match dispatcher.route(need.file) {
        Some(server) => {
            let tx = fleet.request(need, server);
            route_client_tx(q, mb, ip_to_server, now, tx);
        }
        None => *unroutable += 1,
    }
}

fn route_client_tx(
    q: &mut EventQueue<Ev>,
    mb: &DelayMiddlebox,
    ip_to_server: &HashMap<Ipv4Addr, usize>,
    now: Nanos,
    tx: ClientTx,
) {
    if tx.frames.is_empty() {
        return;
    }
    let Some(&server) = ip_to_server.get(&tx.flow.dst_ip) else {
        return;
    };
    // Client → middlebox (per-flow constant delay) → switch → server.
    // A dead server still "receives" (and drops) the frames — the
    // network doesn't know it died.
    let delay = mb.delay(tx.flow) + SWITCH_LATENCY;
    q.schedule(now + delay, Ev::ServerRx(server, tx.frames));
}

fn route_bursts(q: &mut EventQueue<Ev>, bursts: Vec<SentBurst>, link: &mut LinkFaults) {
    let active = link.is_active();
    for b in bursts {
        // Server → switch → client: LAN latency only. Link faults act
        // on data frames; control frames always get through.
        let frames: Vec<WireFrame> = if active {
            let mut out = Vec::with_capacity(b.frames.len());
            for f in b.frames {
                let info = tcp_frame_info(&f).filter(|i| i.payload_len > 0);
                let Some(i) = info else {
                    out.push(f);
                    continue;
                };
                match link.classify(FrameInfo {
                    flow_key: i.flow_key,
                    seq: i.seq,
                    payload_len: i.payload_len,
                }) {
                    FrameFate::Deliver => out.push(f),
                    FrameFate::Drop | FrameFate::CorruptDrop => {}
                    FrameFate::Duplicate => {
                        out.push(f.clone());
                        out.push(f);
                    }
                    FrameFate::CorruptDeliver => out.push(dcn_workload::runner::corrupt_frame(f)),
                }
            }
            out
        } else {
            b.frames
        };
        if frames.is_empty() {
            continue;
        }
        let Some((flow, _, _)) = parse_frame(&frames[0]) else {
            continue;
        };
        q.schedule(b.departed + SWITCH_LATENCY, Ev::ClientRx(flow, frames));
    }
}

/// One CSV sample: every server's registry under `s{i}.`, plus
/// cluster-level aggregates no single registry carries.
#[allow(clippy::too_many_arguments)]
fn sample_cluster(
    ts: &mut TimeSeries,
    at: Nanos,
    servers: &mut [AtlasServer],
    alive: &[bool],
    fleet: &MultiFleet,
    dispatcher: &Dispatcher,
    link: &LinkFaults,
    client_stalls: u64,
) {
    for (i, srv) in servers.iter_mut().enumerate() {
        if alive[i] {
            srv.publish_obs();
        }
        ts.sample_labeled(at, &srv.reg, &format!("s{i}."));
        ts.push_value(at, &format!("s{i}.alive"), f64::from(u8::from(alive[i])));
    }
    let live = alive.iter().filter(|a| **a).count();
    for (name, v) in [
        ("cluster.live_servers", live as f64),
        ("cluster.responses", fleet.responses_completed as f64),
        ("cluster.body_bytes", fleet.total_body_bytes as f64),
        (
            "cluster.verify_failures",
            fleet.verify_stats.failures as f64,
        ),
        ("cluster.failovers", fleet.failovers as f64),
        ("cluster.resumed_responses", fleet.resumed_responses as f64),
        ("cluster.fallback_routes", dispatcher.fallback_routes as f64),
        ("cluster.overflow_routes", dispatcher.overflow_routes as f64),
        ("cluster.net_dropped", link.dropped as f64),
        ("cluster.net_corrupt_dropped", link.corrupt_dropped as f64),
        ("cluster.client_stalls", client_stalls as f64),
    ] {
        ts.push_value(at, name, v);
    }
}

/// Concatenate every server's finished chunk traces into one JSONL,
/// tagging each line with its server index (chunk and connection ids
/// are per-server and would collide in the merged file).
fn write_cluster_traces(path: &std::path::Path, servers: &[AtlasServer]) -> std::io::Result<usize> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut n = 0;
    for (i, srv) in servers.iter().enumerate() {
        for t in srv.tracer.finished() {
            let json = chunk_to_json(t);
            writeln!(w, "{{\"server\":{i},{}", &json[1..])?;
            n += 1;
        }
    }
    w.flush()?;
    Ok(n)
}
