//! Criterion micro-benchmarks for the hot primitives: AES-GCM
//! sealing, TCP segment processing, NVMe queue operations, the LLC
//! model, and the wire-format codecs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dcn_crypto::{AesGcm128, RecordCipher};
use dcn_mem::{CostParams, LlcConfig, MemSystem, PhysAddr, PhysRegion, CHUNK_SIZE};
use dcn_nvme::{FirmwareParams, NvmeCommand, Opcode};
use dcn_packet::{internet_checksum, SeqNumber, TcpFlags, TcpRepr};
use dcn_simcore::Nanos;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let gcm = AesGcm128::new(b"0123456789abcdef");
    let mut buf = vec![0xA5u8; 16 * 1024];
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("aes128gcm_seal_16k", |b| {
        b.iter(|| gcm.seal_in_place(&[7u8; 12], &[], &mut buf))
    });
    let rc = RecordCipher::new(b"0123456789abcdef", 99);
    g.bench_function("record_seal_16k", |b| {
        b.iter(|| rc.seal_record(0, &mut buf[..16 * 1024]))
    });
    g.finish();
}

fn bench_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet");
    let repr = TcpRepr {
        src_port: 80,
        dst_port: 5555,
        seq: SeqNumber(12345),
        ack: SeqNumber(999),
        flags: TcpFlags::ACK | TcpFlags::PSH,
        window: 4096,
        mss: None,
        wscale: None,
    };
    let mut hdr = vec![0u8; 20];
    repr.emit(&mut hdr, 0x1234, &[]);
    g.bench_function("tcp_parse", |b| b.iter(|| TcpRepr::parse(&hdr, None).unwrap()));
    g.bench_function("tcp_emit", |b| {
        b.iter(|| {
            let mut h = [0u8; 20];
            repr.emit(&mut h, 0x1234, &[]);
            h
        })
    });
    let payload = vec![0x5Au8; 1448];
    g.throughput(Throughput::Bytes(1448));
    g.bench_function("checksum_1448", |b| b.iter(|| internet_checksum(0, &payload)));
    g.finish();
}

fn bench_nvme(c: &mut Criterion) {
    let mut g = c.benchmark_group("nvme");
    g.bench_function("firmware_submit_drain_16k", |b| {
        b.iter_batched(
            || dcn_nvme::firmware::Firmware::new(FirmwareParams::p3700(), 1),
            |mut fw| {
                let cmd = NvmeCommand {
                    opcode: Opcode::Read,
                    cid: 1,
                    nsid: 1,
                    slba: 0,
                    nlb: 32,
                    prp: vec![PhysRegion::new(PhysAddr(4096), 16 * 1024)],
                };
                fw.submit(Nanos::ZERO, 0, 0, &cmd);
                fw.drain_finished(Nanos::from_millis(10))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_llc(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem");
    g.throughput(Throughput::Bytes(16 * 1024));
    g.bench_function("llc_dma_write_read_16k", |b| {
        let mut mem = MemSystem::new(
            LlcConfig::xeon_e5_2667v3(),
            CostParams::default(),
            Nanos::from_millis(1),
        );
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 4) % 100_000;
            let r = PhysRegion::new(PhysAddr(page * CHUNK_SIZE), 16 * 1024);
            mem.dma_write(Nanos::ZERO, dcn_mem::Agent::DiskDma, r);
            mem.dma_read(Nanos::ZERO, dcn_mem::Agent::NicDma, r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_crypto, bench_packet, bench_nvme, bench_llc);
criterion_main!(benches);
