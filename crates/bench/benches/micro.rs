//! Micro-benchmarks for the hot primitives: AES-GCM sealing, TCP
//! wire codecs, NVMe firmware submit/drain, and the LLC model.
//!
//! This is a plain `harness = false` binary (the container builds
//! offline, so no external bench framework): each case is warmed up,
//! then timed over enough iterations to smooth scheduler noise, and
//! reported as ns/iter plus throughput where bytes are meaningful.

use dcn_crypto::{AesGcm128, RecordCipher};
use dcn_mem::{CostParams, LlcConfig, MemSystem, PhysAddr, PhysRegion, CHUNK_SIZE};
use dcn_nvme::{FirmwareParams, NvmeCommand, Opcode};
use dcn_packet::{internet_checksum, SeqNumber, TcpFlags, TcpRepr};
use dcn_simcore::Nanos;
use std::hint::black_box;
use std::time::Instant;

/// Run `f` for ~`target_ms` of wall time and report ns/iter.
fn bench(name: &str, bytes_per_iter: u64, mut f: impl FnMut()) {
    const WARMUP: u32 = 50;
    for _ in 0..WARMUP {
        f();
    }
    // Calibrate: start small, grow until the batch takes >= 20ms.
    let mut iters: u64 = 100;
    let (elapsed, iters) = loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t.elapsed();
        if dt.as_millis() >= 20 || iters >= 100_000_000 {
            break (dt, iters);
        }
        iters *= 4;
    };
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    if bytes_per_iter > 0 {
        let gibps = bytes_per_iter as f64 / ns; // bytes/ns == GB/s
        println!("{name:<34} {ns:>12.1} ns/iter  {gibps:>8.2} GB/s");
    } else {
        println!("{name:<34} {ns:>12.1} ns/iter");
    }
}

fn bench_crypto() {
    let gcm = AesGcm128::new(b"0123456789abcdef");
    let mut buf = vec![0xA5u8; 16 * 1024];
    bench("crypto/aes128gcm_seal_16k", buf.len() as u64, || {
        black_box(gcm.seal_in_place(&[7u8; 12], &[], &mut buf));
    });
    let rc = RecordCipher::new(b"0123456789abcdef", 99);
    bench("crypto/record_seal_16k", 16 * 1024, || {
        black_box(rc.seal_record(0, &mut buf[..16 * 1024]));
    });
}

fn bench_packet() {
    let repr = TcpRepr {
        src_port: 80,
        dst_port: 5555,
        seq: SeqNumber(12345),
        ack: SeqNumber(999),
        flags: TcpFlags::ACK | TcpFlags::PSH,
        window: 4096,
        mss: None,
        wscale: None,
    };
    let mut hdr = vec![0u8; 20];
    repr.emit(&mut hdr, 0x1234, &[]);
    bench("packet/tcp_parse", 0, || {
        black_box(TcpRepr::parse(black_box(&hdr), None).unwrap());
    });
    bench("packet/tcp_emit", 0, || {
        let mut h = [0u8; 20];
        repr.emit(&mut h, 0x1234, &[]);
        black_box(h);
    });
    let payload = vec![0x5Au8; 1448];
    bench("packet/checksum_1448", 1448, || {
        black_box(internet_checksum(0, black_box(&payload)));
    });
}

fn bench_nvme() {
    bench("nvme/firmware_submit_drain_16k", 0, || {
        let mut fw = dcn_nvme::firmware::Firmware::new(FirmwareParams::p3700(), 1);
        let cmd = NvmeCommand {
            opcode: Opcode::Read,
            cid: 1,
            nsid: 1,
            slba: 0,
            nlb: 32,
            prp: vec![PhysRegion::new(PhysAddr(4096), 16 * 1024)],
        };
        fw.submit(Nanos::ZERO, 0, 0, &cmd);
        black_box(fw.drain_finished(Nanos::from_millis(10)));
    });
}

fn bench_llc() {
    let mut mem = MemSystem::new(
        LlcConfig::xeon_e5_2667v3(),
        CostParams::default(),
        Nanos::from_millis(1),
    );
    let mut page = 0u64;
    bench("mem/llc_dma_write_read_16k", 16 * 1024, || {
        page = (page + 4) % 100_000;
        let r = PhysRegion::new(PhysAddr(page * CHUNK_SIZE), 16 * 1024);
        mem.dma_write(Nanos::ZERO, dcn_mem::Agent::DiskDma, r);
        black_box(mem.dma_read(Nanos::ZERO, dcn_mem::Agent::NicDma, r));
    });
}

fn main() {
    println!("{:-<34} {:->12}--------  {:->8}-----", "", "", "");
    bench_crypto();
    bench_packet();
    bench_nvme();
    bench_llc();
}
