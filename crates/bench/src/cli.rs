//! Shared command-line parsing for the figure/ablation binaries.
//!
//! Every `fig*` / `ablation_*` binary takes the same small flag set;
//! before this module each one re-scanned `std::env::args()` with its
//! own copy of the logic (and the ablations hard-coded their seeds).
//! One pass over argv now yields everything:
//!
//! * `--quick` / `--paper` (or env `DCN_QUICK=1`) — sweep scale;
//! * `--seed <n>` — override the binary's default base seed;
//! * `--trace-out <path>` — chunk-lifecycle JSONL dump;
//! * `--metrics-out <path>` — registry time-series CSV;
//! * `--catalog <n>` — catalog size in objects (tiered runs);
//! * `--zipf <theta>` — Zipf popularity skew for the client fleet.

use crate::Scale;
use dcn_workload::ObsOptions;
use std::path::PathBuf;

/// Parsed common flags. Binary-specific flags are left alone: parsing
/// is positional-free and skips anything it does not recognize.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    pub scale: Scale,
    /// `--seed <n>`, if given. Use [`BenchArgs::seed_or`] to fall back
    /// to the binary's documented default.
    pub seed: Option<u64>,
    pub obs: ObsOptions,
    /// `--catalog <n>`: catalog size in objects. Use
    /// [`BenchArgs::catalog_or`] for the binary's default.
    pub catalog: Option<u64>,
    /// `--zipf <theta>`: Zipf popularity skew for the client fleet
    /// (rank-permuted; pairs with the servers' tier engine).
    pub zipf: Option<f64>,
}

impl BenchArgs {
    /// Parse from the process argv (plus `DCN_QUICK`).
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (tests).
    pub fn parse_from<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let args: Vec<String> = args.into_iter().map(Into::into).collect();
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let scale = if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else if args.iter().any(|a| a == "--quick") || std::env::var_os("DCN_QUICK").is_some() {
            Scale::Quick
        } else {
            Scale::Default
        };
        BenchArgs {
            scale,
            seed: value_of("--seed").and_then(|s| s.parse().ok()),
            obs: ObsOptions {
                trace_out: value_of("--trace-out").map(PathBuf::from),
                metrics_out: value_of("--metrics-out").map(PathBuf::from),
                sample_interval: None,
            },
            catalog: value_of("--catalog").and_then(|s| s.parse().ok()),
            zipf: value_of("--zipf").and_then(|s| s.parse().ok()),
        }
    }

    /// The run seed: `--seed` if given, else the binary's default.
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Catalog size: `--catalog` if given, else the binary's default.
    #[must_use]
    pub fn catalog_or(&self, default: u64) -> u64 {
        self.catalog.unwrap_or(default).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_common_flags() {
        let a = BenchArgs::parse_from([
            "--paper",
            "--seed",
            "99",
            "--trace-out",
            "/tmp/t.jsonl",
            "--metrics-out",
            "/tmp/m.csv",
            "--catalog",
            "1000000",
            "--zipf",
            "0.9",
        ]);
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.seed_or(23), 99);
        assert_eq!(a.catalog_or(1000), 1_000_000);
        assert_eq!(a.zipf, Some(0.9));
        assert_eq!(a.obs.trace_out.as_deref(), Some("/tmp/t.jsonl".as_ref()));
        assert_eq!(a.obs.metrics_out.as_deref(), Some("/tmp/m.csv".as_ref()));
        assert!(a.obs.active());
    }

    #[test]
    fn defaults_without_flags() {
        let a = BenchArgs::parse_from(Vec::<String>::new());
        // Scale may be Quick if DCN_QUICK is set in the environment;
        // either way nothing else is populated.
        assert_eq!(a.seed, None);
        assert_eq!(a.seed_or(23), 23);
        assert!(!a.obs.active());
        assert_eq!(a.catalog_or(500), 500);
        assert_eq!(a.zipf, None);
    }

    #[test]
    fn unknown_flags_are_ignored_and_bad_seed_falls_back() {
        let a = BenchArgs::parse_from(["--frobnicate", "7", "--seed", "not-a-number"]);
        assert_eq!(a.seed, None);
        assert_eq!(a.seed_or(5), 5);
    }
}
