//! # dcn-bench — figure regenerators and micro-benchmarks
//!
//! One binary per paper figure/table (see DESIGN.md §4 for the index)
//! plus shared drivers. Every binary prints a self-describing table:
//! the series the paper plots, in the paper's units, with a header
//! naming the figure it reproduces.
//!
//! Conventions:
//! * `--quick` (or env `DCN_QUICK=1`) shrinks sweeps for smoke runs;
//! * `--paper` runs the full-scale sweep (2 k–16 k connections);
//! * default is a mid-scale sweep that exhibits the paper's shapes in
//!   minutes of wall time.

pub mod cli;
pub mod perf;
pub mod storage;
pub mod sweep;

pub use cli::BenchArgs;

use dcn_simcore::MeanCi;
use dcn_workload::ObsOptions;

/// Render a simple aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a mean ± 95% CI pair.
#[must_use]
pub fn fmt_ci(m: &MeanCi, digits: usize) -> String {
    format!("{:.d$} ±{:.d$}", m.mean(), m.ci95(), d = digits)
}

/// Scale selection from argv/env.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    Quick,
    Default,
    Paper,
}

/// Observability flags shared by every figure binary:
/// `--trace-out <path>` (chunk-lifecycle JSONL) and
/// `--metrics-out <path>` (registry time-series CSV).
/// Thin wrapper over [`BenchArgs::parse`] for callers that only need
/// the obs flags.
#[must_use]
pub fn obs_from_args() -> ObsOptions {
    BenchArgs::parse().obs
}

/// If `--trace-out` / `--metrics-out` was passed, run one small
/// full-fidelity TLS Atlas scenario with the chunk-lifecycle tracer
/// on, dump the requested artifacts, and print the per-stage latency
/// summary (p50/p99). No-op without the flags, so every figure binary
/// can call this unconditionally at the end of `main`.
pub fn maybe_run_observed_atlas() {
    use dcn_atlas::AtlasConfig;
    use dcn_mem::Fidelity;
    use dcn_workload::{run_scenario_observed, Scenario, ServerKind};

    let obs = obs_from_args();
    if !obs.active() {
        return;
    }
    let server = ServerKind::Atlas(AtlasConfig {
        encrypted: true,
        fidelity: Fidelity::Full,
        ..AtlasConfig::default()
    });
    let sc = Scenario::smoke(server, 48, 42);
    let (m, report) = run_scenario_observed(&sc, &obs);
    println!("\n=== Observability: traced Atlas run (full fidelity, TLS) ===");
    println!(
        "responses={} net={:.2} Gbps cpu={:.0}%",
        m.responses, m.net_gbps, m.cpu_pct
    );
    if let Some(p) = &obs.trace_out {
        println!(
            "chunk trace: {} chunks -> {}",
            report.traced_chunks,
            p.display()
        );
        print!("{}", report.stage_summary);
    }
    if let Some(p) = &obs.metrics_out {
        println!("metrics CSV -> {}", p.display());
    }
}

impl Scale {
    /// Thin wrapper over [`BenchArgs::parse`] for callers that only
    /// need the scale.
    #[must_use]
    pub fn from_args() -> Scale {
        BenchArgs::parse().scale
    }

    /// Connection-count sweep for the macro figures.
    #[must_use]
    pub fn conns(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2000],
            Scale::Default => vec![250, 500, 1000, 2000, 4000],
            Scale::Paper => vec![2000, 4000, 6000, 8000, 10_000, 12_000, 14_000, 16_000],
        }
    }

    /// Seeds per point (error bars).
    #[must_use]
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Default => 2,
            Scale::Paper => 3,
        }
    }

    /// Measured duration per run.
    #[must_use]
    pub fn duration(self) -> dcn_simcore::Nanos {
        match self {
            Scale::Quick => dcn_simcore::Nanos::from_millis(700),
            Scale::Default => dcn_simcore::Nanos::from_millis(1200),
            Scale::Paper => dcn_simcore::Nanos::from_millis(1500),
        }
    }
}
