//! `perf_baseline` support: deterministic JSON emission, a minimal
//! JSON parser, and the regression comparator.
//!
//! The bench emits `BENCH_perf_baseline.json` — a schema-versioned
//! snapshot of the headline performance numbers over a fixed seeded
//! matrix — and CI re-runs the matrix and compares against the
//! committed file. The simulator is deterministic, so two runs of the
//! same code produce *byte-identical* JSON; the comparator's tolerance
//! exists only to let intentional small cost-model adjustments land
//! without a baseline refresh, while real regressions (slower, more
//! DRAM traffic per byte) fail the gate.
//!
//! The container builds offline (no serde), so both the emitter and
//! the parser are hand-rolled. Emission uses a fixed key order and a
//! fixed float format (`{:.6}`), which is what makes the byte-identity
//! guarantee checkable with `cmp`.

use dcn_obs::{ProfReport, ProfStage, StallKind};
use dcn_workload::RunMetrics;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version stamped into the JSON; bump on any key change.
pub const PERF_SCHEMA_VERSION: u64 = 1;

/// Relative tolerance for the direction-aware comparisons.
pub const PERF_TOLERANCE: f64 = 0.01;

// ------------------------------------------------------------- emit

/// Format a float exactly the way the baseline file does. NaN and
/// infinities (possible when a cell moved no bytes) clamp to 0 so the
/// output stays valid JSON.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        // `+ 0.0` turns -0.0 into 0.0 so no cell prints "-0.000000".
        format!("{:.6}", x + 0.0)
    } else {
        "0.000000".to_string()
    }
}

/// One cell of the perf matrix with its derived headline metrics.
#[derive(Debug, Clone)]
pub struct PerfCell {
    pub name: String,
    pub net_gbps: f64,
    pub chunks: u64,
    pub chunks_per_sec_per_core: f64,
    pub dram_bytes_per_net_byte: f64,
    pub cpu_busy_frac: f64,
    pub llc_resident_dma_frac: f64,
    pub llc_resident_encrypt_frac: f64,
    pub stalls: [u64; dcn_obs::STALL_KIND_COUNT],
    pub report: ProfReport,
}

impl PerfCell {
    /// Derive the headline numbers from a profiled run.
    ///
    /// `duration_secs` is the full simulated time (chunk counts cover
    /// the whole run, warm-up included); `ghz` and `cores` come from
    /// the server config.
    #[must_use]
    pub fn derive(name: &str, m: &RunMetrics, cores: usize, ghz: f64, duration_secs: f64) -> Self {
        let report = m.perf.clone().unwrap_or_default();
        let chunks = report.total_chunks();
        let dram_gbps = m.mem_read_gbps + m.mem_write_gbps;
        PerfCell {
            name: name.to_string(),
            net_gbps: m.net_gbps,
            chunks,
            chunks_per_sec_per_core: chunks as f64 / duration_secs / cores as f64,
            dram_bytes_per_net_byte: if m.net_gbps > 0.0 {
                (dram_gbps / m.net_gbps).max(0.0)
            } else {
                0.0
            },
            cpu_busy_frac: report.total_cycles() as f64
                / (cores as f64 * duration_secs * ghz * 1e9),
            llc_resident_dma_frac: report.llc_resident_dma_frac(),
            llc_resident_encrypt_frac: report.llc_resident_encrypt_frac(),
            stalls: report.stalls,
            report,
        }
    }

    fn to_json(&self, out: &mut String, indent: &str) {
        let i2 = format!("{indent}  ");
        let i3 = format!("{indent}    ");
        let _ = writeln!(out, "{indent}{{");
        let _ = writeln!(out, "{i2}\"name\": \"{}\",", self.name);
        let _ = writeln!(out, "{i2}\"net_gbps\": {},", fmt_f64(self.net_gbps));
        let _ = writeln!(out, "{i2}\"chunks\": {},", self.chunks);
        let _ = writeln!(
            out,
            "{i2}\"chunks_per_sec_per_core\": {},",
            fmt_f64(self.chunks_per_sec_per_core)
        );
        let _ = writeln!(
            out,
            "{i2}\"dram_bytes_per_net_byte\": {},",
            fmt_f64(self.dram_bytes_per_net_byte)
        );
        let _ = writeln!(
            out,
            "{i2}\"cpu_busy_frac\": {},",
            fmt_f64(self.cpu_busy_frac)
        );
        let _ = writeln!(
            out,
            "{i2}\"llc_resident_dma_frac\": {},",
            fmt_f64(self.llc_resident_dma_frac)
        );
        let _ = writeln!(
            out,
            "{i2}\"llc_resident_encrypt_frac\": {},",
            fmt_f64(self.llc_resident_encrypt_frac)
        );
        let _ = writeln!(out, "{i2}\"stalls\": {{");
        for (j, k) in StallKind::ALL.iter().enumerate() {
            let comma = if j + 1 < StallKind::ALL.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "{i3}\"{}\": {}{comma}", k.name(), self.stalls[j]);
        }
        let _ = writeln!(out, "{i2}}},");
        let _ = writeln!(out, "{i2}\"stages\": [");
        let r = &self.report;
        for (j, st) in ProfStage::ALL.iter().enumerate() {
            let k = *st as usize;
            let comma = if j + 1 < ProfStage::ALL.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{i3}{{\"stage\": \"{}\", \"cycles\": {}, \"dram_rd_bytes\": {}, \"dram_wr_bytes\": {}, \"chunk_samples\": {}, \"chunk_cycles_p50\": {}, \"chunk_cycles_p99\": {}}}{comma}",
                st.name(),
                r.stage_cycles[k],
                r.stage_dram_rd[k],
                r.stage_dram_wr[k],
                r.chunk_samples[k],
                r.chunk_cycles_p50[k],
                r.chunk_cycles_p99[k],
            );
        }
        let _ = writeln!(out, "{i2}]");
        let _ = write!(out, "{indent}}}");
    }
}

/// Render the whole baseline document. Fixed key order, fixed float
/// format, trailing newline: byte-identical across runs of the same
/// code on the same seed.
#[must_use]
pub fn perf_document(
    seed: u64,
    clients: usize,
    duration_ms: u64,
    warmup_ms: u64,
    cells: &[PerfCell],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": {PERF_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"bench\": \"perf_baseline\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"clients\": {clients},");
    let _ = writeln!(out, "  \"duration_ms\": {duration_ms},");
    let _ = writeln!(out, "  \"warmup_ms\": {warmup_ms},");
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        c.to_json(&mut out, "    ");
        let _ = writeln!(out, "{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

// ------------------------------------------------------------ parse

/// Minimal JSON value — just enough to read the baseline back.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `obj.get(key).as_f64()` in one step.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }
}

/// Recursive-descent JSON parser. Strict enough for round-tripping
/// our own emitters (objects, arrays, strings with `\"`/`\\`/`\n`
/// escapes, numbers, bools, null); rejects trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => Ok(Json::Str(parse_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Json::Null),
        _ => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(s);
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                s.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    _ => return Err(format!("unsupported escape \\{}", esc as char)),
                });
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8 sequence")?;
                s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut m = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(m));
    }
    loop {
        skip_ws(b, pos);
        let k = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let v = parse_value(b, pos)?;
        m.insert(k, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut v = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(v));
    }
    loop {
        v.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------- compare

/// Direction-aware regression check of `current` against `baseline`
/// (both full `BENCH_perf_baseline.json` texts). Returns the list of
/// regressions; empty means the gate passes.
///
/// What counts as a regression (beyond [`PERF_TOLERANCE`]):
/// * a cell missing from the current run, or a schema mismatch;
/// * `chunks_per_sec_per_core` or `net_gbps` **lower**;
/// * `dram_bytes_per_net_byte` **higher**;
/// * any stage's `chunk_cycles_p99` **higher** (with a small absolute
///   floor so zero-sample stages don't trip on noise).
///
/// Improvements (faster, less DRAM) never fail — they print as info in
/// the binary but the baseline should then be refreshed with
/// `perf_baseline --write`.
pub fn compare_perf(baseline: &str, current: &str) -> Result<Vec<String>, String> {
    let base = parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = parse_json(current).map_err(|e| format!("current: {e}"))?;
    let mut regressions = Vec::new();
    let bver = base.num("schema_version");
    let cver = cur.num("schema_version");
    if bver != cver {
        return Err(format!(
            "schema_version mismatch: baseline {bver:?} vs current {cver:?}"
        ));
    }
    let bcells = base
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("baseline: no cells array")?;
    let ccells = cur
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("current: no cells array")?;
    let by_name = |cells: &[Json]| -> BTreeMap<String, Json> {
        cells
            .iter()
            .filter_map(|c| Some((c.get("name")?.as_str()?.to_string(), c.clone())))
            .collect()
    };
    let cmap = by_name(ccells);
    for (name, b) in by_name(bcells) {
        let Some(c) = cmap.get(&name) else {
            regressions.push(format!("{name}: cell missing from current run"));
            continue;
        };
        let tol = PERF_TOLERANCE;
        // Lower-is-regression metrics.
        for key in ["chunks_per_sec_per_core", "net_gbps"] {
            let (bv, cv) = (b.num(key).unwrap_or(0.0), c.num(key).unwrap_or(0.0));
            if cv < bv * (1.0 - tol) {
                regressions.push(format!(
                    "{name}: {key} regressed {bv:.3} -> {cv:.3} (-{:.1}%)",
                    (1.0 - cv / bv) * 100.0
                ));
            }
        }
        // Higher-is-regression metrics.
        let (bv, cv) = (
            b.num("dram_bytes_per_net_byte").unwrap_or(0.0),
            c.num("dram_bytes_per_net_byte").unwrap_or(0.0),
        );
        if cv > bv * (1.0 + tol) + 1e-9 {
            regressions.push(format!(
                "{name}: dram_bytes_per_net_byte regressed {bv:.3} -> {cv:.3} (+{:.1}%)",
                (cv / bv.max(1e-12) - 1.0) * 100.0
            ));
        }
        // Per-stage p99 cycles/chunk: higher is a regression. The
        // absolute floor (64 cycles) keeps empty/near-empty stages
        // from tripping the gate.
        let stages = |v: &Json| -> BTreeMap<String, f64> {
            v.get("stages")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|s| {
                            Some((
                                s.get("stage")?.as_str()?.to_string(),
                                s.num("chunk_cycles_p99")?,
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        let bstages = stages(&b);
        for (stage, cv) in stages(c) {
            let bv = bstages.get(&stage).copied().unwrap_or(0.0);
            if cv > bv * (1.0 + tol) + 64.0 {
                regressions.push(format!(
                    "{name}: {stage} chunk_cycles_p99 regressed {bv:.0} -> {cv:.0}"
                ));
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc(rate: f64, dram: f64, p99: u64) -> String {
        let mut cell = PerfCell {
            name: "atlas_plain".into(),
            net_gbps: 10.0,
            chunks: 1000,
            chunks_per_sec_per_core: rate,
            dram_bytes_per_net_byte: dram,
            cpu_busy_frac: 0.5,
            llc_resident_dma_frac: 0.9,
            llc_resident_encrypt_frac: 1.0,
            stalls: [5, 0, 2],
            report: ProfReport::default(),
        };
        cell.report.chunk_cycles_p99[ProfStage::Encrypt as usize] = p99;
        perf_document(7001, 64, 700, 250, &[cell])
    }

    #[test]
    fn emitted_document_parses_and_round_trips() {
        let doc = sample_doc(5000.0, 1.25, 30_000);
        let v = parse_json(&doc).expect("parses");
        assert_eq!(v.num("schema_version"), Some(1.0));
        assert_eq!(v.num("seed"), Some(7001.0));
        let cells = v.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("name").unwrap().as_str(), Some("atlas_plain"));
        assert_eq!(cells[0].num("chunks"), Some(1000.0));
        let stages = cells[0].get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(stages.len(), dcn_obs::PROF_STAGE_COUNT);
        // Identical inputs emit identical bytes.
        assert_eq!(doc, sample_doc(5000.0, 1.25, 30_000));
    }

    #[test]
    fn identical_docs_pass_the_gate() {
        let doc = sample_doc(5000.0, 1.25, 30_000);
        assert!(compare_perf(&doc, &doc).unwrap().is_empty());
    }

    #[test]
    fn throughput_drop_is_a_regression() {
        let base = sample_doc(5000.0, 1.25, 30_000);
        let cur = sample_doc(4000.0, 1.25, 30_000);
        let regs = compare_perf(&base, &cur).unwrap();
        assert!(
            regs.iter().any(|r| r.contains("chunks_per_sec_per_core")),
            "{regs:?}"
        );
        // The reverse direction (faster) is not a regression.
        assert!(compare_perf(&cur, &base).unwrap().is_empty());
    }

    #[test]
    fn dram_growth_and_p99_growth_regress() {
        let base = sample_doc(5000.0, 1.25, 30_000);
        let more_dram = sample_doc(5000.0, 1.5, 30_000);
        let slower_p99 = sample_doc(5000.0, 1.25, 40_000);
        assert!(compare_perf(&base, &more_dram)
            .unwrap()
            .iter()
            .any(|r| r.contains("dram_bytes_per_net_byte")));
        assert!(compare_perf(&base, &slower_p99)
            .unwrap()
            .iter()
            .any(|r| r.contains("chunk_cycles_p99")));
        // Within-tolerance wiggle passes.
        let wiggle = sample_doc(4975.0, 1.256, 30_100);
        assert!(compare_perf(&base, &wiggle).unwrap().is_empty());
    }

    #[test]
    fn schema_mismatch_is_an_error_not_a_pass() {
        let doc = sample_doc(5000.0, 1.25, 30_000);
        let other = doc.replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(compare_perf(&doc, &other).is_err());
    }

    #[test]
    fn missing_cell_is_a_regression() {
        let base = sample_doc(5000.0, 1.25, 30_000);
        let cur = base.replace("atlas_plain", "something_else");
        let regs = compare_perf(&base, &cur).unwrap();
        assert!(regs.iter().any(|r| r.contains("missing")), "{regs:?}");
    }

    #[test]
    fn parser_handles_escapes_null_and_rejects_garbage() {
        let v = parse_json(r#"{"s": "a\"b\\c", "n": null, "b": true, "x": -1.5e3}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c"));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.num("x"), Some(-1500.0));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("").is_err());
    }
}
