//! Storage-figure drivers (Figs 6, 8, 9): closed-loop load
//! generators over diskmap, aio(4) and pread(2).

use dcn_diskmap::baseline::{aio_visibility_delay, AioContext, PreadFile};
use dcn_diskmap::{DiskId, DiskmapKernel, IoDesc, NvmeQueue};
use dcn_mem::{CostParams, HostMem, LlcConfig, MemSystem, PhysAlloc};
use dcn_nvme::{Fidelity, NvmeConfig, NvmeDevice, SyntheticBacking, LBA_SIZE};
use dcn_simcore::{Histogram, Nanos, SimRng};

/// Shared run output.
#[derive(Clone, Debug)]
pub struct StorageRun {
    pub throughput_gbps: f64,
    pub mean_latency_us: f64,
    pub latency: Histogram,
    pub ios: u64,
    /// CPU busy fraction of one core (the driver thread).
    pub cpu_frac: f64,
}

fn make_kernel(n_disks: usize, seed: u64) -> (DiskmapKernel, MemSystem, HostMem, PhysAlloc) {
    let cfg = NvmeConfig {
        fidelity: Fidelity::Modeled,
        ..NvmeConfig::default()
    };
    let disks = (0..n_disks)
        .map(|d| {
            NvmeDevice::new(
                cfg,
                Box::new(SyntheticBacking::new(7 + d as u64)),
                seed ^ (d as u64) << 8,
            )
        })
        .collect();
    (
        DiskmapKernel::new(disks),
        MemSystem::new(
            LlcConfig::xeon_e5_2667v3(),
            CostParams::default(),
            Nanos::from_millis(1),
        ),
        HostMem::new(),
        PhysAlloc::new(),
    )
}

/// Closed-loop diskmap reads: keep `window` requests outstanding per
/// disk, random offsets, for `horizon` simulated time.
pub fn run_diskmap(
    n_disks: usize,
    io_size: u64,
    window_per_disk: usize,
    horizon: Nanos,
    seed: u64,
) -> StorageRun {
    let (mut kernel, mut mem, mut host, mut pa) = make_kernel(n_disks, seed);
    let costs = CostParams::default();
    let mut rng = SimRng::new(seed);
    let buf_size = io_size.max(LBA_SIZE);
    let mut queues: Vec<NvmeQueue> = (0..n_disks)
        .map(|d| {
            NvmeQueue::nvme_open(
                &mut kernel,
                DiskId(d),
                0,
                (window_per_disk + 4) as u32,
                buf_size,
                &mut pa,
            )
            .expect("attach")
        })
        .collect();
    let span_lbas = 1_000_000u64;
    let mut now = Nanos::ZERO;
    let mut latency = Histogram::new(0.0, 5_000.0, 2_000); // µs
    let mut done_bytes = 0u64;
    let mut ios = 0u64;
    let mut cpu_busy_ns = 0u64;
    // Prime the windows.
    for q in queues.iter_mut() {
        for _ in 0..window_per_disk {
            let buf = q.pool().alloc().expect("sized for window");
            let lba = rng.gen_range(0, span_lbas) * (io_size.div_ceil(LBA_SIZE));
            q.nvme_read(
                IoDesc {
                    user: buf.0 as u64,
                    buf,
                    nsid: 1,
                    offset: lba * LBA_SIZE,
                    len: io_size,
                },
                &costs,
            );
        }
        let cyc = q.nvme_sqsync(&mut kernel, now, &costs).expect("sqsync");
        cpu_busy_ns += costs.cycles_to_ns(cyc);
    }
    while now < horizon {
        let Some(t) = kernel.poll_at() else { break };
        now = t;
        kernel.advance(now, &mut mem, &mut host);
        for q in queues.iter_mut() {
            let (done, cyc) = q
                .nvme_consume_completions(&mut kernel, now, usize::MAX >> 1, &costs)
                .expect("consume");
            cpu_busy_ns += costs.cycles_to_ns(cyc);
            for io in done {
                latency.add((io.completed_at - io.submitted_at).as_micros_f64());
                done_bytes += io.len;
                ios += 1;
                // Refill: LIFO buffer reuse, next random read.
                q.pool().free(io.buf);
                let buf = q.pool().alloc().expect("just freed");
                let lba = rng.gen_range(0, span_lbas) * (io_size.div_ceil(LBA_SIZE));
                q.nvme_read(
                    IoDesc {
                        user: buf.0 as u64,
                        buf,
                        nsid: 1,
                        offset: lba * LBA_SIZE,
                        len: io_size,
                    },
                    &costs,
                );
            }
            if q.staged_count() > 0 {
                let cyc = q.nvme_sqsync(&mut kernel, now, &costs).expect("sqsync");
                cpu_busy_ns += costs.cycles_to_ns(cyc);
            }
        }
    }
    finish(done_bytes, ios, latency, now, cpu_busy_ns)
}

/// Where the online autotuner settled after a closed-loop run.
#[derive(Clone, Copy, Debug)]
pub struct AutotunedPoint {
    /// Converged per-disk in-flight read cap.
    pub inflight_cap: u32,
    /// Converged fetch watermark (bytes).
    pub watermark: u64,
    /// Final completion-latency EWMA (ns).
    pub ewma_latency_ns: u64,
    /// Adjustment steps the controller took.
    pub adjustments: u64,
}

/// Closed-loop diskmap reads where the outstanding window follows the
/// online [`IoTuner`](dcn_srvcore::IoTuner) instead of a fixed
/// `window_per_disk`: every completion feeds the controller, and the
/// refill loop tops the queue up to whatever cap it currently
/// recommends. This is the microbench the autotuner-vs-manual-sweep
/// comparison in `examples/tune_io_window.rs` runs.
pub fn run_diskmap_autotuned(
    n_disks: usize,
    io_size: u64,
    cfg: dcn_srvcore::AutotuneConfig,
    horizon: Nanos,
    seed: u64,
) -> (StorageRun, AutotunedPoint) {
    let (mut kernel, mut mem, mut host, mut pa) = make_kernel(n_disks, seed);
    let costs = CostParams::default();
    let mut rng = SimRng::new(seed);
    let buf_size = io_size.max(LBA_SIZE);
    let depth = (cfg.max_inflight + 4) as usize;
    let mut queues: Vec<NvmeQueue> = (0..n_disks)
        .map(|d| {
            NvmeQueue::nvme_open(&mut kernel, DiskId(d), 0, depth as u32, buf_size, &mut pa)
                .expect("attach")
        })
        .collect();
    let mut tuners: Vec<dcn_srvcore::IoTuner> = (0..n_disks)
        .map(|d| dcn_srvcore::IoTuner::new(cfg, 10 * 1448, seed ^ ((d as u64 + 1) << 20)))
        .collect();
    let mut outstanding = vec![0usize; n_disks];
    let span_lbas = 1_000_000u64;
    let stride = io_size.div_ceil(LBA_SIZE);
    let mut now = Nanos::ZERO;
    let mut latency = Histogram::new(0.0, 5_000.0, 2_000); // µs
    let mut done_bytes = 0u64;
    let mut ios = 0u64;
    let mut cpu_busy_ns = 0u64;
    // Prime up to the initial cap.
    for (d, q) in queues.iter_mut().enumerate() {
        while outstanding[d] < (tuners[d].inflight_cap() as usize).min(depth - 2) {
            let buf = q.pool().alloc().expect("sized for cap");
            let lba = rng.gen_range(0, span_lbas) * stride;
            q.nvme_read(
                IoDesc {
                    user: buf.0 as u64,
                    buf,
                    nsid: 1,
                    offset: lba * LBA_SIZE,
                    len: io_size,
                },
                &costs,
            );
            outstanding[d] += 1;
        }
        let cyc = q.nvme_sqsync(&mut kernel, now, &costs).expect("sqsync");
        cpu_busy_ns += costs.cycles_to_ns(cyc);
    }
    while now < horizon {
        let Some(t) = kernel.poll_at() else { break };
        now = t;
        kernel.advance(now, &mut mem, &mut host);
        for (d, q) in queues.iter_mut().enumerate() {
            let (done, cyc) = q
                .nvme_consume_completions(&mut kernel, now, usize::MAX >> 1, &costs)
                .expect("consume");
            cpu_busy_ns += costs.cycles_to_ns(cyc);
            for io in done {
                outstanding[d] -= 1;
                let lat = (io.completed_at - io.submitted_at).as_nanos();
                tuners[d].observe_completion(lat, outstanding[d], depth);
                latency.add((io.completed_at - io.submitted_at).as_micros_f64());
                done_bytes += io.len;
                ios += 1;
                q.pool().free(io.buf);
            }
            // Refill to the controller's current recommendation.
            while outstanding[d] < (tuners[d].inflight_cap() as usize).min(depth - 2) {
                let Some(buf) = q.pool().alloc() else { break };
                let lba = rng.gen_range(0, span_lbas) * stride;
                q.nvme_read(
                    IoDesc {
                        user: buf.0 as u64,
                        buf,
                        nsid: 1,
                        offset: lba * LBA_SIZE,
                        len: io_size,
                    },
                    &costs,
                );
                outstanding[d] += 1;
            }
            if q.staged_count() > 0 {
                let cyc = q.nvme_sqsync(&mut kernel, now, &costs).expect("sqsync");
                cpu_busy_ns += costs.cycles_to_ns(cyc);
            }
        }
    }
    let point = AutotunedPoint {
        inflight_cap: tuners[0].inflight_cap(),
        watermark: tuners[0].watermark(),
        ewma_latency_ns: tuners[0].ewma_latency_ns(),
        adjustments: tuners[0].adjustments(),
    };
    (finish(done_bytes, ios, latency, now, cpu_busy_ns), point)
}

/// Closed-loop aio(4) reads with batched submission and
/// interrupt+kevent completion.
pub fn run_aio(
    n_disks: usize,
    io_size: u64,
    window_per_disk: usize,
    horizon: Nanos,
    seed: u64,
) -> StorageRun {
    let (mut kernel, mut mem, mut host, mut pa) = make_kernel(n_disks, seed);
    let costs = CostParams::default();
    let mut rng = SimRng::new(seed);
    let mut ctxs: Vec<AioContext> = (0..n_disks)
        .map(|d| AioContext::new(DiskId(d), 0))
        .collect();
    // O_DIRECT user buffers.
    let bufs: Vec<Vec<dcn_mem::PhysRegion>> = (0..n_disks)
        .map(|_| {
            (0..window_per_disk)
                .map(|_| pa.alloc(io_size.max(LBA_SIZE)))
                .collect()
        })
        .collect();
    let span_lbas = 1_000_000u64;
    let mut now = Nanos::ZERO;
    let mut latency = Histogram::new(0.0, 5_000.0, 2_000);
    let mut done_bytes = 0u64;
    let mut ios = 0u64;
    let mut cpu_busy_ns = 0u64;
    let stride = io_size.div_ceil(LBA_SIZE);
    for (d, ctx) in ctxs.iter_mut().enumerate() {
        let reads: Vec<_> = (0..window_per_disk)
            .map(|i| {
                let lba = rng.gen_range(0, span_lbas) * stride;
                (i as u64, 1u32, lba * LBA_SIZE, io_size, bufs[d][i])
            })
            .collect();
        let cyc = ctx.submit_reads(&mut kernel, now, &reads, &costs);
        cpu_busy_ns += costs.cycles_to_ns(cyc);
    }
    let vis = aio_visibility_delay(&costs);
    while now < horizon {
        let Some(t) = kernel.poll_at() else { break };
        now = t;
        kernel.advance(now, &mut mem, &mut host);
        let wake = now + vis;
        for (d, ctx) in ctxs.iter_mut().enumerate() {
            // The interrupt handler runs only when the device raised
            // one (MSI-X), not on every simulation event.
            if kernel.disk(DiskId(d)).qpair(0).cq_pending() == 0 {
                continue;
            }
            let cyc = ctx.on_interrupt(&mut kernel, wake, &costs);
            cpu_busy_ns += costs.cycles_to_ns(cyc);
            let (done, cyc) = ctx.kevent(wake, &costs);
            cpu_busy_ns += costs.cycles_to_ns(cyc);
            if done.is_empty() {
                continue;
            }
            let mut reads = Vec::new();
            for c in &done {
                latency.add((c.completed_at - c.submitted_at).as_micros_f64());
                done_bytes += io_size;
                ios += 1;
                let lba = rng.gen_range(0, span_lbas) * stride;
                reads.push((
                    c.user,
                    1u32,
                    lba * LBA_SIZE,
                    io_size,
                    bufs[d][c.user as usize],
                ));
            }
            // aio(4) per-request kernel work gates how fast a single
            // thread can resubmit: model the submission as serialized
            // CPU work before the device sees the batch.
            let cyc = ctx.submit_reads(&mut kernel, wake, &reads, &costs);
            cpu_busy_ns += costs.cycles_to_ns(cyc);
        }
    }
    // A single submitting thread saturates at 100% CPU: clamp
    // throughput by CPU if overcommitted.
    let mut out = finish(done_bytes, ios, latency, now, cpu_busy_ns);
    if out.cpu_frac > 1.0 {
        out.throughput_gbps /= out.cpu_frac;
        out.cpu_frac = 1.0;
    }
    out
}

/// Serial blocking pread(2) loop (one thread).
pub fn run_pread(n_disks: usize, io_size: u64, horizon: Nanos, seed: u64) -> StorageRun {
    let (mut kernel, mut mem, mut host, mut pa) = make_kernel(n_disks, seed);
    let costs = CostParams::default();
    let mut rng = SimRng::new(seed);
    let mut files: Vec<PreadFile> = (0..n_disks)
        .map(|d| PreadFile::open(DiskId(d), 0, &mut pa))
        .collect();
    let ubuf = pa.alloc(io_size.max(LBA_SIZE));
    let span_lbas = 1_000_000u64;
    let stride = io_size.div_ceil(LBA_SIZE);
    let mut now = Nanos::ZERO;
    let mut latency = Histogram::new(0.0, 5_000.0, 2_000);
    let mut done_bytes = 0u64;
    let mut ios = 0u64;
    let mut cpu_busy_ns = 0u64;
    let mut d = 0usize;
    while now < horizon {
        let lba = rng.gen_range(0, span_lbas) * stride;
        let start = now;
        let r = files[d].pread(
            &mut kernel,
            now,
            1,
            lba * LBA_SIZE,
            io_size,
            ubuf,
            &mut mem,
            &mut host,
            &costs,
        );
        latency.add((r.done_at - start).as_micros_f64());
        now = r.done_at;
        done_bytes += io_size;
        ios += 1;
        cpu_busy_ns += costs.cycles_to_ns(r.cpu_cycles);
        d = (d + 1) % n_disks;
    }
    finish(done_bytes, ios, latency, now, cpu_busy_ns)
}

fn finish(
    done_bytes: u64,
    ios: u64,
    latency: Histogram,
    now: Nanos,
    cpu_busy_ns: u64,
) -> StorageRun {
    let secs = now.as_secs_f64().max(1e-9);
    StorageRun {
        throughput_gbps: done_bytes as f64 * 8.0 / secs / 1e9,
        mean_latency_us: latency.mean(),
        latency,
        ios,
        cpu_frac: cpu_busy_ns as f64 / now.as_nanos().max(1) as f64,
    }
}
