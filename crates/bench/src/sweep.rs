//! Macro-figure sweep driver: run (variant × connection-count ×
//! seed) scenarios and aggregate the paper's series.

use crate::Scale;
use dcn_atlas::AtlasConfig;
use dcn_kstack::KstackConfig;
use dcn_mem::Fidelity;
use dcn_simcore::{MeanCi, Nanos};
use dcn_store::Catalog;
use dcn_workload::{run_scenario, FleetConfig, RunMetrics, Scenario, ServerKind};

/// One curve of a macro figure.
#[derive(Clone, Debug)]
pub struct Curve {
    pub label: String,
    /// x = #connections → aggregated metrics.
    pub points: Vec<(usize, Agg)>,
}

/// Aggregates over seeds at one x.
#[derive(Clone, Debug, Default)]
pub struct Agg {
    pub net_gbps: MeanCi,
    pub cpu_pct: MeanCi,
    pub mem_read_gbps: MeanCi,
    pub mem_write_gbps: MeanCi,
    pub read_net_ratio: MeanCi,
    pub llc_miss_e8: MeanCi,
}

impl Agg {
    fn add(&mut self, m: &RunMetrics) {
        self.net_gbps.add(m.net_gbps);
        self.cpu_pct.add(m.cpu_pct);
        self.mem_read_gbps.add(m.mem_read_gbps);
        self.mem_write_gbps.add(m.mem_write_gbps);
        self.read_net_ratio.add(m.read_net_ratio);
        self.llc_miss_e8.add(m.llc_miss_e8);
    }
}

/// A server variant to sweep.
#[derive(Clone, Debug)]
pub struct Variant {
    pub label: String,
    pub server: ServerKind,
    /// 100% buffer cache workload (hot set)?
    pub cacheable: bool,
}

impl Variant {
    #[must_use]
    pub fn atlas(encrypted: bool) -> Variant {
        Variant {
            label: "Atlas".into(),
            server: ServerKind::Atlas(AtlasConfig {
                encrypted,
                fidelity: Fidelity::Modeled,
                ..AtlasConfig::default()
            }),
            cacheable: false,
        }
    }

    #[must_use]
    pub fn netflix(encrypted: bool, cacheable: bool) -> Variant {
        Variant {
            label: format!("Netflix {}%BC", if cacheable { 100 } else { 0 }),
            server: ServerKind::Kstack(KstackConfig {
                encrypted,
                fidelity: Fidelity::Modeled,
                ..KstackConfig::netflix()
            }),
            cacheable,
        }
    }

    #[must_use]
    pub fn stock(encrypted: bool, cacheable: bool) -> Variant {
        Variant {
            label: format!("Stock {}%BC", if cacheable { 100 } else { 0 }),
            server: ServerKind::Kstack(KstackConfig {
                encrypted,
                fidelity: Fidelity::Modeled,
                ..KstackConfig::stock()
            }),
            cacheable,
        }
    }
}

/// Run the sweep. Honors the shared `--catalog <n>` / `--zipf <θ>`
/// flags: `--catalog` resizes the catalog away from the paper's 2M
/// chunks, `--zipf` switches every variant's fleet to rank-permuted
/// Zipf popularity (tiered-catalog workload shaping).
pub fn sweep(variants: &[Variant], scale: Scale) -> Vec<Curve> {
    let args = crate::BenchArgs::parse();
    let conns = scale.conns();
    let seeds = scale.seeds();
    let duration = scale.duration();
    let warmup = Nanos::from_millis(400).min(duration.mul_f64(0.4));
    variants
        .iter()
        .map(|v| {
            let points = conns
                .iter()
                .map(|&n| {
                    let mut agg = Agg::default();
                    for seed in 0..seeds {
                        let sc = Scenario {
                            server: v.server.clone(),
                            fleet: FleetConfig {
                                n_clients: n,
                                cacheable: v.cacheable,
                                // Hot set: fits the buffer cache
                                // easily (100% BC) but is far larger
                                // than the LLC, as in the paper.
                                hot_files: 4000,
                                verify: false, // modeled fidelity
                                zipf: args.zipf,
                                ..FleetConfig::default()
                            },
                            catalog: args.catalog.map_or_else(
                                || Catalog::paper(1000 + seed),
                                |nf| Catalog::new(nf, 300 * 1024, 4, 1000 + seed),
                            ),
                            warmup,
                            duration,
                            seed: 1000 + seed,
                            data_loss: 0.0,
                            faults: Default::default(),
                        };
                        let m = run_scenario(&sc);
                        agg.add(&m);
                        eprintln!(
                            "  [{} n={n} seed={seed}] net={:.1}Gbps cpu={:.0}% memR={:.1} memW={:.1} ratio={:.2} miss={:.2}e8",
                            v.label, m.net_gbps, m.cpu_pct, m.mem_read_gbps, m.mem_write_gbps,
                            m.read_net_ratio, m.llc_miss_e8
                        );
                    }
                    (n, agg)
                })
                .collect();
            Curve { label: v.label.clone(), points }
        })
        .collect()
}

/// Print one metric of all curves as a table (rows = x).
pub fn print_metric(
    title: &str,
    curves: &[Curve],
    metric: impl Fn(&Agg) -> &MeanCi,
    digits: usize,
) {
    let mut headers = vec!["conns".to_string()];
    headers.extend(curves.iter().map(|c| c.label.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let xs: Vec<usize> = curves[0].points.iter().map(|(x, _)| *x).collect();
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut row = vec![x.to_string()];
            for c in curves {
                row.push(crate::fmt_ci(metric(&c.points[i].1), digits));
            }
            row
        })
        .collect();
    crate::print_table(title, &header_refs, &rows);
}
