//! Figs 1 & 2 — Netflix vs stock FreeBSD (§2.2): plaintext (Fig 1)
//! and encrypted (Fig 2) throughput + CPU for 0%/100% buffer-cache
//! workloads.
//!
//! Paper shapes (plaintext): Netflix-0%BC ≈ 1.8× stock-0%BC (72 vs
//! 39 Gb/s); the two stacks tie at 100%BC. Encrypted: the stock
//! stack collapses (userspace TLS copies); Netflix drops ~35% at
//! 0%BC with all cores saturated.

use dcn_bench::sweep::{print_metric, sweep, Variant};
use dcn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    for (fig, enc) in [("Fig 1 (plaintext)", false), ("Fig 2 (encrypted)", true)] {
        let variants = [
            Variant::netflix(enc, true),
            Variant::netflix(enc, false),
            Variant::stock(enc, true),
            Variant::stock(enc, false),
        ];
        let curves = sweep(&variants, scale);
        print_metric(
            &format!("{fig}: network throughput (Gb/s)"),
            &curves,
            |a| &a.net_gbps,
            1,
        );
        print_metric(
            &format!("{fig}: CPU utilization (%)"),
            &curves,
            |a| &a.cpu_pct,
            0,
        );
    }
    dcn_bench::maybe_run_observed_atlas();
}
