//! Headline summary — the §1/§2.2 numbers in one table.
//!
//! Paper claims reproduced here (shape, not absolute Gb/s):
//! * plaintext 0%BC: Netflix ≈ 1.8× stock (72 vs 39 Gb/s);
//! * encrypted 0%BC: Atlas ≈ 1.5× Netflix, on half the cores;
//! * Atlas throughput insensitive to the buffer-cache ratio (it has
//!   no buffer cache);
//! * stock + userspace TLS collapses (the 40 → 8.5 Gb/s anecdote).

use dcn_bench::sweep::{sweep, Variant};
use dcn_bench::{print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let variants = [
        Variant::stock(false, false),
        Variant::netflix(false, false),
        Variant::atlas(false),
        Variant::stock(true, false),
        Variant::netflix(true, false),
        Variant::atlas(true),
    ];
    let labels = [
        "Stock plaintext 0%BC",
        "Netflix plaintext 0%BC",
        "Atlas plaintext",
        "Stock TLS 0%BC",
        "Netflix TLS 0%BC",
        "Atlas TLS",
    ];
    let curves = sweep(&variants, scale);
    let last = curves[0].points.len() - 1;
    let rows: Vec<Vec<String>> = curves
        .iter()
        .zip(labels)
        .map(|(c, label)| {
            let (n, a) = &c.points[last];
            vec![
                label.to_string(),
                n.to_string(),
                format!("{:.1}", a.net_gbps.mean()),
                format!("{:.0}", a.cpu_pct.mean()),
                format!("{:.1}", a.mem_read_gbps.mean()),
                format!("{:.2}", a.read_net_ratio.mean()),
            ]
        })
        .collect();
    print_table(
        "Summary: throughput / CPU / memory at the highest swept load",
        &[
            "configuration",
            "conns",
            "net Gb/s",
            "CPU %",
            "memR Gb/s",
            "R:net",
        ],
        &rows,
    );
    dcn_bench::maybe_run_observed_atlas();
}
