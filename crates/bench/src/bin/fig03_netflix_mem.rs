//! Fig 3 — Netflix memory read/write throughput while serving
//! encrypted traffic, 0% vs 100% buffer cache.
//!
//! Paper shape: memory read ≈ 2.6× network throughput in both modes
//! (175 Gb/s when serving ~68 Gb/s from cache).

use dcn_bench::sweep::{print_metric, sweep, Variant};
use dcn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let variants = [Variant::netflix(true, false), Variant::netflix(true, true)];
    let curves = sweep(&variants, scale);
    print_metric(
        "Fig 3: memory READ (Gb/s)",
        &curves,
        |a| &a.mem_read_gbps,
        1,
    );
    print_metric(
        "Fig 3: memory WRITE (Gb/s)",
        &curves,
        |a| &a.mem_write_gbps,
        1,
    );
    print_metric(
        "Fig 3 (context): network throughput (Gb/s)",
        &curves,
        |a| &a.net_gbps,
        1,
    );
    print_metric(
        "Fig 3 (derived): read/net ratio",
        &curves,
        |a| &a.read_net_ratio,
        2,
    );
    dcn_bench::maybe_run_observed_atlas();
}
