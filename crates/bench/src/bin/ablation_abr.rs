//! Ablation — adaptive-streaming (ABR) workload vs the fixed-rate
//! fleet, crossed with the I/O-window autotuner.
//!
//! The paper's evaluation drives Atlas with a weighttp-style
//! fixed-rate fleet: every client fetches back-to-back, so the ACK
//! clock and the disk fetch watermark see a steady request stream.
//! Real DASH players don't behave like that. They fill a playout
//! buffer, go silent ("off"), then wake and burst ("on") — and a
//! fleet of them partially synchronizes on the shared resume
//! threshold. This ablation asks two questions:
//!
//! 1. What does that cadence do to the DMA buffer pool? (The "burst
//!    microscope" section: a deliberately sub-capacity on-off fleet
//!    vs a fixed-rate fleet, pool occupancy swing per delivered
//!    gigabit.)
//! 2. Does the online autotuner's goodput gain (DESIGN.md §12)
//!    survive the bursty arrival process, or was it an artifact of
//!    steady arrivals? (Matrix: the autotuned ABR cells should keep
//!    ≥ half of the tuner's fixed-rate gain.)
//!
//! Matrix: {fixed-rate, abr-fixed, abr-buffer, abr-rate} ×
//! {plain, tls} × {fixed watermark, autotuned}. `abr-fixed` pins the
//! lowest rung with deep on-off hysteresis (fill to 400 ms, drain to
//! 100 ms) — pure burst cadence, no adaptation; the adaptive variants
//! use their default thresholds.

use dcn_atlas::{AtlasConfig, AutotuneConfig};
use dcn_bench::{print_table, BenchArgs, Scale};
use dcn_mem::Fidelity;
use dcn_simcore::Nanos;
use dcn_store::Catalog;
use dcn_workload::{run_scenario, AbrConfig, FleetConfig, RunMetrics, Scenario, ServerKind};

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Load {
    FixedRate,
    AbrFixed,
    AbrBuffer,
    AbrRate,
}

impl Load {
    fn name(self) -> &'static str {
        match self {
            Load::FixedRate => "fixed-rate",
            Load::AbrFixed => "abr-fixed",
            Load::AbrBuffer => "abr-buffer",
            Load::AbrRate => "abr-rate",
        }
    }

    fn abr(self) -> Option<AbrConfig> {
        match self {
            Load::FixedRate => None,
            // Deep hysteresis: long off phases, hard on edges.
            Load::AbrFixed => Some(AbrConfig {
                target: Nanos::from_millis(400),
                resume: Nanos::from_millis(100),
                ..AbrConfig::fixed(0)
            }),
            Load::AbrBuffer => Some(AbrConfig::buffer_based()),
            Load::AbrRate => Some(AbrConfig::rate_based()),
        }
    }
}

fn run_cell(
    load: Load,
    encrypted: bool,
    autotune: AutotuneConfig,
    n: usize,
    seed: u64,
    duration: Nanos,
) -> RunMetrics {
    let cfg = AtlasConfig {
        encrypted,
        autotune,
        fidelity: Fidelity::Modeled,
        ..AtlasConfig::default()
    };
    let sc = Scenario {
        server: ServerKind::Atlas(cfg),
        fleet: FleetConfig {
            n_clients: n,
            verify: false,
            abr: load.abr(),
            ..FleetConfig::default()
        },
        catalog: Catalog::paper(seed),
        warmup: Nanos::from_millis(250),
        duration,
        seed,
        data_loss: 0.0,
        faults: Default::default(),
    };
    run_scenario(&sc)
}

fn row(label: String, m: &RunMetrics) -> Vec<String> {
    let (reb, mbps, paced) = m
        .abr
        .as_ref()
        .map(|a| (a.qoe.rebuffer_ratio, a.qoe.avg_bitrate_mbps, a.paced_wakes))
        .unwrap_or((0.0, 0.0, 0));
    let (dip, fsd) = m
        .pool_occ
        .map(|p| (p.free_mean - p.free_min as f64, p.free_stddev))
        .unwrap_or((0.0, 0.0));
    vec![
        label,
        format!("{:.2}", m.net_gbps),
        m.responses.to_string(),
        format!("{reb:.3}"),
        format!("{mbps:.0}"),
        paced.to_string(),
        format!("{dip:.0}"),
        format!("{fsd:.1}"),
    ]
}

const COLS: [&str; 8] = [
    "cell",
    "net_gbps",
    "responses",
    "rebuf",
    "avg_mbps",
    "on_wakes",
    "pool_dip",
    "pool_sd",
];

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed_or(83);
    let n = match args.scale {
        Scale::Quick => 32,
        _ => 64,
    };
    let duration = args.scale.duration();

    // ---- main matrix -------------------------------------------
    let mut rows = Vec::new();
    let mut net = std::collections::HashMap::new();
    for load in [
        Load::FixedRate,
        Load::AbrFixed,
        Load::AbrBuffer,
        Load::AbrRate,
    ] {
        for encrypted in [false, true] {
            for (tuner_name, autotune, tuned) in [
                ("fixed", AutotuneConfig::default(), false),
                ("autotuned", AutotuneConfig::on(), true),
            ] {
                let m = run_cell(load, encrypted, autotune, n, seed, duration);
                net.insert((load, encrypted, tuned), m.net_gbps);
                rows.push(row(
                    format!(
                        "{}/{}/{tuner_name}",
                        load.name(),
                        if encrypted { "tls" } else { "plain" }
                    ),
                    &m,
                ));
            }
        }
    }
    print_table(
        &format!("Ablation: ABR workloads at {n} clients (seed {seed})"),
        &COLS,
        &rows,
    );

    // Autotuner gain retention: the tuner's fixed-rate (steady
    // arrival) gain vs what it still delivers under each adaptive
    // workload's bursty arrivals.
    for encrypted in [false, true] {
        let tls = if encrypted { "tls" } else { "plain" };
        let steady =
            net[&(Load::FixedRate, encrypted, true)] - net[&(Load::FixedRate, encrypted, false)];
        for load in [Load::AbrBuffer, Load::AbrRate] {
            let bursty = net[&(load, encrypted, true)] - net[&(load, encrypted, false)];
            let pct = if steady.abs() > f64::EPSILON {
                100.0 * bursty / steady
            } else {
                0.0
            };
            println!(
                "[{tls}] autotuner gain on {}: {bursty:+.2} Gb/s vs {steady:+.2} \
                 steady-state — {pct:.0}% retained",
                load.name()
            );
        }
    }

    // ---- burst microscope --------------------------------------
    // Sub-capacity fleet: every on-off client actually reaches its
    // buffer target and cycles, so the pool sees the synchronized
    // "on" edges. Compare its occupancy swing to a fixed-rate fleet
    // of the same size, normalized per delivered gigabit (the on-off
    // fleet moves far fewer bytes).
    let micro_n = 16;
    let mut rows = Vec::new();
    let mut swing = std::collections::HashMap::new();
    for load in [Load::FixedRate, Load::AbrFixed] {
        for (tuner_name, autotune, tuned) in [
            ("fixed", AutotuneConfig::default(), false),
            ("autotuned", AutotuneConfig::on(), true),
        ] {
            let m = run_cell(load, true, autotune, micro_n, seed, duration);
            if let Some(p) = m.pool_occ {
                swing.insert((load, tuned), p.free_stddev / m.net_gbps.max(1e-9));
            }
            rows.push(row(format!("{}/tls/{tuner_name}", load.name()), &m));
        }
    }
    print_table(
        &format!("Burst microscope: sub-capacity on-off fleet ({micro_n} clients)"),
        &COLS,
        &rows,
    );
    println!(
        "\npool occupancy stddev per delivered Gb/s (fixed watermark): \
         fixed-rate={:.1} abr-fixed={:.1}\n\
         pool occupancy stddev per delivered Gb/s (autotuned):       \
         fixed-rate={:.1} abr-fixed={:.1}",
        swing[&(Load::FixedRate, false)],
        swing[&(Load::AbrFixed, false)],
        swing[&(Load::FixedRate, true)],
        swing[&(Load::AbrFixed, true)],
    );
    println!(
        "\nReading: the adaptive cells trade raw goodput for playout-buffer\n\
         stability — the on-off cadence idles the pipe on purpose, and per\n\
         delivered gigabit it keeps the DMA pool swinging roughly twice as\n\
         hard as the steady fleet. The autotuner's goodput gain must not be\n\
         an artifact of steady arrivals: the abr-buffer cells should retain\n\
         at least half of its fixed-rate gain."
    );
    maybe_run_observed_abr();
}

/// `--trace-out`/`--metrics-out` hook: like
/// [`dcn_bench::maybe_run_observed_atlas`], but the observed fleet is
/// adaptive so the `qoe.*` gauge family lands in the metrics CSV.
fn maybe_run_observed_abr() {
    let obs = dcn_bench::obs_from_args();
    if !obs.active() {
        return;
    }
    let server = ServerKind::Atlas(AtlasConfig {
        encrypted: true,
        fidelity: Fidelity::Full,
        ..AtlasConfig::default()
    });
    let mut sc = Scenario::smoke(server, 48, 42);
    sc.fleet.abr = Some(AbrConfig::rate_based());
    let (m, report) = dcn_workload::run_scenario_observed(&sc, &obs);
    println!("\n=== Observability: traced adaptive Atlas run (full fidelity, TLS) ===");
    println!(
        "responses={} net={:.2} Gbps cpu={:.0}%",
        m.responses, m.net_gbps, m.cpu_pct
    );
    if let Some(a) = &m.abr {
        println!(
            "qoe: sessions={} rebuffer_ratio={:.3} avg_bitrate={:.0} Mb/s",
            a.qoe.sessions, a.qoe.rebuffer_ratio, a.qoe.avg_bitrate_mbps
        );
    }
    if let Some(p) = &obs.trace_out {
        println!(
            "chunk trace: {} chunks -> {}",
            report.traced_chunks,
            p.display()
        );
        print!("{}", report.stage_summary);
    }
    if let Some(p) = &obs.metrics_out {
        println!("metrics CSV -> {}", p.display());
    }
}
