//! §3.1.4 ablation — to batch or not to batch.
//!
//! The paper finds NVMe devices saturate without request batching
//! (unlike NICs), but batching still saves CPU by amortizing the
//! doorbell syscall. This ablation measures diskmap throughput and
//! driver CPU per I/O as the submission batch size varies.

use dcn_bench::{print_table, Scale};
use dcn_diskmap::{DiskId, DiskmapKernel, IoDesc, NvmeQueue};
use dcn_mem::{CostParams, HostMem, LlcConfig, MemSystem, PhysAlloc};
use dcn_nvme::{Fidelity, NvmeConfig, NvmeDevice, SyntheticBacking};
use dcn_simcore::{Nanos, SimRng};

fn main() {
    let scale = Scale::from_args();
    let horizon = Nanos::from_millis(if scale == Scale::Quick { 60 } else { 250 });
    let mut rows = Vec::new();
    for &batch in &[1usize, 4, 16, 64] {
        let costs = CostParams::default();
        let cfg = NvmeConfig {
            fidelity: Fidelity::Modeled,
            ..NvmeConfig::default()
        };
        let mut kernel = DiskmapKernel::new(vec![NvmeDevice::new(
            cfg,
            Box::new(SyntheticBacking::new(7)),
            1,
        )]);
        let mut mem = MemSystem::new(LlcConfig::xeon_e5_2667v3(), costs, Nanos::from_millis(1));
        let mut host = HostMem::new();
        let mut pa = PhysAlloc::new();
        let mut q =
            NvmeQueue::nvme_open(&mut kernel, DiskId(0), 0, 256, 16 * 1024, &mut pa).unwrap();
        let mut rng = SimRng::new(3);
        let window = 128usize;
        let mut now = Nanos::ZERO;
        let mut staged = 0usize;
        let (mut ios, mut cpu_ns) = (0u64, 0u64);
        // Prime.
        for _ in 0..window {
            let buf = q.pool().alloc().unwrap();
            q.nvme_read(
                IoDesc {
                    user: 0,
                    buf,
                    nsid: 1,
                    offset: rng.gen_range(0, 1 << 20) * 16384,
                    len: 16384,
                },
                &costs,
            );
        }
        cpu_ns += costs.cycles_to_ns(q.nvme_sqsync(&mut kernel, now, &costs).unwrap());
        while now < horizon {
            let Some(t) = kernel.poll_at() else { break };
            now = t;
            kernel.advance(now, &mut mem, &mut host);
            let (done, cyc) = q
                .nvme_consume_completions(&mut kernel, now, usize::MAX >> 1, &costs)
                .unwrap();
            cpu_ns += costs.cycles_to_ns(cyc);
            for io in done {
                ios += 1;
                q.pool().free(io.buf);
                let buf = q.pool().alloc().unwrap();
                q.nvme_read(
                    IoDesc {
                        user: 0,
                        buf,
                        nsid: 1,
                        offset: rng.gen_range(0, 1 << 20) * 16384,
                        len: 16384,
                    },
                    &costs,
                );
                staged += 1;
                if staged >= batch {
                    cpu_ns += costs.cycles_to_ns(q.nvme_sqsync(&mut kernel, now, &costs).unwrap());
                    staged = 0;
                }
            }
        }
        let gbps = ios as f64 * 16384.0 * 8.0 / now.as_secs_f64() / 1e9;
        rows.push(vec![
            batch.to_string(),
            format!("{:.1}", gbps),
            format!("{:.0}", cpu_ns as f64 / ios.max(1) as f64),
            kernel.syscalls.to_string(),
        ]);
    }
    print_table(
        "Ablation §3.1.4: submission batching (16 KiB reads, window 128, 1 drive)",
        &["batch", "gbps", "cpu_ns/io", "syscalls"],
        &rows,
    );
    dcn_bench::maybe_run_observed_atlas();
}
