//! Perf-trajectory baseline: a fixed seeded matrix profiled end to
//! end, emitted as schema-versioned JSON, and compared against the
//! committed `BENCH_perf_baseline.json` as a regression gate.
//!
//! The matrix is {Atlas, Netflix kstack} × {plaintext, TLS} at one
//! fixed operating point (64 clients, seed 7001, 700 ms simulated,
//! 250 ms warm-up, modeled fidelity) with the stage profiler on. The
//! simulator is deterministic, so the same code always produces
//! byte-identical JSON; CI exploits that by requiring two consecutive
//! runs to `cmp` equal before applying the tolerance-based comparator.
//!
//! Usage:
//!   perf_baseline                      # run + print the table & JSON to stdout
//!   perf_baseline --out <path>         # also write the JSON to <path>
//!   perf_baseline --check <baseline>   # exit 1 if regressed vs <baseline>
//!   perf_baseline --write              # refresh BENCH_perf_baseline.json (CWD)

use dcn_atlas::{AtlasConfig, AutotuneConfig};
use dcn_bench::perf::{compare_perf, perf_document, PerfCell};
use dcn_bench::print_table;
use dcn_kstack::KstackConfig;
use dcn_mem::Fidelity;
use dcn_workload::{run_scenario, Scenario, ServerKind};

const SEED: u64 = 7001;
const CLIENTS: usize = 64;
const DURATION_MS: u64 = 700;
const WARMUP_MS: u64 = 250;

fn run_cell(name: &str, encrypted: bool, atlas: bool) -> PerfCell {
    let (server, cores, ghz) = if atlas {
        let cfg = AtlasConfig {
            encrypted,
            fidelity: Fidelity::Modeled,
            profile: true,
            // The online I/O-window autotuner is the production
            // operating point now: it converges below the paper's
            // fixed 10×MSS watermark on the modeled P3700, overlapping
            // more of the ~100 µs read latency with ACK-clock waits.
            autotune: AutotuneConfig::on(),
            ..AtlasConfig::default()
        };
        let (cores, ghz) = (cfg.cores, cfg.costs.cpu_ghz);
        (ServerKind::Atlas(cfg), cores, ghz)
    } else {
        let cfg = KstackConfig {
            encrypted,
            fidelity: Fidelity::Modeled,
            profile: true,
            ..KstackConfig::netflix()
        };
        let (cores, ghz) = (cfg.cores, cfg.costs.cpu_ghz);
        (ServerKind::Kstack(cfg), cores, ghz)
    };
    let sc = Scenario::smoke(server, CLIENTS, SEED);
    debug_assert_eq!(sc.warmup.as_nanos(), WARMUP_MS * 1_000_000);
    debug_assert_eq!(sc.duration.as_nanos(), DURATION_MS * 1_000_000);
    let m = run_scenario(&sc);
    PerfCell::derive(name, &m, cores, ghz, DURATION_MS as f64 / 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let cells = vec![
        run_cell("atlas_plain", false, true),
        run_cell("atlas_tls", true, true),
        run_cell("kstack_plain", false, false),
        run_cell("kstack_tls", true, false),
    ];
    let doc = perf_document(SEED, CLIENTS, DURATION_MS, WARMUP_MS, &cells);

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.2}", c.net_gbps),
                c.chunks.to_string(),
                format!("{:.0}", c.chunks_per_sec_per_core),
                format!("{:.3}", c.dram_bytes_per_net_byte),
                format!("{:.3}", c.cpu_busy_frac),
                format!("{:.3}", c.llc_resident_dma_frac),
                format!("{:.3}", c.llc_resident_encrypt_frac),
                format!("{}/{}/{}", c.stalls[0], c.stalls[1], c.stalls[2]),
            ]
        })
        .collect();
    print_table(
        &format!(
            "perf_baseline: seed {SEED}, {CLIENTS} clients, {DURATION_MS} ms (stalls: cwnd/pool/nvme)"
        ),
        &[
            "cell",
            "net_gbps",
            "chunks",
            "chunks/s/core",
            "dram/net",
            "cpu_busy",
            "dma_llc",
            "enc_llc",
            "stalls",
        ],
        &rows,
    );

    let mut wrote = false;
    if let Some(path) = value_of("--out") {
        std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("perf JSON -> {path}");
        wrote = true;
    }
    if args.iter().any(|a| a == "--write") {
        let path = "BENCH_perf_baseline.json";
        std::fs::write(path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("baseline refreshed -> {path}");
        wrote = true;
    }
    if let Some(path) = value_of("--check") {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        match compare_perf(&baseline, &doc) {
            Ok(regs) if regs.is_empty() => {
                println!("perf gate: OK vs {path}");
            }
            Ok(regs) => {
                eprintln!("perf gate: {} regression(s) vs {path}:", regs.len());
                for r in &regs {
                    eprintln!("  REGRESSION {r}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("perf gate: cannot compare: {e}");
                std::process::exit(1);
            }
        }
        wrote = true;
    }
    if !wrote {
        print!("{doc}");
    }
}
