//! §4.1 ablation — the 10×MSS fetch watermark.
//!
//! The paper attributes Atlas's ~13% throughput deficit below 4 k
//! connections to delaying I/O until the window clears 10×MSS (in
//! exchange for efficient 16 KiB disk reads). This ablation sweeps
//! the watermark.

use dcn_atlas::AtlasConfig;
use dcn_bench::{print_table, BenchArgs, Scale};
use dcn_mem::Fidelity;
use dcn_simcore::Nanos;
use dcn_store::Catalog;
use dcn_workload::{run_scenario, FleetConfig, Scenario, ServerKind};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale;
    let seed = args.seed_or(11);
    let n = match scale {
        Scale::Quick => 500,
        _ => 2000,
    };
    let rows: Vec<Vec<String>> = [1usize, 4, 10, 20, 40]
        .iter()
        .map(|&mss_mult| {
            let cfg = AtlasConfig {
                watermark: mss_mult as u64 * 1448,
                fidelity: Fidelity::Modeled,
                ..AtlasConfig::default()
            };
            let sc = Scenario {
                server: ServerKind::Atlas(cfg),
                fleet: FleetConfig {
                    n_clients: n,
                    verify: false,
                    ..FleetConfig::default()
                },
                catalog: Catalog::paper(seed),
                warmup: Nanos::from_millis(400),
                duration: scale.duration(),
                seed,
                data_loss: 0.0,
                faults: Default::default(),
            };
            let m = run_scenario(&sc);
            vec![
                format!("{mss_mult}xMSS"),
                format!("{:.1}", m.net_gbps),
                format!("{:.2}", m.read_net_ratio),
                m.responses.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Ablation: Atlas fetch watermark at {n} connections"),
        &["watermark", "net_gbps", "R:net", "responses"],
        &rows,
    );
    dcn_bench::maybe_run_observed_atlas();
}
