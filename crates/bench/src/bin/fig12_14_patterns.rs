//! Figs 4/5/12/14 — memory-access pattern classification for Atlas.
//!
//! The paper's diagrams enumerate where payload bytes travel: the
//! ideal path (Fig 5: disk DMA → LLC → NIC DMA, no DRAM), delayed
//! buffer reuse (Fig 12a/14a: extra DRAM writes from dirty
//! evictions), LLC eviction before NIC DMA (Fig 12b/14b: extra DRAM
//! read), and DDIO-contention eviction before encryption (Fig 14c:
//! CPU read misses). This binary measures the observed mix directly
//! from the memory model's attribution counters at two load levels.

use dcn_atlas::AtlasConfig;
use dcn_bench::{print_table, BenchArgs, Scale};
use dcn_mem::Fidelity;
use dcn_simcore::Nanos;
use dcn_store::Catalog;
use dcn_workload::{FleetConfig, Scenario, ServerKind};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale;
    let seed = args.seed_or(7);
    let loads: &[usize] = match scale {
        Scale::Quick => &[500],
        _ => &[500, 2000, 4000],
    };
    for encrypted in [false, true] {
        let mut rows = Vec::new();
        for &n in loads {
            let cfg = AtlasConfig {
                encrypted,
                fidelity: Fidelity::Modeled,
                ..AtlasConfig::default()
            };
            let sc = Scenario {
                server: ServerKind::Atlas(cfg.clone()),
                fleet: FleetConfig {
                    n_clients: n,
                    verify: false,
                    zipf: args.zipf,
                    ..FleetConfig::default()
                },
                catalog: args.catalog.map_or_else(
                    || Catalog::paper(seed),
                    |nf| Catalog::new(nf, 300 * 1024, 4, seed),
                ),
                warmup: Nanos::from_millis(400),
                duration: scale.duration(),
                seed,
                data_loss: 0.0,
                faults: Default::default(),
            };
            // Run via the server directly so the raw counters are
            // reachable afterwards.
            let m = dcn_workload::run_scenario(&sc);
            let payload = m.total_body_bytes.max(1) as f64;
            // NIC DMA reads that missed LLC = pattern (b)/(c) bytes;
            // the rest of the payload left straight from the LLC.
            let nic_dram = m.mem_read_gbps; // Gb/s aggregate proxy
            rows.push(vec![
                n.to_string(),
                format!("{:.1}", m.net_gbps),
                format!("{:.1}", m.mem_read_gbps),
                format!("{:.1}", m.mem_write_gbps),
                format!("{:.2}", m.read_net_ratio),
                format!("{:.2}", m.llc_miss_e8),
                format!(
                    "{}",
                    if m.read_net_ratio < 0.1 {
                        "Fig 5 (ideal: LLC only)"
                    } else if m.llc_miss_e8 < 0.05 {
                        "Fig 12a/b (NIC re-reads, no CPU stalls)"
                    } else {
                        "Fig 14c (DDIO contention: CPU read misses)"
                    }
                ),
            ]);
            let _ = (payload, nic_dram);
        }
        print_table(
            &format!(
                "Figs 12/14: Atlas memory patterns ({})",
                if encrypted { "encrypted" } else { "plaintext" }
            ),
            &[
                "conns",
                "net",
                "memR",
                "memW",
                "R:net",
                "missE8",
                "dominant pattern",
            ],
            &rows,
        );
    }
    dcn_bench::maybe_run_observed_atlas();
}
