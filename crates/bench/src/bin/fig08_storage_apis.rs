//! Fig 8 — Read throughput: diskmap vs aio(4) vs pread(2), one
//! driving thread over four NVMe drives, I/O sizes 512 B–128 KiB.
//!
//! Paper shape: diskmap dominates at small sizes (polling, no
//! interrupts, sub-µs per-request CPU); aio converges to diskmap only
//! at ≥64 KiB; pread stays latency-bound and far below both. The
//! diskmap sweet spot is ~16 KiB where it already reaches the disks'
//! aggregate limit.

use dcn_bench::storage::{run_aio, run_diskmap, run_pread};
use dcn_bench::{print_table, Scale};
use dcn_simcore::Nanos;

fn main() {
    let scale = Scale::from_args();
    let sizes: &[u64] = match scale {
        Scale::Quick => &[512, 4096, 16_384, 131_072],
        _ => &[512, 1024, 2048, 4096, 8192, 16_384, 32_768, 65_536, 131_072],
    };
    let horizon = Nanos::from_millis(if scale == Scale::Quick { 80 } else { 250 });
    let window = 128; // per disk
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&s| {
            let d = run_diskmap(4, s, window, horizon, 42);
            let a = run_aio(4, s, window, horizon, 42);
            let p = run_pread(4, s, horizon, 42);
            vec![
                format!("{}", s / 1024).replace("0", if s < 1024 { "0.5" } else { "0" }),
                format!("{:.2}", d.throughput_gbps),
                format!("{:.2}", a.throughput_gbps),
                format!("{:.2}", p.throughput_gbps),
            ]
        })
        .collect();
    print_table(
        "Fig 8: read throughput by storage API (4 drives, 1 thread)",
        &["KiB", "diskmap", "aio(4)", "pread(2)"],
        &rows,
    );
    dcn_bench::maybe_run_observed_atlas();
}
