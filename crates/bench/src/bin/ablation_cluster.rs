//! Cluster ablation — aggregate goodput vs server count, crypto, and
//! a one-server kill.
//!
//! Sweeps 1→8 Atlas servers behind the consistent-hash dispatcher
//! under a fixed oversubscribed client population, crossed with
//! {plaintext, TLS} × {healthy, one-server-kill}. The healthy rows
//! show scale-out (per-server capacity is the bottleneck, so goodput
//! grows ~linearly until demand is met); the kill rows show the
//! failure path: goodput before the kill, goodput after the control
//! loop re-routed everything to the survivors, and the resume work
//! (clients re-pointed, streams resumed mid-body via range requests).
//!
//! `--trace-out` / `--metrics-out` additionally run one small
//! full-fidelity TLS cluster with a kill and dump per-server chunk
//! traces and `s{i}.`-prefixed metrics CSV.

use dcn_atlas::AtlasConfig;
use dcn_bench::{print_table, BenchArgs, Scale};
use dcn_cluster::{run_cluster, run_cluster_observed, ClusterConfig};
use dcn_faults::{ClusterFaults, ServerFault};
use dcn_mem::Fidelity;
use dcn_simcore::{Bandwidth, Nanos};
use dcn_store::Catalog;
use dcn_workload::FleetConfig;

fn config(
    n_servers: usize,
    n_clients: usize,
    encrypted: bool,
    kill: bool,
    duration: Nanos,
    seed: u64,
) -> ClusterConfig {
    let mut sc = ClusterConfig::smoke(n_servers, n_clients, seed);
    let mut atlas = AtlasConfig {
        encrypted,
        fidelity: Fidelity::Modeled,
        ..AtlasConfig::default()
    };
    // Edge-pod shape: each server has a 2×5 GbE NIC and the clients
    // sit a few ms away, so one server's NIC — not client round
    // trips — is the bottleneck and scale-out is measurable.
    atlas.nic.port_rate = Bandwidth::from_gbps(5.0);
    sc.atlas = atlas;
    sc.client_delay = (Nanos::from_millis(2), Nanos::from_millis(8));
    // 0% BC: uniform over the catalog (the paper's hardest case), so
    // scaling comes from sharding, not caching.
    sc.fleet = FleetConfig {
        n_clients,
        cacheable: false,
        verify: false,
        ..FleetConfig::default()
    };
    sc.catalog = Catalog::paper(seed);
    // Balance matters once per-server NICs are the bottleneck: with
    // few vnodes the hash ring gives servers uneven file shares, and
    // closed-loop clients queue on the hot server while a cold one
    // idles.
    sc.vnodes = 512;
    sc.warmup = Nanos::from_millis(400);
    sc.duration = duration;
    if kill {
        // Mid-measurement-window, so both the pre-kill and the
        // recovered steady state are observable.
        let at = sc.warmup + (duration - sc.warmup).mul_f64(0.4);
        sc.faults.cluster = ClusterFaults {
            kill: Some(ServerFault { server: 0, at }),
            drain: None,
        };
    }
    sc
}

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale;
    let seed = args.seed_or(23);
    let (n_clients, server_counts): (usize, Vec<usize>) = match scale {
        Scale::Quick => (400, vec![1, 4]),
        Scale::Default => (600, vec![1, 2, 4, 8]),
        Scale::Paper => (1200, vec![1, 2, 4, 8]),
    };
    let duration = scale.duration();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &n in &server_counts {
        for encrypted in [false, true] {
            for kill in [false, true] {
                if kill && n == 1 {
                    continue; // killing the only server isn't recovery
                }
                let sc = config(n, n_clients, encrypted, kill, duration, seed);
                let m = run_cluster(&sc);
                let (pre, post) = m.recovery.map_or((f64::NAN, f64::NAN), |r| {
                    (r.pre_kill_gbps, r.post_recovery_gbps)
                });
                let leaked: i64 = m
                    .per_server
                    .iter()
                    .filter(|s| s.alive)
                    .map(|s| s.leaked_buffers)
                    .sum();
                rows.push(vec![
                    n.to_string(),
                    if encrypted { "TLS" } else { "plain" }.to_string(),
                    if kill { "kill s0" } else { "healthy" }.to_string(),
                    format!("{:.1}", m.net_gbps),
                    if kill {
                        format!("{pre:.1}")
                    } else {
                        "-".into()
                    },
                    if kill {
                        format!("{post:.1}")
                    } else {
                        "-".into()
                    },
                    m.responses.to_string(),
                    m.failovers.to_string(),
                    m.resumed_responses.to_string(),
                    m.fallback_routes.to_string(),
                    m.overflow_routes.to_string(),
                    leaked.to_string(),
                ]);
            }
        }
    }
    print_table(
        &format!(
            "Ablation: cluster scale-out, 0% BC, {n_clients} clients (goodput in Gbps; kill 40% into the window, detect +30 ms)"
        ),
        &[
            "servers", "crypto", "fault", "net_gbps", "pre_kill", "post_rec", "responses",
            "failover", "resumed", "fallback", "overflow", "leaked",
        ],
        &rows,
    );

    // Observability run: full fidelity, TLS, 3 servers, one kill —
    // verification on, per-server metrics CSV and merged chunk trace.
    let obs = args.obs;
    if obs.active() {
        let mut sc = ClusterConfig::smoke(3, 24, 42);
        sc.atlas = AtlasConfig {
            encrypted: true,
            ..AtlasConfig::default()
        };
        sc.fleet.cacheable = true;
        sc.duration = Nanos::from_millis(1200);
        sc.faults.cluster = ClusterFaults {
            kill: Some(ServerFault {
                server: 1,
                at: Nanos::from_millis(600),
            }),
            drain: None,
        };
        let (m, report) = run_cluster_observed(&sc, &obs);
        println!("\n=== Observability: traced cluster run (full fidelity, TLS, kill s1) ===");
        println!(
            "responses={} net={:.2} Gbps failovers={} resumed={} verify_failures={}",
            m.responses, m.net_gbps, m.failovers, m.resumed_responses, m.verify_failures
        );
        if let Some(p) = &obs.trace_out {
            println!(
                "chunk trace: {} chunks -> {}",
                report.traced_chunks,
                p.display()
            );
            print!("{}", report.stage_summary);
        }
        if let Some(p) = &obs.metrics_out {
            println!("metrics CSV -> {}", p.display());
        }
    }
}
