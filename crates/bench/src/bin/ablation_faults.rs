//! Fault ablation — goodput vs injected loss and device error rate.
//!
//! Sweeps the two main fault axes against the Atlas TLS server:
//! bursty (Gilbert–Elliott) link loss on the server→client direction,
//! and NVMe unrecoverable-read-error probability. Every lost data
//! frame costs a full disk re-fetch (storage *is* the retransmission
//! buffer), so goodput degrades with loss faster than a socket-buffer
//! stack would — this table quantifies that trade-off, alongside the
//! recovery work (re-fetches, retries, RTOs) each cell induced.

use dcn_atlas::AtlasConfig;
use dcn_bench::{print_table, BenchArgs, Scale};
use dcn_faults::{FaultConfig, LossModel};
use dcn_mem::Fidelity;
use dcn_simcore::Nanos;
use dcn_store::Catalog;
use dcn_workload::{run_scenario, FleetConfig, Scenario, ServerKind};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale;
    let seed = args.seed_or(23);
    let n = match scale {
        Scale::Quick => 300,
        _ => 1000,
    };
    let loss_rates = [0.0, 0.001, 0.01];
    let err_rates = [0.0, 0.001, 0.01];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &loss in &loss_rates {
        for &err_p in &err_rates {
            let cfg = AtlasConfig {
                encrypted: true,
                fidelity: Fidelity::Modeled,
                ..AtlasConfig::default()
            };
            let mut faults = FaultConfig::default();
            if loss > 0.0 {
                faults.net.loss = LossModel::gilbert_elliott_for(loss);
            }
            faults.nvme.read_error_p = err_p;
            let sc = Scenario {
                server: ServerKind::Atlas(cfg),
                fleet: FleetConfig {
                    n_clients: n,
                    verify: false,
                    ..FleetConfig::default()
                },
                catalog: Catalog::paper(seed),
                warmup: Nanos::from_millis(400),
                duration: scale.duration(),
                seed,
                data_loss: 0.0,
                faults,
            };
            let m = run_scenario(&sc);
            rows.push(vec![
                format!("{:.1}%", loss * 100.0),
                format!("{:.1}%", err_p * 100.0),
                format!("{:.1}", m.net_gbps),
                m.faults.net_dropped.to_string(),
                m.retransmit_fetches.to_string(),
                m.faults.nvme_read_errors.to_string(),
                m.faults.fetch_retries.to_string(),
                m.faults.rto_fired.to_string(),
                m.leaked_buffers.to_string(),
            ]);
        }
    }
    print_table(
        &format!("Ablation: Atlas TLS goodput under bursty loss x NVMe read errors ({n} conns)"),
        &[
            "loss", "nvme_err", "net_gbps", "dropped", "refetch", "dev_err", "retries", "rto",
            "leaked",
        ],
        &rows,
    );
    dcn_bench::maybe_run_observed_atlas();
}
