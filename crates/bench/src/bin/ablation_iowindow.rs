//! Ablation — online I/O-window autotuner vs the paper's fixed
//! 10×MSS watermark.
//!
//! Fig 6 argues the drive's operating point (window where throughput
//! saturates while latency stays far under WAN RTTs) can be found
//! offline and baked in as a fixed watermark. The autotuner finds the
//! same point online from completion latency and SQ occupancy, and —
//! unlike the baked-in constant — re-converges when the firmware is
//! slower than the one that was profiled. The matrix is
//! {fixed, autotuned} × {plain, TLS} × {fast, slow} firmware, where
//! "slow" triples the controller's fixed command overhead (a drive
//! three generations older, or one busy with GC).

use dcn_atlas::{AtlasConfig, AutotuneConfig};
use dcn_bench::{print_table, BenchArgs, Scale};
use dcn_mem::Fidelity;
use dcn_nvme::FirmwareParams;
use dcn_simcore::Nanos;
use dcn_store::Catalog;
use dcn_workload::{run_scenario, FleetConfig, Scenario, ServerKind};

fn firmware(slow: bool) -> FirmwareParams {
    let fast = FirmwareParams::p3700();
    if slow {
        FirmwareParams {
            cmd_overhead: Nanos::from_nanos(3 * fast.cmd_overhead.as_nanos()),
            ..fast
        }
    } else {
        fast
    }
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed_or(29);
    let n = match args.scale {
        Scale::Quick => 32,
        _ => 64,
    };
    let mut rows = Vec::new();
    for (tuner_name, autotune) in [
        ("fixed", AutotuneConfig::default()),
        ("autotuned", AutotuneConfig::on()),
    ] {
        for encrypted in [false, true] {
            for slow in [false, true] {
                let cfg = AtlasConfig {
                    encrypted,
                    autotune,
                    firmware: firmware(slow),
                    fidelity: Fidelity::Modeled,
                    ..AtlasConfig::default()
                };
                let sc = Scenario {
                    server: ServerKind::Atlas(cfg),
                    fleet: FleetConfig {
                        n_clients: n,
                        verify: false,
                        zipf: args.zipf,
                        ..FleetConfig::default()
                    },
                    catalog: args.catalog.map_or_else(
                        || Catalog::paper(seed),
                        |nf| Catalog::new(nf, 300 * 1024, 4, seed),
                    ),
                    warmup: Nanos::from_millis(250),
                    duration: args.scale.duration(),
                    seed,
                    data_loss: 0.0,
                    faults: Default::default(),
                };
                let m = run_scenario(&sc);
                rows.push(vec![
                    format!(
                        "{tuner_name}/{}/{}",
                        if encrypted { "tls" } else { "plain" },
                        if slow { "slow_fw" } else { "fast_fw" }
                    ),
                    format!("{:.2}", m.net_gbps),
                    m.disk_reads.to_string(),
                    format!("{:.2}", m.read_net_ratio),
                    m.responses.to_string(),
                ]);
            }
        }
    }
    print_table(
        &format!("Ablation: I/O-window control at {n} connections (seed {seed})"),
        &["cell", "net_gbps", "chunks", "R:net", "responses"],
        &rows,
    );
    println!(
        "\nReading: at each firmware speed, the autotuned cells should match\n\
         or beat the fixed-watermark cells — the controller finds Fig 6's\n\
         operating point online instead of trusting a profile of a\n\
         different drive."
    );
    dcn_bench::maybe_run_observed_atlas();
}
