//! Overload ablation — goodput and tail latency vs offered load.
//!
//! Sweeps offered load from 0.5× to 4× the admission capacity
//! (`max_conns_per_core` × cores) against the Atlas server, plain and
//! TLS. The point of the admission policy + degradation ladder is the
//! *plateau*: past 1×, goodput must stay ≈ flat — admitted
//! connections stream untouched and verify byte-identical, surplus
//! SYNs bounce off the connection cap with an RST, p99 TTFB stays
//! bounded, and the DMA bufpool audit stays clean. Overload sheds
//! work; it never leaks buffers or corrupts streams.

use dcn_atlas::AtlasConfig;
use dcn_bench::{print_table, BenchArgs, Scale};
use dcn_faults::FaultConfig;
use dcn_simcore::Nanos;
use dcn_store::Catalog;
use dcn_workload::{run_scenario, FleetConfig, Scenario, ServerKind};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale;
    let seed = args.seed_or(29);
    // Admission capacity for this sweep: 16 connections/core on the
    // default 4 cores. Small enough that 4× offered load is still a
    // fast full-fidelity (verified) run.
    let conns_per_core = 16;
    let capacity = conns_per_core * AtlasConfig::default().cores;
    let multipliers: &[f64] = match scale {
        Scale::Quick => &[1.0, 4.0],
        _ => &[0.5, 1.0, 2.0, 4.0],
    };
    let duration = match scale {
        Scale::Quick => Nanos::from_millis(600),
        _ => Nanos::from_millis(1000),
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &encrypted in &[false, true] {
        let mut goodput_1x = 0.0_f64;
        for &mult in multipliers {
            let n_clients = (capacity as f64 * mult).round() as usize;
            let mut cfg = AtlasConfig {
                encrypted,
                ..AtlasConfig::default()
            };
            cfg.admission.max_conns_per_core = conns_per_core;
            let sc = Scenario {
                server: ServerKind::Atlas(cfg),
                fleet: FleetConfig {
                    n_clients,
                    verify: true,
                    ..FleetConfig::default()
                },
                catalog: Catalog::new(50_000, 300 * 1024, 4, seed),
                warmup: Nanos::from_millis(250),
                duration,
                seed,
                data_loss: 0.0,
                faults: FaultConfig::default(),
            };
            let m = run_scenario(&sc);
            assert_eq!(
                m.leaked_buffers, 0,
                "bufpool leak at {mult}x offered load (encrypted={encrypted})"
            );
            assert_eq!(
                m.verify_failures, 0,
                "admitted connections must verify byte-identical at {mult}x"
            );
            if (mult - 1.0).abs() < f64::EPSILON {
                goodput_1x = m.net_gbps;
            }
            let vs_1x = if mult >= 1.0 && goodput_1x > 0.0 {
                format!("{:.0}%", m.net_gbps / goodput_1x * 100.0)
            } else {
                "-".into()
            };
            if mult >= 4.0 && goodput_1x > 0.0 {
                assert!(
                    m.net_gbps >= 0.9 * goodput_1x,
                    "goodput collapsed under overload: {:.2} Gbps at 4x vs {:.2} at 1x",
                    m.net_gbps,
                    goodput_1x
                );
            }
            rows.push(vec![
                if encrypted { "TLS" } else { "plain" }.into(),
                format!("{mult:.1}x"),
                n_clients.to_string(),
                format!("{:.2}", m.net_gbps),
                vs_1x,
                format!("{:.1}", m.overload.ttfb_p99_ms),
                m.overload.shed_new.to_string(),
                m.overload.retry_503.to_string(),
                m.overload.reaped_idle.to_string(),
                m.overload.aborted_slow.to_string(),
                m.overload.client_resets.to_string(),
                m.verify_failures.to_string(),
                m.leaked_buffers.to_string(),
            ]);
        }
    }
    print_table(
        &format!("Ablation: Atlas goodput vs offered load (capacity = {capacity} conns, verified)"),
        &[
            "stack",
            "load",
            "conns",
            "net_gbps",
            "vs_1x",
            "p99_ttfb_ms",
            "shed_new",
            "503s",
            "reaped",
            "aborted",
            "cl_rst",
            "vfail",
            "leaked",
        ],
        &rows,
    );
    dcn_bench::maybe_run_observed_atlas();
}
