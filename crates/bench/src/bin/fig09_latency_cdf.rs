//! Fig 9 — I/O latency CDF: diskmap vs aio(4), 512-byte reads, I/O
//! window of 128 requests on one drive.
//!
//! Paper shape: the diskmap CDF sits strictly left of aio's — same
//! hardware, but aio completions are delayed by interrupt delivery +
//! kqueue and its higher per-request CPU cost inflates queueing.

use dcn_bench::storage::{run_aio, run_diskmap};
use dcn_bench::{print_table, Scale};
use dcn_simcore::Nanos;

fn main() {
    let scale = Scale::from_args();
    let horizon = Nanos::from_millis(if scale == Scale::Quick { 80 } else { 300 });
    let d = run_diskmap(1, 512, 128, horizon, 42);
    let a = run_aio(1, 512, 128, horizon, 42);
    let qs = [0.10, 0.25, 0.50, 0.75, 0.90, 0.99];
    let rows: Vec<Vec<String>> = qs
        .iter()
        .map(|&q| {
            vec![
                format!("p{:02.0}", q * 100.0),
                format!("{:.1}", d.latency.quantile(q)),
                format!("{:.1}", a.latency.quantile(q)),
            ]
        })
        .collect();
    print_table(
        "Fig 9: 512 B read latency quantiles (µs), window 128, 1 drive",
        &["quantile", "diskmap", "aio(4)"],
        &rows,
    );
    println!("\nCDF points (µs, fraction):");
    for (name, r) in [("diskmap", &d), ("aio", &a)] {
        let pts = r.latency.cdf();
        let sampled: Vec<String> = pts
            .iter()
            .step_by((pts.len() / 12).max(1))
            .map(|(v, f)| format!("({v:.0},{f:.2})"))
            .collect();
        println!("  {name}: {}", sampled.join(" "));
    }
    dcn_bench::maybe_run_observed_atlas();
}
