//! Fig 11 — Plaintext performance, Netflix (0%/100% BC) vs Atlas:
//! (a) network throughput, (b) CPU, (c) memory READ, (d) memory
//! WRITE, (e) read:network ratio, (f) CPU reads served from DRAM.
//!
//! Paper shapes: Atlas ≈ Netflix-100%BC ≈ NIC limit; Netflix-0%BC a
//! bit lower with ~2× the CPU of 100%BC; Atlas memory-read:network
//! ratio ≈ 1.0 (≤0.7 at low connection counts) vs ≈1.5 for Netflix;
//! Atlas CPU-LLC-miss reads ≈ 0.

use dcn_bench::sweep::{print_metric, sweep, Variant};
use dcn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let variants = [
        Variant::netflix(false, false),
        Variant::netflix(false, true),
        Variant::atlas(false),
    ];
    let curves = sweep(&variants, scale);
    print_metric(
        "Fig 11a: network throughput (Gb/s)",
        &curves,
        |a| &a.net_gbps,
        1,
    );
    print_metric("Fig 11b: CPU utilization (%)", &curves, |a| &a.cpu_pct, 0);
    print_metric(
        "Fig 11c: memory READ (Gb/s)",
        &curves,
        |a| &a.mem_read_gbps,
        1,
    );
    print_metric(
        "Fig 11d: memory WRITE (Gb/s)",
        &curves,
        |a| &a.mem_write_gbps,
        1,
    );
    print_metric(
        "Fig 11e: mem-read / net ratio",
        &curves,
        |a| &a.read_net_ratio,
        2,
    );
    print_metric(
        "Fig 11f: CPU DRAM reads (x1e8/s)",
        &curves,
        |a| &a.llc_miss_e8,
        2,
    );
    dcn_bench::maybe_run_observed_atlas();
}
