//! Ablation — tiered catalog: Zipf skew × cold-store latency ×
//! {no-cache, cache} × {fixed, autotuned} I/O window, on Atlas.
//!
//! The paper stores the whole catalog on local NVMe and dismisses a
//! DRAM buffer cache (<10% hit ratio on their traces, §2). The tier
//! engine moves the catalog's cold tail to a simulated object store
//! and keeps only the popular head on NVMe, so two of the paper's
//! assumptions become measurable knobs:
//!
//! * **cache** — the hot-chunk DMA cache on top of the hot tier. The
//!   honest comparison is DRAM-bytes-per-net-byte: every cache fill
//!   and hit readback is charged to the memory system, so if the hit
//!   ratio is low the cache shows up as pure DRAM overhead, which is
//!   exactly the paper's argument.
//! * **skew / latency** — how much popularity concentration the tier
//!   split needs before the cold store's WAN-class latency stops
//!   mattering, and what the residual misses cost (micro-cents).
//!
//! Emits `BENCH_tiers.json` (deterministic, byte-identical across
//! runs — same hand-rolled JSON discipline as `perf_baseline`).
//!
//! Usage:
//!   ablation_tiers                 # table + JSON to stdout
//!   ablation_tiers --out <path>    # also write the JSON to <path>
//!   ablation_tiers --write         # refresh BENCH_tiers.json (CWD)
//!   ablation_tiers --zipf <θ>      # restrict the skew axis to one θ
//!   ablation_tiers --catalog <n>   # catalog size (default 1M objects)

use dcn_atlas::{AtlasConfig, AutotuneConfig};
use dcn_bench::perf::fmt_f64;
use dcn_bench::{print_table, BenchArgs, Scale};
use dcn_mem::Fidelity;
use dcn_simcore::Nanos;
use dcn_store::Catalog;
use dcn_tier::{CacheConfig, ColdStoreConfig, TierConfig};
use dcn_workload::{run_scenario, FleetConfig, Scenario, ServerKind, TierMetrics};
use std::fmt::Write as _;

/// Bump on any key change.
const TIERS_SCHEMA_VERSION: u64 = 1;

struct Cell {
    name: String,
    zipf: f64,
    cold_latency_ms: u64,
    cache: bool,
    autotuned: bool,
    net_gbps: f64,
    responses: u64,
    dram_per_net_byte: f64,
    tier: TierMetrics,
}

impl Cell {
    fn to_json(&self, out: &mut String, indent: &str) {
        let i2 = format!("{indent}  ");
        let t = &self.tier;
        let _ = writeln!(out, "{indent}{{");
        let _ = writeln!(out, "{i2}\"name\": \"{}\",", self.name);
        let _ = writeln!(out, "{i2}\"zipf\": {},", fmt_f64(self.zipf));
        let _ = writeln!(out, "{i2}\"cold_latency_ms\": {},", self.cold_latency_ms);
        let _ = writeln!(out, "{i2}\"cache\": {},", self.cache);
        let _ = writeln!(out, "{i2}\"autotuned\": {},", self.autotuned);
        let _ = writeln!(out, "{i2}\"net_gbps\": {},", fmt_f64(self.net_gbps));
        let _ = writeln!(out, "{i2}\"responses\": {},", self.responses);
        let _ = writeln!(
            out,
            "{i2}\"dram_bytes_per_net_byte\": {},",
            fmt_f64(self.dram_per_net_byte)
        );
        let _ = writeln!(out, "{i2}\"hit_ratio\": {},", fmt_f64(t.hit_ratio));
        let _ = writeln!(out, "{i2}\"hot_hits\": {},", t.hot_hits);
        let _ = writeln!(out, "{i2}\"cold_misses\": {},", t.cold_misses);
        let _ = writeln!(out, "{i2}\"hot_count\": {},", t.hot_count);
        let _ = writeln!(out, "{i2}\"cold_bytes\": {},", t.cold_bytes);
        let _ = writeln!(out, "{i2}\"cold_requests\": {},", t.cold_requests);
        let _ = writeln!(out, "{i2}\"cold_cost_ucents\": {},", t.cold_cost_ucents);
        let _ = writeln!(out, "{i2}\"promotions\": {},", t.promotions);
        let _ = writeln!(out, "{i2}\"demotions\": {},", t.demotions);
        let _ = writeln!(out, "{i2}\"promote_deferred\": {},", t.promote_deferred);
        let _ = writeln!(out, "{i2}\"promoted_bytes\": {},", t.promoted_bytes);
        let _ = writeln!(out, "{i2}\"epochs\": {},", t.epochs);
        let _ = writeln!(out, "{i2}\"cache_hits\": {},", t.cache_hits);
        let _ = writeln!(out, "{i2}\"cache_misses\": {},", t.cache_misses);
        let _ = writeln!(
            out,
            "{i2}\"cache_hit_ratio\": {},",
            fmt_f64(t.cache_hit_ratio)
        );
        let _ = writeln!(out, "{i2}\"cache_dram_bytes\": {}", t.cache_dram_bytes);
        let _ = write!(out, "{indent}}}");
    }
}

fn tiers_document(seed: u64, clients: usize, catalog: u64, dur_ms: u64, cells: &[Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": {TIERS_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"bench\": \"ablation_tiers\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"clients\": {clients},");
    let _ = writeln!(out, "  \"catalog_objects\": {catalog},");
    let _ = writeln!(out, "  \"duration_ms\": {dur_ms},");
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        c.to_json(&mut out, "    ");
        let _ = writeln!(out, "{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let args = BenchArgs::parse();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        raw.iter()
            .position(|a| a == flag)
            .and_then(|i| raw.get(i + 1))
            .cloned()
    };
    let seed = args.seed_or(41);
    let n_files = args.catalog_or(1_000_000);
    let clients = match args.scale {
        Scale::Quick => 32,
        _ => 64,
    };
    // `--zipf` collapses the skew axis to one θ; the grid is the
    // default.
    let thetas: Vec<f64> = match (args.zipf, args.scale) {
        (Some(t), _) => vec![t],
        (None, Scale::Quick) => vec![0.9],
        (None, _) => vec![0.7, 0.9, 1.1],
    };
    let latencies_ms: &[u64] = match args.scale {
        Scale::Quick => &[20],
        _ => &[5, 20],
    };
    let tuners: &[bool] = match args.scale {
        Scale::Quick => &[false],
        _ => &[false, true],
    };
    let duration = args.scale.duration();

    let mut cells = Vec::new();
    for &theta in &thetas {
        for &lat_ms in latencies_ms {
            for &cache in &[false, true] {
                for &tuned in tuners {
                    let tier = TierConfig {
                        cold: ColdStoreConfig {
                            base_latency: Nanos::from_millis(lat_ms),
                            ..ColdStoreConfig::default()
                        },
                        ..TierConfig::default()
                    };
                    let cfg = AtlasConfig {
                        fidelity: Fidelity::Modeled,
                        tier: Some(tier),
                        tier_cache: cache.then(CacheConfig::default),
                        autotune: if tuned {
                            AutotuneConfig::on()
                        } else {
                            AutotuneConfig::default()
                        },
                        ..AtlasConfig::default()
                    };
                    let sc = Scenario {
                        server: ServerKind::Atlas(cfg),
                        fleet: FleetConfig {
                            n_clients: clients,
                            verify: false, // modeled fidelity
                            zipf: Some(theta),
                            ..FleetConfig::default()
                        },
                        catalog: Catalog::new(n_files, 300 * 1024, 4, seed),
                        warmup: Nanos::from_millis(250),
                        duration,
                        seed,
                        data_loss: 0.0,
                        faults: Default::default(),
                    };
                    let m = run_scenario(&sc);
                    let t = m
                        .tier
                        .expect("tier engine configured, tier metrics present");
                    let name = format!(
                        "z{theta:.1}_cold{lat_ms}ms_{}_{}",
                        if cache { "cache" } else { "nocache" },
                        if tuned { "tuned" } else { "fixed" }
                    );
                    eprintln!(
                        "  [{name}] net={:.2}Gbps hit={:.3} cold={}req cache_hit={:.3}",
                        m.net_gbps, t.hit_ratio, t.cold_requests, t.cache_hit_ratio
                    );
                    cells.push(Cell {
                        name,
                        zipf: theta,
                        cold_latency_ms: lat_ms,
                        cache,
                        autotuned: tuned,
                        net_gbps: m.net_gbps,
                        responses: m.responses,
                        dram_per_net_byte: if m.net_gbps > 0.0 {
                            ((m.mem_read_gbps + m.mem_write_gbps) / m.net_gbps).max(0.0)
                        } else {
                            0.0
                        },
                        tier: t,
                    });
                }
            }
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.2}", c.net_gbps),
                format!("{:.3}", c.tier.hit_ratio),
                c.tier.cold_requests.to_string(),
                format!("{:.1}", c.tier.cold_cost_ucents as f64 / 1e4),
                format!("{}/{}", c.tier.promotions, c.tier.demotions),
                format!("{:.3}", c.tier.cache_hit_ratio),
                format!("{:.3}", c.dram_per_net_byte),
            ]
        })
        .collect();
    print_table(
        &format!("Ablation: tiered catalog, {n_files} objects, {clients} conns (seed {seed})"),
        &[
            "cell",
            "net_gbps",
            "hot_hit",
            "cold_req",
            "cost_c¢",
            "promo/demo",
            "cache_hit",
            "dram/net",
        ],
        &rows,
    );
    println!(
        "\nReading: hot-tier hit ratio should clear 0.9 at θ≥0.9 (the seeded\n\
         hot set covers the Zipf head), cold-store cost scales with the\n\
         residual misses, and the cache cells pay for their hit ratio in\n\
         dram/net — if cache_hit is low, dram/net rises with no net win,\n\
         which is the paper's §2 argument against a buffer cache."
    );

    let doc = tiers_document(
        seed,
        clients,
        n_files,
        duration.as_nanos() / 1_000_000,
        &cells,
    );
    let mut wrote = false;
    if let Some(path) = value_of("--out") {
        std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("tiers JSON -> {path}");
        wrote = true;
    }
    if raw.iter().any(|a| a == "--write") {
        let path = "BENCH_tiers.json";
        std::fs::write(path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("tiers baseline refreshed -> {path}");
        wrote = true;
    }
    if !wrote {
        print!("{doc}");
    }
    dcn_bench::maybe_run_observed_atlas();
}
