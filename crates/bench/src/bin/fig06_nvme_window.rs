//! Fig 6 — NVMe controller latency and throughput vs I/O window
//! (16 KiB reads, one P3700-class drive, driven through diskmap).
//!
//! Paper shape: throughput saturates near the device limit by a
//! window of ~128 while request latency stays under 1 ms; past
//! saturation, latency grows linearly with the window (Little's law).

use dcn_bench::storage::run_diskmap;
use dcn_bench::{print_table, Scale};
use dcn_simcore::Nanos;

fn main() {
    let scale = Scale::from_args();
    let windows: &[usize] = match scale {
        Scale::Quick => &[1, 8, 64, 256],
        _ => &[1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256, 384, 512, 600],
    };
    let horizon = Nanos::from_millis(if scale == Scale::Quick { 120 } else { 400 });
    let rows: Vec<Vec<String>> = windows
        .iter()
        .map(|&w| {
            let r = run_diskmap(1, 16 * 1024, w, horizon, 42);
            vec![
                w.to_string(),
                format!("{:.3}", r.mean_latency_us / 1000.0),
                format!("{:.1}", r.throughput_gbps),
                r.ios.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig 6: NVMe latency & throughput vs I/O window (16 KiB reads, 1 drive)",
        &["window", "latency_ms", "gbps", "ios"],
        &rows,
    );
    dcn_bench::maybe_run_observed_atlas();
}
