//! Fig 13 — Encrypted performance, Netflix (0%/100% BC) vs Atlas:
//! the six panels of Fig 11 with AES-128-GCM on every body byte.
//!
//! Paper shapes: Atlas ≈ 72 Gb/s on four cores vs Netflix-0%BC ≈ 47
//! on eight saturated cores (~1.5×); Netflix memory-read:network ≈
//! 2.6 in both BC modes (out-of-place kTLS + NT stores), Atlas ≈ 1.5.

use dcn_bench::sweep::{print_metric, sweep, Variant};
use dcn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let variants = [
        Variant::netflix(true, false),
        Variant::netflix(true, true),
        Variant::atlas(true),
    ];
    let curves = sweep(&variants, scale);
    print_metric(
        "Fig 13a: network throughput (Gb/s)",
        &curves,
        |a| &a.net_gbps,
        1,
    );
    print_metric("Fig 13b: CPU utilization (%)", &curves, |a| &a.cpu_pct, 0);
    print_metric(
        "Fig 13c: memory READ (Gb/s)",
        &curves,
        |a| &a.mem_read_gbps,
        1,
    );
    print_metric(
        "Fig 13d: memory WRITE (Gb/s)",
        &curves,
        |a| &a.mem_write_gbps,
        1,
    );
    print_metric(
        "Fig 13e: mem-read / net ratio",
        &curves,
        |a| &a.read_net_ratio,
        2,
    );
    print_metric(
        "Fig 13f: CPU DRAM reads (x1e8/s)",
        &curves,
        |a| &a.llc_miss_e8,
        2,
    );
    dcn_bench::maybe_run_observed_atlas();
}
