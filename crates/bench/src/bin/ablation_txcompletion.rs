//! §4.1/§5 ablation — timely TX-completion notification.
//!
//! The paper observes Atlas's memory *writes* exceed its reads
//! because netmap reports TX completions lazily: buffers are not
//! recycled LIFO fast enough, the working set grows, and dirty DMA
//! buffers get evicted to DRAM before reuse. §5 proposes fine-grained
//! completion notification. This ablation sweeps the NIC's
//! completion-report batch (1 = the paper's proposal, larger =
//! netmap's batching) and reads the memory-write rate.

use dcn_atlas::AtlasConfig;
use dcn_bench::{print_table, BenchArgs, Scale};
use dcn_mem::Fidelity;
use dcn_netdev::NicConfig;
use dcn_simcore::Nanos;
use dcn_store::Catalog;
use dcn_workload::{run_scenario, FleetConfig, Scenario, ServerKind};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale;
    let seed = args.seed_or(31);
    let n = match scale {
        Scale::Quick => 600,
        _ => 2000,
    };
    let rows: Vec<Vec<String>> = [1usize, 8, 32, 128, 512]
        .iter()
        .map(|&batch| {
            let cfg = AtlasConfig {
                nic: NicConfig {
                    tx_report_batch: batch,
                    ..NicConfig::default()
                },
                fidelity: Fidelity::Modeled,
                ..AtlasConfig::default()
            };
            let sc = Scenario {
                server: ServerKind::Atlas(cfg),
                fleet: FleetConfig {
                    n_clients: n,
                    verify: false,
                    ..FleetConfig::default()
                },
                catalog: Catalog::paper(seed),
                warmup: Nanos::from_millis(400),
                duration: scale.duration(),
                seed,
                data_loss: 0.0,
                faults: Default::default(),
            };
            let m = run_scenario(&sc);
            vec![
                batch.to_string(),
                format!("{:.1}", m.net_gbps),
                format!("{:.1}", m.mem_read_gbps),
                format!("{:.1}", m.mem_write_gbps),
                format!("{:.2}", m.read_net_ratio),
            ]
        })
        .collect();
    print_table(
        &format!("Ablation §5: TX completion report batch, Atlas at {n} connections"),
        &["batch", "net_gbps", "memR", "memW", "R:net"],
        &rows,
    );
    println!(
        "\nSmaller batches = more timely buffer recycling = tighter LIFO reuse\n\
         = smaller working set in the LLC (the paper's §5 design principle)."
    );
    dcn_bench::maybe_run_observed_atlas();
}
