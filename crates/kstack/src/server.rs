//! The conventional-stack server: nginx + FreeBSD (stock or
//! Netflix-optimized) over the shared hardware models.

use crate::conn::{KConn, StagedResponse};
use dcn_atlas::server::parse_frame;
use dcn_atlas::{AdmissionConfig, ResourceSnapshot};
use dcn_crypto::{RecordCipher, RECORD_PAYLOAD_MAX};
use dcn_httpd::{parse_chunk_path, response_header, ResponseInfo};
use dcn_mem::{
    Agent, CoreSet, CostParams, Fidelity, HostMem, LlcConfig, MemSystem, PhysAlloc, PhysRegion,
    CHUNK_SIZE,
};
use dcn_netdev::{Nic, NicConfig, SentBurst, SgList, WireFrame};
use dcn_nvme::{FirmwareParams, NvmeCommand, NvmeConfig, NvmeDevice, NvmeStatus, Opcode, LBA_SIZE};
use dcn_obs::{
    CounterId, GaugeId, HistId, ProfHandle, ProfStage, Registry, StageProfiler, StallKind,
};
use dcn_packet::{FlowId, SeqNumber, TcpFlags, TcpRepr};
use dcn_simcore::{earliest, prf_bytes, Nanos, SimRng};
use dcn_srvcore::{AutotuneConfig, ControlPlane, CoreControl, IoTuner};
use dcn_store::{BufferCache, Catalog, CatalogBacking, FileId};
use dcn_tcpstack::{rst_for_syn, Endpoint, Tcb, TcbConfig, TcbEvent};
use dcn_tier::{GetTicket, Placement, TierConfig, TierEngine};
use std::collections::{BTreeSet, HashMap};

/// Which baseline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackVariant {
    /// Unmodified nginx/FreeBSD.
    Stock,
    /// The Netflix production stack (§2.1's optimizations).
    Netflix,
}

/// Configuration.
#[derive(Clone, Debug)]
pub struct KstackConfig {
    pub variant: StackVariant,
    /// The paper's baseline uses all 8 cores.
    pub cores: usize,
    pub encrypted: bool,
    /// Disk buffer cache capacity (the eval server has 128 GB RAM;
    /// most of it is page cache).
    pub bufcache_bytes: u64,
    /// Per-connection socket-buffer cap.
    pub sb_max: u64,
    /// Fraction of payload bytes the kernel TX path incidentally
    /// touches (mbuf/sf_buf handling, LRO merge inspection) —
    /// calibrated against Fig 11e's ~1.5× read ratio; see
    /// EXPERIMENTS.md.
    pub touch_fraction: f64,
    /// Fill granularity per disk I/O (FreeBSD MAXPHYS-style
    /// read-ahead unit).
    pub fill_bytes: u64,
    pub tcb: TcbConfig,
    pub nic: NicConfig,
    pub firmware: FirmwareParams,
    pub llc: LlcConfig,
    pub costs: CostParams,
    pub fidelity: Fidelity,
    pub server_endpoint: Endpoint,
    /// Overload policy: the same hysteretic admission watermarks the
    /// Atlas stack uses (connection cap + RST at SYN, 503 +
    /// Retry-After while the VM-pressure latch holds). The kernel
    /// stack's scarce resource is buffer-cache frames, not DMA
    /// buffers, so `pool_low_*` watches the cache's allocatable
    /// fraction; the slow-client sweeps are Atlas-only (socket
    /// buffers, not DMA buffers, absorb slow readers here).
    pub admission: AdmissionConfig,
    /// I/O-window autotuner knobs (shared `dcn-srvcore` control
    /// plane). The kernel stack has no per-connection fetch watermark
    /// to steer — read-ahead is a global kernel heuristic — so here
    /// the tuner is observational: fill completions feed it, its
    /// operating point is reportable, but it never gates I/O. Off by
    /// default.
    pub autotune: AutotuneConfig,
    /// Install the per-stage cycle/DRAM profiler. Off by default: no
    /// handle is installed anywhere, so sweeps pay one `None` check.
    /// The run is bit-identical either way (purely observational).
    pub profile: bool,
    /// Tiered catalog: objects outside the hot tier are fetched from
    /// a simulated cold object store over the network instead of the
    /// local NVMe namespace. `None` keeps the paper's all-hot flat
    /// namespace. The kernel stack gets no extra DMA cache knob — its
    /// buffer cache already absorbs repeat reads of promoted/cold
    /// objects.
    pub tier: Option<TierConfig>,
}

impl KstackConfig {
    #[must_use]
    pub fn netflix() -> Self {
        KstackConfig {
            variant: StackVariant::Netflix,
            cores: 8,
            encrypted: false,
            bufcache_bytes: 96 << 30,
            sb_max: 2 << 20,
            touch_fraction: 0.45,
            fill_bytes: 128 * 1024,
            tcb: TcbConfig::default(),
            nic: NicConfig {
                rings: 8,
                ..NicConfig::default()
            },
            firmware: FirmwareParams::p3700(),
            llc: LlcConfig::xeon_e5_2667v3(),
            costs: CostParams::default(),
            fidelity: Fidelity::Full,
            server_endpoint: Endpoint {
                mac: dcn_packet::MacAddr::from_host_id(1),
                ip: dcn_packet::Ipv4Addr::new(10, 0, 0, 1),
                port: 80,
            },
            admission: AdmissionConfig::default(),
            autotune: AutotuneConfig::default(),
            profile: false,
            tier: None,
        }
    }

    #[must_use]
    pub fn stock() -> Self {
        KstackConfig {
            variant: StackVariant::Stock,
            ..Self::netflix()
        }
    }
}

/// A disk fill in flight.
struct Fill {
    conn_slot: usize,
    file: FileId,
    file_off: u64,
    len: u64,
    pages: Vec<(u64, PhysRegion)>, // (page index, frame)
    issued_at: Nanos,
    /// How many times this fill has been (re)issued; device read
    /// errors retry up to [`MAX_FILL_ATTEMPTS`].
    attempts: u32,
}

/// Bounded retry for fills that complete with a device error — the
/// kernel-stack analogue of the buffered-I/O EIO retry path.
const MAX_FILL_ATTEMPTS: u32 = 4;

struct ConnSlot {
    conn: KConn,
    core: usize,
}

/// How one parsed request on a connection is answered.
enum Disposition {
    File(Option<FileId>),
    Unavailable,
    Malformed,
}

/// Pre-registered counter handles (per-core), resolved once at
/// construction so the hot path is a plain indexed add.
struct KstackIds {
    responses: Vec<CounterId>,
    disk_read_bytes: Vec<CounterId>,
    fill_retries: Vec<CounterId>,
    /// SYNs refused with RST by the admission policy.
    shed_new: Vec<CounterId>,
    /// Requests answered 503 + Retry-After while shedding.
    retry_503: Vec<CounterId>,
    /// Staging passes parked on buffer-cache VM pressure.
    empty_waits: Vec<CounterId>,
    /// Sample-point gauges, pre-registered so timed metric sampling
    /// does no per-sample name scans (`find_*`/`sum_prefixed` stay
    /// reserved for end-of-run export).
    bufcache_hit_ratio: GaugeId,
    nvme_read_errors: GaugeId,
    nvme_latency_spikes: GaugeId,
}

impl KstackIds {
    fn register(reg: &mut Registry, cores: usize) -> Self {
        KstackIds {
            responses: (0..cores)
                .map(|c| reg.counter_core("kstack.responses", c))
                .collect(),
            disk_read_bytes: (0..cores)
                .map(|c| reg.counter_core("kstack.disk_read_bytes", c))
                .collect(),
            fill_retries: (0..cores)
                .map(|c| reg.counter_core("kstack.fill_retries", c))
                .collect(),
            shed_new: (0..cores)
                .map(|c| reg.counter_core("kstack.overload.shed_new", c))
                .collect(),
            retry_503: (0..cores)
                .map(|c| reg.counter_core("kstack.overload.retry_503", c))
                .collect(),
            empty_waits: (0..cores)
                .map(|c| reg.counter_core("kstack.bufcache.empty_waits", c))
                .collect(),
            bufcache_hit_ratio: reg.gauge("kstack.bufcache_hit_ratio"),
            nvme_read_errors: reg.gauge("faults.nvme_read_errors"),
            nvme_latency_spikes: reg.gauge("faults.nvme_latency_spikes"),
        }
    }
}

/// Pre-registered `tier.*` handles; only present when `cfg.tier` is
/// set. Same metric names as the Atlas stack (minus the DMA-cache
/// family, which has no kernel-stack analogue) so reports aggregate
/// tiering identically on both stacks.
struct KTierIds {
    hot_hits: Vec<CounterId>,
    cold_misses: Vec<CounterId>,
    cold_bytes: Vec<CounterId>,
    cold_fetch_ns: HistId,
    hot_count: GaugeId,
    hit_ratio: GaugeId,
    cold_requests: GaugeId,
    cold_cost_ucents: GaugeId,
    promotions: GaugeId,
    demotions: GaugeId,
    promote_deferred: GaugeId,
    promoted_bytes: GaugeId,
    epochs: GaugeId,
}

impl KTierIds {
    fn register(reg: &mut Registry, cores: usize) -> Self {
        KTierIds {
            hot_hits: (0..cores)
                .map(|c| reg.counter_core("tier.hot_hits", c))
                .collect(),
            cold_misses: (0..cores)
                .map(|c| reg.counter_core("tier.cold_misses", c))
                .collect(),
            cold_bytes: (0..cores)
                .map(|c| reg.counter_core("tier.cold_bytes", c))
                .collect(),
            cold_fetch_ns: reg.histogram("tier.cold_fetch_ns", 1e5, 1e9, 40),
            hot_count: reg.gauge("tier.hot_count"),
            hit_ratio: reg.gauge("tier.hit_ratio"),
            cold_requests: reg.gauge("tier.cold_requests"),
            cold_cost_ucents: reg.gauge("tier.cold_cost_ucents"),
            promotions: reg.gauge("tier.promotions"),
            demotions: reg.gauge("tier.demotions"),
            promote_deferred: reg.gauge("tier.promote_deferred"),
            promoted_bytes: reg.gauge("tier.promoted_bytes"),
            epochs: reg.gauge("tier.epochs"),
        }
    }
}

/// The server.
pub struct KstackServer {
    pub cfg: KstackConfig,
    pub mem: MemSystem,
    pub host: HostMem,
    pub nic: Nic,
    pub cores: CoreSet,
    pub catalog: Catalog,
    pub bufcache: BufferCache,
    disks: Vec<NvmeDevice>,
    conns: HashMap<FlowId, usize>,
    slots: Vec<ConnSlot>,
    timers: BTreeSet<(Nanos, usize)>,
    timer_of: Vec<Option<Nanos>>,
    fills: HashMap<u16, Fill>,
    /// Tiering engine (`cfg.tier`); owns the cold store and the
    /// promotion/demotion policy.
    tier: Option<TierEngine>,
    tier_ids: Option<KTierIds>,
    /// Cold-store fills in flight, keyed by cold-store token (its own
    /// counter — NVMe cids are u16 and must stay a disjoint space).
    cold_fills: HashMap<u64, Fill>,
    next_cold: u64,
    /// Reusable cold-completion drain scratch.
    cold_scratch: Vec<GetTicket>,
    /// Ciphertext socket-buffer frame pool (kTLS output).
    ct_pool: Vec<PhysRegion>,
    /// Stock only: is this worker's event loop blocked in a
    /// synchronous sendfile I/O? (One outstanding fill per worker.)
    sync_busy: Vec<bool>,
    /// Stock only: connections whose staging is waiting for the
    /// worker to unblock.
    stage_waiting: Vec<std::collections::BTreeSet<usize>>,
    next_cid: u16,
    rx_slots: Vec<PhysRegion>,
    /// Per-core control-plane state (admission latch, I/O tuner,
    /// live-connection count) — the shared `dcn-srvcore` skeleton.
    ctl: Vec<CoreControl>,
    /// Connections whose staging hit buffer-cache VM pressure, parked
    /// until ACKs unpin pages.
    alloc_waiting: Vec<std::collections::BTreeSet<usize>>,
    /// Reusable RX-payload scratch: frames' TCP payloads are copied
    /// here instead of materializing a fresh `Vec` per frame.
    rx_scratch: Vec<u8>,
    /// Reusable per-call scratch for parsed request dispositions.
    disp_scratch: Vec<Disposition>,
    /// Reusable CQ-drain scratch for `advance`.
    cq_scratch: Vec<dcn_nvme::CompletionEntry>,
    /// Reusable plaintext→ciphertext staging scratch for the
    /// full-fidelity batch seal (one fill's records at a time).
    crypt_scratch: Vec<u8>,
    /// Reusable per-fill record-tag scratch (full fidelity).
    tag_scratch: Vec<[u8; 16]>,
    /// Reusable per-record plaintext source-region scratch.
    src_scratch: Vec<PhysRegion>,
    rng: SimRng,
    /// Unified metrics registry (`kstack.*{core=N}`); counters are
    /// bumped on the hot path through pre-registered handles.
    pub reg: Registry,
    ids: KstackIds,
    /// Per-stage cycle/DRAM profiler; `None` unless `cfg.profile`.
    profiler: Option<ProfHandle>,
    phys: PhysAlloc,
}

impl KstackServer {
    #[must_use]
    pub fn new(cfg: KstackConfig, catalog: Catalog, seed: u64) -> Self {
        let mut phys = PhysAlloc::new();
        let mut mem = MemSystem::new(cfg.llc, cfg.costs, Nanos::from_millis(1));
        let nvme_cfg = NvmeConfig {
            num_qpairs: 1, // the in-kernel stack uses shared kernel queues
            firmware: cfg.firmware,
            fidelity: cfg.fidelity,
            ..NvmeConfig::default()
        };
        let disks: Vec<NvmeDevice> = (0..catalog.n_disks())
            .map(|d| {
                NvmeDevice::new(
                    nvme_cfg,
                    Box::new(CatalogBacking::new(&catalog, d)),
                    seed ^ (d as u64) << 8,
                )
            })
            .collect();
        // Cap simulated cache frames: the model only needs enough
        // frames to exceed the LLC by a wide margin; beyond that more
        // DRAM-resident frames change nothing but memory usage of the
        // simulator itself.
        let cache_bytes = cfg.bufcache_bytes.min(6 << 30);
        let bufcache = BufferCache::new(cache_bytes, &mut phys);
        let ct_pool = (0..4096)
            .map(|_| phys.alloc(RECORD_PAYLOAD_MAX as u64 + 64))
            .collect();
        let rx_slots = (0..cfg.cores).map(|_| phys.alloc(2048)).collect();
        let mut reg = Registry::new();
        let ids = KstackIds::register(&mut reg, cfg.cores);
        let tier = cfg.tier.map(|tc| TierEngine::new(tc, &catalog, seed));
        let tier_ids = tier
            .is_some()
            .then(|| KTierIds::register(&mut reg, cfg.cores));
        let mut cores = CoreSet::new(cfg.cores, &cfg.costs, Nanos::from_millis(1), false);
        let profiler = cfg
            .profile
            .then(|| std::rc::Rc::new(std::cell::RefCell::new(StageProfiler::enabled(cfg.cores))));
        if let Some(p) = &profiler {
            cores.set_profiler(p.clone());
            mem.set_profiler(p.clone());
        }
        KstackServer {
            nic: Nic::new(NicConfig {
                rings: cfg.cores,
                fidelity: cfg.fidelity,
                ..cfg.nic
            }),
            cores,
            mem,
            host: HostMem::new(),
            catalog,
            bufcache,
            disks,
            conns: HashMap::new(),
            slots: Vec::new(),
            timers: BTreeSet::new(),
            timer_of: Vec::new(),
            fills: HashMap::new(),
            tier,
            tier_ids,
            cold_fills: HashMap::new(),
            next_cold: 0,
            cold_scratch: Vec::with_capacity(64),
            ct_pool,
            sync_busy: vec![false; cfg.cores],
            stage_waiting: vec![std::collections::BTreeSet::new(); cfg.cores],
            next_cid: 0,
            rx_slots,
            ctl: (0..cfg.cores)
                .map(|c| {
                    CoreControl::new(IoTuner::new(
                        cfg.autotune,
                        cfg.fill_bytes,
                        seed ^ 0x6B70 ^ ((c as u64) << 20),
                    ))
                })
                .collect(),
            alloc_waiting: vec![std::collections::BTreeSet::new(); cfg.cores],
            rx_scratch: Vec::new(),
            disp_scratch: Vec::new(),
            cq_scratch: Vec::new(),
            crypt_scratch: Vec::new(),
            tag_scratch: Vec::new(),
            src_scratch: Vec::new(),
            rng: SimRng::new(seed ^ 0x6B57),
            reg,
            ids,
            profiler,
            cfg,
            phys,
        }
    }

    /// Snapshot of the stage profiler, if this server was built with
    /// `cfg.profile`.
    #[must_use]
    pub fn prof_report(&self) -> Option<dcn_obs::ProfReport> {
        self.profiler.as_ref().map(|p| p.borrow().report())
    }

    /// Declare the stage subsequent cycle charges / DRAM traffic on
    /// `core` belong to. Free (one `None` check) when not profiling.
    #[inline]
    fn prof_stage(&self, core: usize, stage: ProfStage) {
        if let Some(p) = &self.profiler {
            p.borrow_mut().set_context(core, stage);
        }
    }

    /// Record a per-chunk cycle sample for quantile reporting.
    #[inline]
    fn prof_chunk(&self, stage: ProfStage, cycles: u64) {
        if let Some(p) = &self.profiler {
            p.borrow_mut().chunk_sample(stage, cycles);
        }
    }

    /// Count a stall/backpressure event for the stall-attribution
    /// breakdown.
    #[inline]
    fn prof_stall(&self, kind: StallKind) {
        if let Some(p) = &self.profiler {
            p.borrow_mut().stall(kind);
        }
    }

    /// Responses completed, served from the unified registry.
    #[must_use]
    pub fn responses(&self) -> u64 {
        self.reg.sum_prefixed("kstack.responses")
    }

    /// Bytes read from disk, served from the unified registry.
    #[must_use]
    pub fn disk_read_bytes(&self) -> u64 {
        self.reg.sum_prefixed("kstack.disk_read_bytes")
    }

    /// Publish sample-point gauges (TCP, NIC, buffer cache) into the
    /// registry. Called at report/sample time, never on the hot path.
    pub fn publish_obs(&mut self) {
        for core in 0..self.cfg.cores {
            dcn_tcpstack::publish_tcb_metrics(
                &mut self.reg,
                core,
                self.slots
                    .iter()
                    .filter(|s| s.core == core)
                    .map(|s| &s.conn.tcb),
            );
        }
        self.nic.publish_metrics(&mut self.reg);
        self.mem.counters.publish_metrics(&mut self.reg);
        self.reg
            .set(self.ids.bufcache_hit_ratio, self.bufcache.hit_ratio());
        let (errs, spikes) = self.disks.iter().fold((0u64, 0u64), |(e, s), d| {
            d.fault_injector()
                .map_or((e, s), |f| (e + f.read_errors, s + f.latency_spikes))
        });
        self.reg.set(self.ids.nvme_read_errors, errs as f64);
        self.reg.set(self.ids.nvme_latency_spikes, spikes as f64);
        if let (Some(tier), Some(ids)) = (&self.tier, &self.tier_ids) {
            self.reg.set(ids.hot_count, tier.hot_count() as f64);
            self.reg.set(ids.hit_ratio, tier.hit_ratio());
            self.reg
                .set(ids.cold_requests, tier.cold.stats.requests as f64);
            self.reg
                .set(ids.cold_cost_ucents, tier.cold.stats.cost_ucents as f64);
            self.reg.set(ids.promotions, tier.stats.promotions as f64);
            self.reg.set(ids.demotions, tier.stats.demotions as f64);
            self.reg
                .set(ids.promote_deferred, tier.stats.promote_deferred as f64);
            self.reg
                .set(ids.promoted_bytes, tier.stats.promoted_bytes as f64);
            self.reg.set(ids.epochs, tier.stats.epochs as f64);
        }
        if let Some(p) = &self.profiler {
            p.borrow().publish(&mut self.reg);
        }
    }

    /// The tiering engine, when `cfg.tier` is set.
    #[must_use]
    pub fn tier(&self) -> Option<&TierEngine> {
        self.tier.as_ref()
    }

    #[must_use]
    pub fn variant_label(&self) -> String {
        format!(
            "{}{}",
            match self.cfg.variant {
                StackVariant::Stock => "Stock FreeBSD/nginx",
                StackVariant::Netflix => "Netflix",
            },
            if self.cfg.encrypted { " TLS" } else { "" }
        )
    }

    fn core_of_flow(&self, flow: FlowId) -> usize {
        (flow.rss_hash() as usize) % self.cfg.cores
    }

    /// One core's resource observation: live connections, the buffer
    /// cache's allocatable-frame fraction (the kernel stack's scarce
    /// pool), and this core's share of in-flight disk fills against
    /// the kernel queue depth.
    fn resource_snapshot(&self, core: usize) -> ResourceSnapshot {
        let depth = f64::from(NvmeConfig::default().queue_depth);
        let fills = self
            .fills
            .values()
            .filter(|f| self.slots[f.conn_slot].core == core)
            .count();
        ResourceSnapshot {
            conns: self.ctl[core].live_conns,
            pool_free_frac: self.bufcache.allocatable_frac(),
            sq_occupancy: fills as f64 / depth,
        }
    }

    /// Is any core shedding (latch held) or at its connection cap?
    #[must_use]
    pub fn is_shedding(&self) -> bool {
        self.any_shedding()
            || self
                .ctl
                .iter()
                .any(|c| c.live_conns >= self.cfg.admission.max_conns_per_core)
    }

    // -------------------------------------------------------------- RX

    pub fn on_wire_rx(&mut self, now: Nanos, frames: Vec<WireFrame>) -> Vec<SentBurst> {
        let mut scratch = std::mem::take(&mut self.rx_scratch);
        for frame in frames {
            let Some((flow, tcp, payload)) = parse_frame(&frame) else {
                continue;
            };
            let core = self.core_of_flow(flow);
            self.prof_stage(core, ProfStage::Parse);
            // Copy the borrowed payload into the reusable RX scratch
            // (no per-frame Vec; growth past the warm-up high-water
            // mark is a counted fallback allocation).
            let cap_before = scratch.capacity();
            payload.copy_into(&mut scratch);
            dcn_obs::steady::note_growth(cap_before, scratch.capacity());
            self.nic
                .rx_deliver(core, now, frame, &mut self.mem, self.rx_slots[core]);
            self.handle_segment(now, core, flow, &tcp, &scratch);
        }
        self.rx_scratch = scratch;
        self.prof_stage(0, ProfStage::TxComplete);
        let bursts = self.nic.tx_drain_all(now, &mut self.mem, &self.host);
        self.collect_tx_completions();
        bursts
    }

    fn handle_segment(
        &mut self,
        now: Nanos,
        core: usize,
        flow: FlowId,
        tcp: &TcpRepr,
        payload: &[u8],
    ) {
        if tcp.flags.contains(TcpFlags::SYN) && !tcp.flags.contains(TcpFlags::ACK) {
            self.accept_conn(now, core, flow, tcp);
            return;
        }
        let Some(&slot_idx) = self.conns.get(&flow) else {
            return;
        };
        // Per-ACK kernel RX cost; Netflix's RSS-assisted LRO saves a
        // chunk of it (§2.1.3).
        let mut cycles = self.cfg.costs.kstack_rx_ack_cycles;
        if self.cfg.variant == StackVariant::Netflix {
            cycles = (cycles as f64 * (1.0 - self.cfg.costs.lro_rx_discount)) as u64;
        }
        self.prof_stage(core, ProfStage::Parse);
        let done = self.cores.run_on(core, now, cycles);
        let outs = self.slots[slot_idx].conn.tcb.on_segment(now, tcp, payload);
        for out in outs {
            self.nic.tx_rings[core].push(out.into_tx(0));
        }
        self.process_conn_events(done, slot_idx);
    }

    fn accept_conn(&mut self, now: Nanos, core: usize, flow: FlowId, syn: &TcpRepr) {
        if self.conns.contains_key(&flow) {
            return;
        }
        let remote = Endpoint {
            mac: dcn_packet::MacAddr::from_host_id(flow.src_ip.0),
            ip: flow.src_ip,
            port: flow.src_port,
        };
        // Admission control (same policy shape as Atlas): refuse the
        // SYN with an RST when past the cap or the VM-pressure latch.
        if !self.admit_syn(core) {
            let rst = rst_for_syn(self.cfg.server_endpoint, remote, syn);
            self.nic.tx_rings[core].push(rst.into_tx(0));
            self.reg.inc(self.ids.shed_new[core]);
            return;
        }
        let iss = SeqNumber(self.rng.next_u64() as u32);
        let (tcb, synack) = Tcb::accept(
            self.cfg.tcb,
            self.cfg.server_endpoint,
            remote,
            syn,
            iss,
            now,
        );
        let cipher = self.cfg.encrypted.then(|| {
            let mut key = [0u8; 16];
            dcn_simcore::prf_bytes(u64::from(flow.rss_hash()) ^ 0x6B65_7931, 0, &mut key);
            RecordCipher::new(&key, flow.rss_hash())
        });
        let slot_idx = self.slots.len();
        self.slots.push(ConnSlot {
            conn: KConn::new(tcb, cipher),
            core,
        });
        self.timer_of.push(None);
        self.conns.insert(flow, slot_idx);
        self.note_conn_opened(core);
        self.nic.tx_rings[core].push(synack.into_tx(0));
        self.sync_timer(slot_idx);
    }

    // ---------------------------------------------------------- events

    fn process_conn_events(&mut self, now: Nanos, slot_idx: usize) {
        let events = self.slots[slot_idx].conn.tcb.take_events();
        for ev in events {
            match ev {
                TcbEvent::Data(bytes) => self.on_request_bytes(now, slot_idx, &bytes),
                TcbEvent::AckedTo(off) => {
                    let (pages, regions, _) = self.slots[slot_idx].conn.release_acked(off);
                    let unpinned = !pages.is_empty();
                    for (f, p) in pages {
                        self.bufcache.unpin(f, p);
                    }
                    self.ct_pool.extend(regions);
                    if unpinned {
                        self.wake_alloc_waiters(now);
                    }
                }
                TcbEvent::NeedRetransmit { offset, len } => {
                    // Socket-buffer semantics: the data is still here.
                    let core = self.slots[slot_idx].core;
                    let slot = &mut self.slots[slot_idx];
                    if let Some(sg) = slot.conn.slice_sent(offset, len) {
                        let out = slot.conn.tcb.send_retransmit(now, offset, sg);
                        self.nic.tx_rings[core].push(out.into_tx(0));
                    }
                }
                _ => {}
            }
        }
        self.stage(now, slot_idx);
        self.pump_tx(now, slot_idx);
        self.sync_timer(slot_idx);
    }

    fn on_request_bytes(&mut self, now: Nanos, slot_idx: usize, bytes: &[u8]) {
        let core = self.slots[slot_idx].core;
        let n_files = self.catalog.n_files();
        let file_size = self.catalog.file_size();
        let encrypted = self.cfg.encrypted;
        let costs = self.cfg.costs;
        // Refresh the hysteretic latch against current resources so
        // keepalive requests on long-lived connections see the same
        // watermark state new SYNs do.
        let shedding = self.defer_request(core);
        let retry_after_ms = (self.cfg.admission.retry_after.as_nanos() / 1_000_000).max(1);
        let slot = &mut self.slots[slot_idx];
        if slot.conn.bad_request {
            // Parser wedged on a fatal error; a 431 is already queued
            // and anything further on this stream is ignored.
            return;
        }
        slot.conn.parser.push(bytes);
        let mut started = std::mem::take(&mut self.disp_scratch);
        let disp_cap_before = started.capacity();
        loop {
            match slot.conn.parser.next_request() {
                Ok(Some(_)) if shedding => started.push(Disposition::Unavailable),
                Ok(Some(req)) => started.push(Disposition::File(
                    parse_chunk_path(&req.path).filter(|f| f.0 < n_files),
                )),
                Ok(None) => break,
                Err(_) => {
                    started.push(Disposition::Malformed);
                    break;
                }
            }
        }
        dcn_obs::steady::note_growth(disp_cap_before, started.capacity());
        for disp in started.drain(..) {
            // nginx userspace work + the sendfile syscall.
            self.prof_stage(core, ProfStage::Parse);
            let done = self.cores.run_on(
                core,
                now,
                costs.nginx_request_cycles + costs.sendfile_call_cycles,
            );
            if let Disposition::File(Some(file)) = &disp {
                // Tier classification is per request (not per fill):
                // one heat bump per GET, hot/cold hit accounting here.
                if let Some(tier) = self.tier.as_mut() {
                    let ids = self.tier_ids.as_ref().expect("tier ids registered");
                    match tier.classify(*file) {
                        Placement::Hot => self.reg.inc(ids.hot_hits[core]),
                        Placement::Cold => self.reg.inc(ids.cold_misses[core]),
                    }
                }
            }
            let slot = &mut self.slots[slot_idx];
            match disp {
                Disposition::File(Some(file)) => {
                    let header = response_header(
                        ResponseInfo::Ok {
                            body_len: file_size,
                        },
                        encrypted,
                    );
                    let body_stream_off = slot.conn.tx_cursor + header.len() as u64;
                    slot.conn
                        .enqueue(SgList::from_bytes(header), Vec::new(), None);
                    slot.conn.staging.push_back(StagedResponse {
                        file,
                        body_len: file_size,
                        next_fill: 0,
                        body_stream_off,
                    });
                }
                Disposition::File(None) => {
                    let header = response_header(ResponseInfo::NotFound, encrypted);
                    slot.conn
                        .enqueue(SgList::from_bytes(header), Vec::new(), None);
                }
                Disposition::Unavailable => {
                    // Shedding: answer 503 + Retry-After instead of
                    // staging the body; the connection stays up.
                    let header = response_header(
                        ResponseInfo::ServiceUnavailable { retry_after_ms },
                        encrypted,
                    );
                    slot.conn
                        .enqueue(SgList::from_bytes(header), Vec::new(), None);
                    self.reg.inc(self.ids.retry_503[core]);
                }
                Disposition::Malformed => {
                    // One 431, then the stream is dead to the parser.
                    // No teardown: the conventional stack keeps the
                    // socket; it just never parses this stream again.
                    let header = response_header(ResponseInfo::HeaderTooLarge, encrypted);
                    slot.conn
                        .enqueue(SgList::from_bytes(header), Vec::new(), None);
                    slot.conn.bad_request = true;
                }
            }
            let _ = done;
        }
        self.disp_scratch = started;
    }

    /// Retry staging for connections parked on buffer-cache VM
    /// pressure: ACKs just unpinned pages, so frames may be
    /// allocatable again. Each parked connection gets one attempt and
    /// re-parks itself if still pressured.
    fn wake_alloc_waiters(&mut self, now: Nanos) {
        for core in 0..self.cfg.cores {
            if self.alloc_waiting[core].is_empty() {
                continue;
            }
            let waiting = std::mem::take(&mut self.alloc_waiting[core]);
            for slot_idx in waiting {
                self.stage(now, slot_idx);
                self.pump_tx(now, slot_idx);
                self.sync_timer(slot_idx);
            }
        }
    }

    /// sendfile staging: move body bytes from the buffer cache (or
    /// disk) into the socket buffer, up to sb_max.
    fn stage(&mut self, now: Nanos, slot_idx: usize) {
        let costs = self.cfg.costs;
        let fill_bytes = self.cfg.fill_bytes;
        let cores_n = self.cfg.cores;
        loop {
            let core = self.slots[slot_idx].core;
            let slot = &mut self.slots[slot_idx];
            let Some(st) = slot.conn.staging.front().copied_lite() else {
                break;
            };
            if st.next_fill >= st.body_len {
                slot.conn.staging.pop_front();
                slot.conn.responses_completed += 1;
                self.reg.inc(self.ids.responses[core]);
                continue;
            }
            if slot.conn.sb_bytes >= self.cfg.sb_max {
                // Direct field access: `slot` still borrows self.slots.
                if let Some(p) = &self.profiler {
                    p.borrow_mut().stall(StallKind::CwndLimited);
                }
                break; // socket buffer full: wait for ACKs
            }
            if slot.conn.fills_inflight > 0 && self.cfg.variant == StackVariant::Netflix {
                // Async sendfile pipelines one fill per connection.
                if let Some(p) = &self.profiler {
                    p.borrow_mut().stall(StallKind::NvmeWait);
                }
                break;
            }
            if self.cfg.variant == StackVariant::Stock && self.sync_busy[core] {
                // Synchronous sendfile: this worker is blocked inside
                // an earlier conn's I/O; nothing else stages on this
                // core until it returns (§2.1.1).
                if let Some(p) = &self.profiler {
                    p.borrow_mut().stall(StallKind::NvmeWait);
                }
                self.stage_waiting[core].insert(slot_idx);
                break;
            }
            let want = fill_bytes.min(st.body_len - st.next_fill);
            // Page-by-page cache lookup.
            let first_page = st.next_fill / CHUNK_SIZE;
            let last_page = (st.next_fill + want - 1) / CHUNK_SIZE;
            let mut all_hit = true;
            let mut lookup_cycles = 0;
            let mut pages = Vec::new();
            for p in first_page..=last_page {
                let (hit, cyc) = self.bufcache.lookup(st.file, p, &costs);
                lookup_cycles += cyc;
                match hit {
                    Some(r) => pages.push((p, r.region)),
                    None => {
                        all_hit = false;
                        // Unpin what we already pinned this round.
                        for (pp, _) in &pages {
                            self.bufcache.unpin(st.file, *pp);
                        }
                        pages.clear();
                        break;
                    }
                }
            }
            self.prof_stage(core, ProfStage::Fetch);
            let t_work = self.cores.run_on(core, now, lookup_cycles);
            if all_hit {
                // Cache hit: enqueue immediately.
                self.enqueue_body(t_work, slot_idx, st, want, pages);
                let slot = &mut self.slots[slot_idx];
                if let Some(front) = slot.conn.staging.front_mut() {
                    front.next_fill += want;
                }
                continue;
            }
            // Miss: allocate pages + issue the disk I/O. Allocation
            // can fail under extreme VM pressure (every page pinned
            // by socket buffers): back off until ACKs unpin pages.
            let mut frames = Vec::new();
            let mut alloc_cycles = 0;
            let mut pressured = false;
            for p in first_page..=last_page {
                match self.bufcache.try_insert(st.file, p, &costs, cores_n) {
                    Some((r, cyc)) => {
                        alloc_cycles += cyc;
                        frames.push((p, r.region));
                    }
                    None => {
                        pressured = true;
                        break;
                    }
                }
            }
            if pressured {
                for (p, _) in &frames {
                    self.bufcache.unpin(st.file, *p);
                }
                self.cores.run_on(core, now, alloc_cycles);
                // Park: retried when ACKs unpin socket-buffer pages.
                self.prof_stall(StallKind::PoolEmpty);
                if self.alloc_waiting[core].insert(slot_idx) {
                    self.reg.inc(self.ids.empty_waits[core]);
                }
                break;
            }
            self.prof_chunk(ProfStage::Fetch, alloc_cycles + costs.kernel_io_cycles);
            let t_alloc = self
                .cores
                .run_on(core, now, alloc_cycles + costs.kernel_io_cycles);
            // Cold objects fetch from the object store over the
            // network instead of the local NVMe namespace; the frames
            // land in the same buffer cache either way, so repeat
            // reads of a cold object hit the page cache above.
            let cold = self
                .tier
                .as_ref()
                .is_some_and(|t| t.placement(st.file) == Placement::Cold);
            if cold {
                self.issue_cold_fill(t_alloc, slot_idx, st, want, frames);
            } else {
                self.issue_fill(t_alloc, slot_idx, st, want, frames);
            }
            let slot = &mut self.slots[slot_idx];
            if let Some(front) = slot.conn.staging.front_mut() {
                front.next_fill += want;
            }
            slot.conn.fills_inflight += 1;
            if self.cfg.variant == StackVariant::Stock {
                // The worker now blocks until this I/O completes.
                self.sync_busy[core] = true;
                break;
            }
        }
    }

    fn issue_fill(
        &mut self,
        now: Nanos,
        slot_idx: usize,
        st: StagedResponse,
        len: u64,
        pages: Vec<(u64, PhysRegion)>,
    ) {
        let loc = self.catalog.locate(st.file, st.next_fill);
        let aligned = len.div_ceil(LBA_SIZE) * LBA_SIZE;
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        // PRP list = the cache page frames.
        let mut prp: Vec<PhysRegion> = Vec::new();
        let mut remaining = aligned;
        for (_, frame) in &pages {
            let n = remaining.min(CHUNK_SIZE);
            prp.push(frame.slice(0, n));
            remaining -= n;
            if remaining == 0 {
                break;
            }
        }
        let dev = &mut self.disks[loc.disk];
        let pushed = dev.qpair(0).sq_push(NvmeCommand {
            opcode: Opcode::Read,
            cid,
            nsid: loc.nsid,
            slba: loc.dev_offset / LBA_SIZE,
            nlb: (aligned / LBA_SIZE) as u32,
            prp,
        });
        assert!(pushed, "kernel NVMe queue overflow");
        dev.ring_sq_doorbell(now, 0);
        self.fills.insert(
            cid,
            Fill {
                conn_slot: slot_idx,
                file: st.file,
                file_off: st.next_fill,
                len,
                pages,
                issued_at: now,
                attempts: 1,
            },
        );
        let core = self.slots[slot_idx].core;
        self.reg.add(self.ids.disk_read_bytes[core], aligned);
    }

    /// Issue a cold-tier byte-range GET into freshly allocated buffer
    /// cache frames. Mirrors [`Self::issue_fill`] but the bytes arrive
    /// over the NIC — no SQE, no doorbell, and the I/O tuner never
    /// sees these completions (it steers NVMe windows, not WAN
    /// latency). Stock's synchronous-sendfile block applies here too:
    /// the worker would block inside a remote read exactly as it does
    /// on a local one.
    fn issue_cold_fill(
        &mut self,
        now: Nanos,
        slot_idx: usize,
        st: StagedResponse,
        len: u64,
        pages: Vec<(u64, PhysRegion)>,
    ) {
        let aligned = len.div_ceil(LBA_SIZE) * LBA_SIZE;
        let token = self.next_cold;
        self.next_cold += 1;
        let tier = self.tier.as_mut().expect("cold fill without tier");
        tier.cold_fetch(now, st.file, st.next_fill, aligned, token);
        self.cold_fills.insert(
            token,
            Fill {
                conn_slot: slot_idx,
                file: st.file,
                file_off: st.next_fill,
                len,
                pages,
                issued_at: now,
                attempts: 1,
            },
        );
        let core = self.slots[slot_idx].core;
        self.reg.add(self.ids.disk_read_bytes[core], aligned);
    }

    /// A fill came back with a device error: re-issue the same read
    /// into the same cache frames, up to [`MAX_FILL_ATTEMPTS`] total
    /// attempts; past that the fill is abandoned (the connection
    /// degrades — its stream stalls at the missing range).
    fn retry_fill(&mut self, now: Nanos, cid: u16) {
        let Some(fill) = self.fills.remove(&cid) else {
            return;
        };
        let slot_idx = fill.conn_slot;
        let core = self.slots[slot_idx].core;
        self.prof_stage(core, ProfStage::Fetch);
        self.cores.run_on(
            core,
            now + Nanos::from_nanos(self.cfg.costs.interrupt_latency_ns),
            self.cfg.costs.interrupt_cycles,
        );
        if self.cfg.variant == StackVariant::Stock {
            // The synchronous worker was blocked for the failed
            // attempt too; charge that interval before re-blocking
            // (or unblocking, if we give up).
            let blocked_ns = (now.saturating_sub(fill.issued_at)).as_nanos();
            self.cores.run_on(
                core,
                fill.issued_at,
                self.cfg.costs.ns_to_cycles(blocked_ns),
            );
        }
        if fill.attempts >= MAX_FILL_ATTEMPTS {
            let slot = &mut self.slots[slot_idx];
            slot.conn.fills_inflight -= 1;
            if self.cfg.variant == StackVariant::Stock {
                self.sync_busy[core] = false;
            }
            self.sync_timer(slot_idx);
            return;
        }
        self.reg.inc(self.ids.fill_retries[core]);
        let loc = self.catalog.locate(fill.file, fill.file_off);
        let aligned = fill.len.div_ceil(LBA_SIZE) * LBA_SIZE;
        let new_cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        let mut prp: Vec<PhysRegion> = Vec::new();
        let mut remaining = aligned;
        for (_, frame) in &fill.pages {
            let n = remaining.min(CHUNK_SIZE);
            prp.push(frame.slice(0, n));
            remaining -= n;
            if remaining == 0 {
                break;
            }
        }
        let dev = &mut self.disks[loc.disk];
        let pushed = dev.qpair(0).sq_push(NvmeCommand {
            opcode: Opcode::Read,
            cid: new_cid,
            nsid: loc.nsid,
            slba: loc.dev_offset / LBA_SIZE,
            nlb: (aligned / LBA_SIZE) as u32,
            prp,
        });
        assert!(pushed, "kernel NVMe queue overflow");
        dev.ring_sq_doorbell(now, 0);
        self.reg.add(self.ids.disk_read_bytes[core], aligned);
        self.fills.insert(
            new_cid,
            Fill {
                issued_at: now,
                attempts: fill.attempts + 1,
                ..fill
            },
        );
    }

    /// Arm the seeded device fault injectors. The in-kernel stack has
    /// no diskmap SQ, so `sq_reject_p` does not apply here; link and
    /// client faults live in the workload harness.
    pub fn inject_faults(&mut self, f: &dcn_faults::FaultConfig, seed: u64) {
        for (d, dev) in self.disks.iter_mut().enumerate() {
            dev.set_faults(f.nvme, seed ^ ((d as u64 + 1) << 32));
        }
    }

    /// Disk fill completed: enqueue the body bytes (and for stock,
    /// unblock the core).
    fn complete_fill(&mut self, now: Nanos, cid: u16) {
        let Some(fill) = self.fills.remove(&cid) else {
            return;
        };
        let core = self.slots[fill.conn_slot].core;
        // Feed the fill's completion latency to the core's I/O tuner.
        // Observational here: the kernel stack's read-ahead is a
        // global heuristic with no per-core window to steer (see
        // DESIGN.md §12), but the shared control plane keeps the two
        // stacks' telemetry comparable.
        let lat = now.saturating_sub(fill.issued_at).as_nanos();
        let outstanding = self.fills.len();
        self.observe_io_completion(
            core,
            lat,
            outstanding,
            usize::from(NvmeConfig::default().queue_depth),
        );
        self.finish_fill(now, fill);
    }

    /// Shared completion tail for NVMe and cold-tier fills: interrupt
    /// and completion cost, the stock blocked-interval charge, body
    /// enqueue, and the restage/unblock cascade.
    fn finish_fill(&mut self, now: Nanos, fill: Fill) {
        let slot_idx = fill.conn_slot;
        let core = self.slots[slot_idx].core;
        // Interrupt + completion handling.
        self.prof_stage(core, ProfStage::Fetch);
        let irq_done = self.cores.run_on(
            core,
            now + Nanos::from_nanos(self.cfg.costs.interrupt_latency_ns),
            self.cfg.costs.interrupt_cycles,
        );
        if self.cfg.variant == StackVariant::Stock {
            // Synchronous sendfile (§2.1.1): the worker's whole event
            // loop was blocked from issue to completion — nothing
            // else ran on this core meanwhile, which is the
            // throughput collapse Fig 1 shows for stock at 0% BC.
            let blocked_ns = (now.saturating_sub(fill.issued_at)).as_nanos();
            self.cores.run_on(
                core,
                fill.issued_at,
                self.cfg.costs.ns_to_cycles(blocked_ns),
            );
            self.sync_busy[core] = false;
        }
        let st = StagedResponse {
            file: fill.file,
            body_len: self.catalog.file_size(),
            next_fill: fill.file_off,
            body_stream_off: 0, // recomputed inside enqueue_body
        };
        self.enqueue_body(irq_done, slot_idx, st, fill.len, fill.pages);
        let slot = &mut self.slots[slot_idx];
        slot.conn.fills_inflight -= 1;
        self.stage(irq_done, slot_idx);
        self.pump_tx(irq_done, slot_idx);
        self.sync_timer(slot_idx);
        // Stock: the unblocked worker services connections that were
        // waiting on it, until it blocks again.
        let core2 = self.slots[slot_idx].core;
        while !self.sync_busy[core2] {
            let Some(&waiting) = self.stage_waiting[core2].iter().next() else {
                break;
            };
            self.stage_waiting[core2].remove(&waiting);
            self.stage(irq_done, waiting);
            self.pump_tx(irq_done, waiting);
            self.sync_timer(waiting);
        }
    }

    /// Move body bytes into the socket buffer, encrypting per the
    /// variant's TLS design.
    fn enqueue_body(
        &mut self,
        now: Nanos,
        slot_idx: usize,
        st: StagedResponse,
        len: u64,
        pages: Vec<(u64, PhysRegion)>,
    ) {
        let costs = self.cfg.costs;
        let core = self.slots[slot_idx].core;
        let encrypted = self.cfg.encrypted;
        let variant = self.cfg.variant;
        let file_off = st.next_fill;

        if !encrypted {
            // Plaintext sendfile: map the pinned pages straight into
            // the socket buffer (sf_buf). The kernel still touches a
            // fraction of the data on the TX path.
            let mut sg = SgList::empty();
            let mut remaining = len;
            let mut pinned = Vec::new();
            for (p, frame) in &pages {
                let n = remaining.min(CHUNK_SIZE);
                sg.push_region(frame.slice(0, n));
                pinned.push((st.file, *p));
                remaining -= n;
                if remaining == 0 {
                    break;
                }
            }
            // At full fidelity the cache pages must really hold the
            // file content (the NIC materializes from them). Fills
            // wrote them via device DMA; cache hits reuse them.
            let slot = &mut self.slots[slot_idx];
            slot.conn.enqueue(sg, pinned, None);
            // Plaintext "chunk" = one sendfile fill staged into the
            // socket buffer.
            if let Some(p) = &self.profiler {
                p.borrow_mut().chunk_done(core);
            }
            return;
        }

        // Encrypted: record-ize the plaintext. At full fidelity the
        // fill's stream-contiguous records are sealed in one batch
        // pass up front ([`RecordCipher::seal_records`] shares the
        // cipher setup across the run); the per-record loop below
        // models the costs and stages each ciphertext region.
        if self.cfg.fidelity == Fidelity::Full {
            let cap_before = self.crypt_scratch.capacity();
            self.crypt_scratch.clear();
            self.crypt_scratch.resize(len as usize, 0);
            dcn_obs::steady::note_growth(cap_before, self.crypt_scratch.capacity());
            let mut off = 0usize;
            for (_, frame) in &pages {
                if off >= len as usize {
                    break;
                }
                let n = (len as usize - off).min(CHUNK_SIZE as usize);
                self.host
                    .read(frame.addr, &mut self.crypt_scratch[off..off + n]);
                off += n;
            }
            let tag_cap_before = self.tag_scratch.capacity();
            self.tag_scratch.clear();
            let cipher = self.slots[slot_idx]
                .conn
                .cipher
                .as_ref()
                .expect("encrypted conn");
            cipher.seal_records(file_off, &mut self.crypt_scratch, &mut self.tag_scratch);
            dcn_obs::steady::note_growth(tag_cap_before, self.tag_scratch.capacity());
        }
        let mut off_in_fill = 0u64;
        while off_in_fill < len {
            self.prof_stage(core, ProfStage::Encrypt);
            let rec_plain_off = file_off + off_in_fill;
            debug_assert_eq!(rec_plain_off % RECORD_PAYLOAD_MAX as u64, 0);
            let rec_plain = (st.body_len - rec_plain_off)
                .min(RECORD_PAYLOAD_MAX as u64)
                .min(len - off_in_fill);
            // Gather the plaintext source regions into the reusable
            // scratch (no per-record SgList spine allocation).
            let src_cap_before = self.src_scratch.capacity();
            self.src_scratch.clear();
            let mut remaining = rec_plain;
            let mut page_cursor = (off_in_fill / CHUNK_SIZE) as usize;
            let mut in_page = off_in_fill % CHUNK_SIZE;
            while remaining > 0 {
                let (_, frame) = pages[page_cursor];
                let n = remaining.min(CHUNK_SIZE - in_page);
                self.src_scratch.push(frame.slice(in_page, n));
                remaining -= n;
                in_page = 0;
                page_cursor += 1;
            }
            dcn_obs::steady::note_growth(src_cap_before, self.src_scratch.capacity());
            let ct_region = self.ct_pool.pop().unwrap_or_else(|| {
                // The pool grows on demand: the real bound on
                // ciphertext socket-buffer memory is sb_max per
                // connection, enforced at staging time.
                self.phys.alloc(RECORD_PAYLOAD_MAX as u64 + 64)
            });
            let ct_region = ct_region.slice(0, rec_plain);
            let mut cycles = (rec_plain as f64 * costs.aes_gcm_cycles_per_byte) as u64;
            match variant {
                StackVariant::Netflix => {
                    // kTLS: the sendfile path hands the record to a
                    // dedicated TLS kernel thread (§2.1.4). By the
                    // time that thread runs, the DMA-fresh pages have
                    // aged out of the LLC (Fig 4's second flush), so
                    // the plaintext read comes from DRAM; the
                    // ciphertext goes out with ISA-L non-temporal
                    // stores.
                    for i in 0..self.src_scratch.len() {
                        let r = self.src_scratch[i];
                        self.mem.flush_delayed(now, r);
                        cycles += self.mem.cpu_read(now, r).stall_cycles;
                    }
                    self.mem.cpu_write_nt(now, ct_region);
                }
                StackVariant::Stock => {
                    // Userspace OpenSSL: read() copy to user, encrypt,
                    // write() copy to socket buffer: two copies + two
                    // syscalls per record.
                    cycles += 2 * costs.syscall_cycles;
                    cycles += (2.0 * rec_plain as f64 * costs.memcpy_cycles_per_byte) as u64;
                    for i in 0..self.src_scratch.len() {
                        let r = self.src_scratch[i];
                        cycles += self.mem.cpu_read(now, r).stall_cycles;
                    }
                    // user buffer write + read back
                    cycles += self.mem.cpu_write(now, ct_region).stall_cycles;
                    cycles += self.mem.cpu_read(now, ct_region).stall_cycles;
                    cycles += self.mem.cpu_write(now, ct_region).stall_cycles;
                }
            }
            // Encrypted "chunk" = one TLS record through the variant's
            // crypto path.
            if let Some(p) = &self.profiler {
                let mut p = p.borrow_mut();
                p.add_encrypt_bytes(rec_plain);
                p.chunk_sample(ProfStage::Encrypt, cycles);
                p.chunk_done(core);
            }
            let t_enc = self.cores.run_on(core, now, cycles);
            // Real encryption at full fidelity: the batch pre-pass
            // already sealed this record in the scratch; copy its
            // ciphertext into the socket-buffer region.
            let tag = if self.cfg.fidelity == Fidelity::Full {
                let s = off_in_fill as usize;
                self.host.write(
                    ct_region.addr,
                    &self.crypt_scratch[s..s + rec_plain as usize],
                );
                self.tag_scratch[(off_in_fill / RECORD_PAYLOAD_MAX as u64) as usize]
            } else {
                [0u8; 16]
            };
            let mut rec_hdr = [0x17, 0x03, 0x03, 0, 0];
            rec_hdr[3..5]
                .copy_from_slice(&u16::try_from(rec_plain + 16).expect("fits").to_be_bytes());
            // TLS framing (5-byte record header, 16-byte GCM tag)
            // rides inline in the chunk — no heap allocation per
            // record.
            let mut sg = SgList::empty();
            sg.push_inline(&rec_hdr);
            sg.push_region(ct_region);
            sg.push_inline(&tag);
            let slot = &mut self.slots[slot_idx];
            slot.conn
                .enqueue(sg, Vec::new(), Some(ct_region.slice(0, 0).slice(0, 0)));
            // Track the full pool region for release (not the
            // truncated slice).
            if let Some(last) = slot.conn.sendq.back_mut() {
                last.ct_region = Some(PhysRegion::new(
                    ct_region.addr,
                    RECORD_PAYLOAD_MAX as u64 + 64,
                ));
            }
            off_in_fill += rec_plain;
            let _ = t_enc;
        }
        // Encrypted path: unpin all the fill's pages now.
        for (p, _) in &pages {
            self.bufcache.unpin(st.file, *p);
        }
    }

    /// Send from socket buffers as windows allow.
    fn pump_tx(&mut self, now: Nanos, slot_idx: usize) {
        let core = self.slots[slot_idx].core;
        let costs = self.cfg.costs;
        // Batched packetize: the first TSO send of this pump pays the
        // full per-op cost; subsequent sends of the same connection in
        // the same pass reuse the hot TCB/socket state and the shared
        // doorbell at the reduced batched cost (mirrors Atlas's
        // per-sweep batching).
        let mut first_op = true;
        loop {
            // TX-ring backpressure: unsent data stays in the socket
            // buffer until slots free up.
            if self.nic.tx_rings[core].space() == 0 {
                break;
            }
            self.prof_stage(core, ProfStage::Packetize);
            let slot = &mut self.slots[slot_idx];
            let usable = slot.conn.tcb.usable_window();
            let tso_max = u64::from(slot.conn.tcb.cfg.tso_max);
            let budget = usable.min(tso_max);
            if budget < u64::from(slot.conn.tcb.cfg.mss) && slot.conn.unsent() > budget {
                break;
            }
            let Some((_, sg)) = slot.conn.take_for_tx(budget) else {
                break;
            };
            let n_segs = sg.len().div_ceil(u64::from(slot.conn.tcb.cfg.mss));
            let tx_op = if first_op {
                costs.tcp_tx_op_cycles
            } else {
                costs.tcp_tx_batched_op_cycles
            };
            first_op = false;
            let mut cycles = tx_op + n_segs * costs.kstack_tx_segment_cycles;
            // The TCP output path walks the mbuf chain at transmit
            // time: consume-once touches of a fraction of the payload
            // (sf_buf mapping, LRO bookkeeping) — by now the data has
            // usually aged out of the LLC.
            let touch = self.cfg.touch_fraction;
            for r in sg.regions() {
                let t = r.slice(0, ((r.len as f64) * touch) as u64);
                if t.len > 0 {
                    cycles += self.mem.cpu_read_once(now, t).stall_cycles;
                }
            }
            let out = slot.conn.tcb.send_data(now, sg, false);
            self.nic.tx_rings[core].push(out.into_tx(0));
            // Direct field access: `slot` still borrows self.slots.
            if let Some(p) = &self.profiler {
                p.borrow_mut().chunk_sample(ProfStage::Packetize, cycles);
            }
            self.cores.run_on(core, now, cycles);
        }
    }

    /// Run tier epoch work and land completed cold-store fills. The
    /// bytes arrive over the NIC into the buffer-cache frames the fill
    /// pinned at issue, then take the normal fill-completion tail —
    /// minus the I/O-tuner observation (WAN latency must not steer the
    /// NVMe window).
    fn drain_cold(&mut self, now: Nanos) {
        let Some(tier) = self.tier.as_mut() else {
            return;
        };
        tier.maybe_epoch(now);
        let mut tickets = std::mem::take(&mut self.cold_scratch);
        tickets.clear();
        tier.drain_serving(now, &mut tickets);
        for tk in tickets.drain(..) {
            let Some(fill) = self.cold_fills.remove(&tk.token) else {
                continue;
            };
            let core = self.slots[fill.conn_slot].core;
            self.prof_stage(core, ProfStage::Fetch);
            // NIC DMA writes the object bytes into the cache frames,
            // page by page — same layout the NVMe PRP list would use.
            let mut remaining = tk.len;
            for (p, frame) in &fill.pages {
                let n = remaining.min(CHUNK_SIZE);
                let region = frame.slice(0, n);
                if self.cfg.fidelity == Fidelity::Full {
                    let seed = self.catalog.file_seed(fill.file);
                    self.host
                        .update_region(region, |data| prf_bytes(seed, p * CHUNK_SIZE, data));
                }
                self.mem.dma_write(now, Agent::NicDma, region);
                remaining -= n;
                if remaining == 0 {
                    break;
                }
            }
            if let Some(ids) = &self.tier_ids {
                self.reg.add(ids.cold_bytes[core], tk.len);
                self.reg.observe(
                    ids.cold_fetch_ns,
                    tk.done_at.saturating_sub(tk.issued_at).as_nanos() as f64,
                );
            }
            self.finish_fill(now, fill);
        }
        self.cold_scratch = tickets;
    }

    // ------------------------------------------------------- timekeeping

    #[must_use]
    pub fn poll_at(&self) -> Option<Nanos> {
        let disks = self
            .disks
            .iter()
            .fold(None, |acc, d| earliest(acc, d.poll_at()));
        let timer = self.timers.iter().next().map(|(d, _)| *d);
        let tier = self
            .tier
            .as_ref()
            .map(TierEngine::poll_at)
            .filter(|&at| at != Nanos::MAX);
        earliest(earliest(earliest(disks, timer), self.nic.poll_at()), tier)
    }

    pub fn advance(&mut self, now: Nanos) -> Vec<SentBurst> {
        // Disk completions. Disk-controller DMA into cache frames is
        // fetch-stage memory traffic.
        self.prof_stage(0, ProfStage::Fetch);
        let mut done = std::mem::take(&mut self.cq_scratch);
        let cap_before = done.capacity();
        for disk in &mut self.disks {
            disk.advance(now, &mut self.mem, &mut self.host);
            disk.qpair(0).cq_consume_into(64, &mut done);
        }
        dcn_obs::steady::note_growth(cap_before, done.capacity());
        for e in done.drain(..) {
            if e.status == NvmeStatus::Success {
                self.complete_fill(now, e.cid);
            } else {
                self.retry_fill(now, e.cid);
            }
        }
        self.cq_scratch = done;
        // Cold-tier completions + epoch work (no-op without a tier).
        if self.tier.is_some() {
            self.drain_cold(now);
        }
        // TCP timers.
        let due: Vec<usize> = self
            .timers
            .range(..=(now, usize::MAX))
            .map(|&(_, s)| s)
            .collect();
        for slot_idx in due {
            self.slots[slot_idx].conn.tcb.on_timer(now);
            self.process_conn_events(now, slot_idx);
        }
        self.prof_stage(0, ProfStage::TxComplete);
        let bursts = self.nic.tx_drain_all(now, &mut self.mem, &self.host);
        self.collect_tx_completions();
        bursts
    }

    fn collect_tx_completions(&mut self) {
        for core in 0..self.cfg.cores {
            // The kernel stack keeps data until ACKed (not until TX),
            // so completions carry no buffer tokens; just drain them.
            let _ = self.nic.tx_rings[core].txsync_collect();
        }
    }

    fn sync_timer(&mut self, slot_idx: usize) {
        let new = self.slots[slot_idx].conn.tcb.poll_at();
        let old = self.timer_of[slot_idx];
        if old == new {
            return;
        }
        if let Some(d) = old {
            self.timers.remove(&(d, slot_idx));
        }
        if let Some(d) = new {
            self.timers.insert((d, slot_idx));
        }
        self.timer_of[slot_idx] = new;
    }

    /// Buffer-cache hit ratio observed (checks the BC workload knobs).
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        self.bufcache.hit_ratio()
    }

    pub fn phys_mut(&mut self) -> &mut PhysAlloc {
        &mut self.phys
    }
}

/// The shared per-core control-loop skeleton (admission, shedding,
/// connection accounting, I/O tuner) — same trait Atlas implements,
/// so the two stacks cannot drift on policy.
impl ControlPlane for KstackServer {
    fn admission_cfg(&self) -> AdmissionConfig {
        self.cfg.admission
    }
    fn n_cores(&self) -> usize {
        self.cfg.cores
    }
    fn resource_snapshot(&self, core: usize) -> ResourceSnapshot {
        KstackServer::resource_snapshot(self, core)
    }
    fn core_control(&mut self, core: usize) -> &mut CoreControl {
        &mut self.ctl[core]
    }
    fn core_control_ref(&self, core: usize) -> &CoreControl {
        &self.ctl[core]
    }
}

/// Tiny helper: `VecDeque::front().copied()` for non-Copy elements we
/// only need a cheap projection of.
trait FrontCopiedLite {
    fn copied_lite(&self) -> Option<StagedResponse>;
}

impl FrontCopiedLite for Option<&StagedResponse> {
    fn copied_lite(&self) -> Option<StagedResponse> {
        self.map(|s| StagedResponse {
            file: s.file,
            body_len: s.body_len,
            next_fill: s.next_fill,
            body_stream_off: s.body_stream_off,
        })
    }
}
