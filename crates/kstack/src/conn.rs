//! Conventional-stack connection state: the socket buffer.

use dcn_httpd::RequestParser;
use dcn_mem::PhysRegion;
use dcn_netdev::SgList;
use dcn_store::FileId;
use dcn_tcpstack::Tcb;
use std::collections::VecDeque;

/// One run of sendable bytes in the socket buffer.
#[derive(Clone, Debug)]
pub struct SendChunk {
    /// Stream offset of the first byte.
    pub stream_off: u64,
    /// The data: header bytes inline, payload as pinned buffer-cache
    /// pages (plaintext) or an owned ciphertext region (kTLS), TLS
    /// framing inline.
    pub sg: SgList,
    /// Pages to unpin when this chunk is fully acknowledged.
    pub pinned_pages: Vec<(FileId, u64)>,
    /// Ciphertext socket-buffer region to free when acknowledged.
    pub ct_region: Option<PhysRegion>,
    /// How many bytes from the front have been handed to TCP.
    pub sent: u64,
}

impl SendChunk {
    #[must_use]
    pub fn len(&self) -> u64 {
        self.sg.len()
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sg.is_empty()
    }
    #[must_use]
    pub fn end(&self) -> u64 {
        self.stream_off + self.len()
    }
}

/// An in-flight response being staged into the socket buffer.
#[derive(Clone, Debug)]
pub struct StagedResponse {
    pub file: FileId,
    pub body_len: u64,
    /// Next body offset to request from disk / the cache.
    pub next_fill: u64,
    /// Stream offset where the body starts.
    pub body_stream_off: u64,
}

/// Per-connection state.
pub struct KConn {
    pub tcb: Tcb,
    pub parser: RequestParser,
    /// Socket send buffer: chunks not yet fully acknowledged,
    /// ordered by stream offset.
    pub sendq: VecDeque<SendChunk>,
    /// Responses whose bodies still need staging, oldest first.
    pub staging: VecDeque<StagedResponse>,
    /// Socket-buffer bytes currently held (flow control against
    /// sb_max).
    pub sb_bytes: u64,
    /// Next stream offset to append at.
    pub tx_cursor: u64,
    /// Disk fills in flight for this connection.
    pub fills_inflight: u32,
    pub cipher: Option<dcn_crypto::RecordCipher>,
    pub responses_completed: u64,
    /// The request stream hit a fatal parse error (oversized or
    /// malformed head): a 431 was queued, nothing further is parsed.
    pub bad_request: bool,
}

impl KConn {
    #[must_use]
    pub fn new(tcb: Tcb, cipher: Option<dcn_crypto::RecordCipher>) -> Self {
        let tx_cursor = tcb.stream_offset_of_snd_nxt();
        KConn {
            tcb,
            parser: RequestParser::new(),
            sendq: VecDeque::new(),
            staging: VecDeque::new(),
            sb_bytes: 0,
            tx_cursor,
            fills_inflight: 0,
            cipher,
            responses_completed: 0,
            bad_request: false,
        }
    }

    /// Append a chunk to the socket buffer.
    pub fn enqueue(&mut self, sg: SgList, pinned: Vec<(FileId, u64)>, ct: Option<PhysRegion>) {
        let len = sg.len();
        debug_assert!(len > 0);
        self.sendq.push_back(SendChunk {
            stream_off: self.tx_cursor,
            sg,
            pinned_pages: pinned,
            ct_region: ct,
            sent: 0,
        });
        self.tx_cursor += len;
        self.sb_bytes += len;
    }

    /// Unsent bytes sitting in the socket buffer.
    #[must_use]
    pub fn unsent(&self) -> u64 {
        self.sendq.iter().map(|c| c.len() - c.sent).sum()
    }

    /// Take up to `budget` unsent bytes as one scatter-gather list
    /// (the TSO send unit).
    pub fn take_for_tx(&mut self, budget: u64) -> Option<(u64, SgList)> {
        let mut out = SgList::empty();
        let mut start_off = None;
        let mut budget = budget;
        for chunk in self.sendq.iter_mut() {
            if budget == 0 {
                break;
            }
            let avail = chunk.len() - chunk.sent;
            if avail == 0 {
                continue;
            }
            let n = avail.min(budget);
            let mut rest = chunk.sg.clone();
            let _ = rest.split_front(chunk.sent);
            let mut piece = rest;
            let piece = piece.split_front(n);
            if start_off.is_none() {
                start_off = Some(chunk.stream_off + chunk.sent);
            }
            chunk.sent += n;
            budget -= n;
            out.append(piece);
        }
        start_off.map(|off| (off, out))
    }

    /// Rebuild previously-sent bytes `[offset, offset+len)` from the
    /// socket buffer (retransmission — data is still here because it
    /// is unacknowledged).
    #[must_use]
    pub fn slice_sent(&self, offset: u64, len: u64) -> Option<SgList> {
        for chunk in &self.sendq {
            if offset >= chunk.stream_off && offset < chunk.end() {
                let rel = offset - chunk.stream_off;
                let n = len.min(chunk.len() - rel);
                let mut sg = chunk.sg.clone();
                let _ = sg.split_front(rel);
                let mut sg2 = sg;
                return Some(sg2.split_front(n));
            }
        }
        None
    }

    /// Release chunks fully covered by the cumulative ACK. Returns
    /// (pages to unpin, ciphertext regions to free, bytes released).
    pub fn release_acked(&mut self, acked_to: u64) -> (Vec<(FileId, u64)>, Vec<PhysRegion>, u64) {
        let mut pages = Vec::new();
        let mut regions = Vec::new();
        let mut released = 0;
        while let Some(front) = self.sendq.front() {
            if front.end() > acked_to {
                break;
            }
            let c = self.sendq.pop_front().expect("peeked");
            let len = c.len();
            pages.extend(c.pinned_pages);
            regions.extend(c.ct_region);
            released += len;
            self.sb_bytes -= len;
        }
        (pages, regions, released)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_packet::{Ipv4Addr, MacAddr, SeqNumber, TcpFlags, TcpRepr};
    use dcn_simcore::Nanos;
    use dcn_tcpstack::{Endpoint, TcbConfig};

    fn conn() -> KConn {
        let local = Endpoint {
            mac: MacAddr::from_host_id(1),
            ip: Ipv4Addr::new(10, 0, 0, 1),
            port: 80,
        };
        let remote = Endpoint {
            mac: MacAddr::from_host_id(2),
            ip: Ipv4Addr::new(10, 1, 0, 1),
            port: 999,
        };
        let syn = TcpRepr {
            src_port: 999,
            dst_port: 80,
            seq: SeqNumber(100),
            ack: SeqNumber(0),
            flags: TcpFlags::SYN,
            window: 65535,
            mss: Some(1448),
            wscale: Some(8),
        };
        let (mut tcb, _) = dcn_tcpstack::Tcb::accept(
            TcbConfig::default(),
            local,
            remote,
            &syn,
            SeqNumber(5000),
            Nanos::ZERO,
        );
        let ack = TcpRepr {
            src_port: 999,
            dst_port: 80,
            seq: SeqNumber(101),
            ack: SeqNumber(5001),
            flags: TcpFlags::ACK,
            window: 256,
            mss: None,
            wscale: None,
        };
        tcb.on_segment(Nanos::from_millis(1), &ack, &[]);
        tcb.take_events();
        KConn::new(tcb, None)
    }

    #[test]
    fn enqueue_take_release_cycle() {
        let mut c = conn();
        c.enqueue(
            SgList::from_bytes(vec![1; 1000]),
            vec![(FileId(1), 0)],
            None,
        );
        c.enqueue(SgList::from_bytes(vec![2; 500]), vec![(FileId(1), 1)], None);
        assert_eq!(c.sb_bytes, 1500);
        assert_eq!(c.unsent(), 1500);
        // Send 1200 bytes across chunk boundary.
        let (off, sg) = c.take_for_tx(1200).unwrap();
        assert_eq!(off, 0);
        assert_eq!(sg.len(), 1200);
        assert_eq!(c.unsent(), 300);
        // Ack only the first chunk.
        let (pages, _regions, released) = c.release_acked(1000);
        assert_eq!(pages, vec![(FileId(1), 0)]);
        assert_eq!(released, 1000);
        assert_eq!(c.sb_bytes, 500);
        // Partial-chunk ack releases nothing more.
        let (pages, _, released) = c.release_acked(1200);
        assert!(pages.is_empty());
        assert_eq!(released, 0);
    }

    #[test]
    fn retransmit_slice_comes_from_socket_buffer() {
        let mut c = conn();
        c.enqueue(SgList::from_bytes((0..100u8).collect()), vec![], None);
        c.take_for_tx(100);
        let sg = c.slice_sent(10, 20).unwrap();
        assert_eq!(sg.len(), 20);
        let dcn_netdev::SgChunk::Bytes(b) = &sg.0[0] else {
            panic!()
        };
        assert_eq!(b[0], 10);
        assert_eq!(b[19], 29);
        // Beyond the buffer: nothing.
        assert!(c.slice_sent(5000, 10).is_none());
    }

    #[test]
    fn take_for_tx_respects_budget_and_resumes() {
        let mut c = conn();
        c.enqueue(SgList::from_bytes(vec![7; 10_000]), vec![], None);
        let (o1, s1) = c.take_for_tx(4000).unwrap();
        let (o2, s2) = c.take_for_tx(100_000).unwrap();
        assert_eq!(o1, 0);
        assert_eq!(s1.len(), 4000);
        assert_eq!(o2, 4000);
        assert_eq!(s2.len(), 6000);
        assert!(c.take_for_tx(100).is_none(), "nothing unsent");
    }
}
