//! # dcn-kstack — conventional-stack baselines
//!
//! Models of the two systems the paper measures Atlas against (§2,
//! §4), running over the *same* simulated hardware (NVMe firmware,
//! NIC, LLC/DDIO, DRAM counters) and the same TCP engine:
//!
//! * **Stock** — nginx on unmodified FreeBSD: synchronous `sendfile`
//!   (a buffer-cache miss blocks the worker's whole event loop),
//!   unassisted LRO, userspace OpenSSL for TLS (read → encrypt →
//!   write, two copies and two syscalls per record).
//! * **Netflix** — the production changes of §2.1: asynchronous
//!   sendfile (never blocks; the socket is armed when I/O lands), VM
//!   scaling fixes (cheaper page reclaim, damped lock contention),
//!   RSS-assisted LRO (discounted per-ACK cost), and in-kernel TLS
//!   (sendfile survives; dedicated kernel threads encrypt
//!   out-of-place with ISA-L-style non-temporal stores — which is
//!   exactly why the data cannot stay in the LLC and the memory
//!   read:network ratio hits ~2.6×).
//!
//! Unlike Atlas, this stack has socket buffers: sent data is held
//! until acknowledged, so retransmissions come from memory, not disk
//! — and every page of content crosses the buffer cache.

pub mod conn;
pub mod server;

pub use conn::{KConn, SendChunk};
pub use server::{KstackConfig, KstackServer, StackVariant};
