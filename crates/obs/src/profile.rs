//! Per-stage cycle / DRAM-traffic profiler.
//!
//! The tracer answers *where a single chunk spent its time*; the
//! profiler answers *where the machine spent its cycles and DRAM
//! bandwidth* — the paper's budget argument (each chunk must cross
//! DRAM ~once, and cycles/chunk must stay low enough to fill 40 GbE
//! per core) in aggregate form.
//!
//! Attribution model: the server sweep loops declare a *current
//! stage* per core ([`StageProfiler::set_context`]) before charging
//! CPU cycles or touching the memory system. `CoreSet::run_on` and
//! every `MemSystem` access method then report into the profiler
//! through an optional handle, so cycles and DRAM bytes land on the
//! stage that caused them without the cost model knowing anything
//! about pipeline structure.
//!
//! Disabled (the default), the handle is simply never installed — a
//! `None` check per hook — and a constructed-but-disabled profiler
//! early-returns from every entry point like the [`Tracer`]; no
//! allocation, no arithmetic. Either way the profiler is purely
//! observational: it never alters completion times, so a seed
//! produces bit-identical runs with profiling on or off.
//!
//! [`Tracer`]: crate::trace::Tracer

use crate::registry::Registry;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle: the server, its `CoreSet`, and its `MemSystem` all
/// report into one profiler. The simulation is single-threaded, so
/// `Rc<RefCell>` is the whole story.
pub type ProfHandle = Rc<RefCell<StageProfiler>>;

/// Pipeline stages cycles and DRAM traffic are attributed to. Coarser
/// than the tracer's nine stamps: these are the five cost centres the
/// paper budgets (plus a catch-all for sweep bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ProfStage {
    /// RX frame delivery, ACK/request parsing, watermark decisions.
    Parse = 0,
    /// NVMe submit/doorbell, completion reaping, buffer-cache fill.
    Fetch = 1,
    /// In-place AES-GCM (or the kstack copy-and-encrypt path).
    Encrypt = 2,
    /// TSO packetization: TCP segment construction, sg-list handoff.
    Packetize = 3,
    /// TX-completion collection and buffer recycling (incl. NIC TX
    /// DMA reads, which are charged while draining the wire).
    TxComplete = 4,
    /// Anything charged outside a declared section.
    Other = 5,
}

pub const PROF_STAGE_COUNT: usize = 6;

impl ProfStage {
    pub const ALL: [ProfStage; PROF_STAGE_COUNT] = [
        ProfStage::Parse,
        ProfStage::Fetch,
        ProfStage::Encrypt,
        ProfStage::Packetize,
        ProfStage::TxComplete,
        ProfStage::Other,
    ];

    /// snake_case name used in `BENCH_*.json` keys and `prof.*` metrics.
    pub fn name(self) -> &'static str {
        match self {
            ProfStage::Parse => "parse",
            ProfStage::Fetch => "fetch",
            ProfStage::Encrypt => "encrypt",
            ProfStage::Packetize => "packetize",
            ProfStage::TxComplete => "tx_complete",
            ProfStage::Other => "other",
        }
    }
}

/// Why the sweep loop stopped making forward progress. CPU-busy is
/// the complement (cycles charged), derived at report time; these
/// three are counted as events at the specific break/park points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum StallKind {
    /// Send window / socket buffer full — waiting on client ACKs.
    CwndLimited = 0,
    /// Fetch issued but buffer pool (or VM page budget) empty.
    PoolEmpty = 1,
    /// In-order TX blocked on an NVMe read still in flight.
    NvmeWait = 2,
}

pub const STALL_KIND_COUNT: usize = 3;

impl StallKind {
    pub const ALL: [StallKind; STALL_KIND_COUNT] = [
        StallKind::CwndLimited,
        StallKind::PoolEmpty,
        StallKind::NvmeWait,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StallKind::CwndLimited => "cwnd_limited",
            StallKind::PoolEmpty => "pool_empty",
            StallKind::NvmeWait => "nvme_wait",
        }
    }
}

#[derive(Debug, Default)]
pub struct StageProfiler {
    enabled: bool,
    /// Stage each core is currently executing (sweep loops update it).
    cur_stage: Vec<ProfStage>,
    /// Core whose section last changed — DRAM accesses attribute here
    /// (the sim is serial, so "the core driving the memory system" is
    /// exactly the last `set_context` caller).
    cur_core: usize,
    /// Total cycles charged per core per stage.
    cycles: Vec<[u64; PROF_STAGE_COUNT]>,
    /// DRAM bytes read/written while each stage was current.
    dram_rd: [u64; PROF_STAGE_COUNT],
    dram_wr: [u64; PROF_STAGE_COUNT],
    /// Per-chunk cycle samples per stage, recorded at the per-chunk
    /// charge points (exact, sorted lazily at report time — the
    /// deterministic sim makes the full sample set reproducible).
    chunk_cycles: Vec<Vec<u64>>,
    /// Completed chunks per core.
    chunks: Vec<u64>,
    /// Stall events by kind.
    stalls: [u64; STALL_KIND_COUNT],
    /// Device-DMA reads split by where the line was found.
    dma_read_hit_bytes: u64,
    dma_read_dram_bytes: u64,
    /// Plaintext bytes passed through the encrypt stage.
    encrypt_bytes: u64,
}

impl StageProfiler {
    /// The default: every entry point is a no-op and nothing allocates
    /// (`Vec::new` is allocation-free).
    pub fn disabled() -> Self {
        Self::default()
    }

    pub fn enabled(n_cores: usize) -> Self {
        StageProfiler {
            enabled: true,
            cur_stage: vec![ProfStage::Other; n_cores],
            cycles: vec![[0; PROF_STAGE_COUNT]; n_cores],
            chunk_cycles: vec![Vec::new(); PROF_STAGE_COUNT],
            chunks: vec![0; n_cores],
            ..Self::default()
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Declare the stage `core` is about to execute. Subsequent cycle
    /// charges on that core and DRAM traffic attribute to `stage`.
    #[inline]
    pub fn set_context(&mut self, core: usize, stage: ProfStage) {
        if !self.enabled {
            return;
        }
        if let Some(s) = self.cur_stage.get_mut(core) {
            *s = stage;
            self.cur_core = core;
        }
    }

    /// Hook: `CoreSet::run_on` reports every cycle charge here.
    #[inline]
    pub fn on_cycles(&mut self, core: usize, cycles: u64) {
        if !self.enabled {
            return;
        }
        if let Some(per_core) = self.cycles.get_mut(core) {
            let stage = self.cur_stage[core];
            per_core[stage as usize] += cycles;
        }
    }

    /// Hook: `MemSystem` reports DRAM traffic caused by each access.
    #[inline]
    pub fn on_dram(&mut self, rd_bytes: u64, wr_bytes: u64) {
        if !self.enabled {
            return;
        }
        let stage = self
            .cur_stage
            .get(self.cur_core)
            .copied()
            .unwrap_or(ProfStage::Other);
        self.dram_rd[stage as usize] += rd_bytes;
        self.dram_wr[stage as usize] += wr_bytes;
    }

    /// Hook: `MemSystem::dma_read` additionally splits device reads by
    /// LLC hit vs DRAM — the paper's "NIC DMA still found it in LLC"
    /// fraction.
    #[inline]
    pub fn on_dma_read(&mut self, dram_bytes: u64, hit_bytes: u64) {
        if !self.enabled {
            return;
        }
        self.dma_read_dram_bytes += dram_bytes;
        self.dma_read_hit_bytes += hit_bytes;
    }

    /// Record one chunk's cycle cost through `stage` (the per-chunk
    /// p50/p99 sample, distinct from the aggregate `on_cycles` total).
    #[inline]
    pub fn chunk_sample(&mut self, stage: ProfStage, cycles: u64) {
        if !self.enabled {
            return;
        }
        self.chunk_cycles[stage as usize].push(cycles);
    }

    /// Count plaintext bytes entering the encrypt stage (denominator
    /// for the LLC-resident-encrypt fraction).
    #[inline]
    pub fn add_encrypt_bytes(&mut self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.encrypt_bytes += bytes;
    }

    /// One chunk fully served (payload queued to the wire) on `core`.
    #[inline]
    pub fn chunk_done(&mut self, core: usize) {
        if !self.enabled {
            return;
        }
        if let Some(c) = self.chunks.get_mut(core) {
            *c += 1;
        }
    }

    /// Count a sweep stall event.
    #[inline]
    pub fn stall(&mut self, kind: StallKind) {
        if !self.enabled {
            return;
        }
        self.stalls[kind as usize] += 1;
    }

    /// Snapshot the profile (sorts the per-chunk samples).
    pub fn report(&self) -> ProfReport {
        let mut stage_cycles = [0u64; PROF_STAGE_COUNT];
        for per_core in &self.cycles {
            for (tot, c) in stage_cycles.iter_mut().zip(per_core) {
                *tot += c;
            }
        }
        let mut p50 = [0u64; PROF_STAGE_COUNT];
        let mut p99 = [0u64; PROF_STAGE_COUNT];
        let mut samples = [0u64; PROF_STAGE_COUNT];
        for (i, raw) in self.chunk_cycles.iter().enumerate() {
            let mut v = raw.clone();
            v.sort_unstable();
            samples[i] = v.len() as u64;
            p50[i] = exact_quantile(&v, 0.50);
            p99[i] = exact_quantile(&v, 0.99);
        }
        ProfReport {
            enabled: self.enabled,
            chunks_per_core: self.chunks.clone(),
            stage_cycles,
            stage_dram_rd: self.dram_rd,
            stage_dram_wr: self.dram_wr,
            chunk_cycles_p50: p50,
            chunk_cycles_p99: p99,
            chunk_samples: samples,
            stalls: self.stalls,
            dma_read_hit_bytes: self.dma_read_hit_bytes,
            dma_read_dram_bytes: self.dma_read_dram_bytes,
            encrypt_bytes: self.encrypt_bytes,
        }
    }

    /// Publish the profile as `prof.*` gauges (report/sample path —
    /// string lookups are fine here).
    pub fn publish(&self, reg: &mut Registry) {
        if !self.enabled {
            return;
        }
        let r = self.report();
        r.publish(reg);
    }
}

/// Exact quantile over a *sorted* sample vector: the nearest-rank
/// element, 0 when empty. Deterministic — no interpolation.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Snapshot of a [`StageProfiler`], with the derived headline numbers
/// the bench layer turns into `BENCH_perf_baseline.json`.
#[derive(Debug, Clone, Default)]
pub struct ProfReport {
    pub enabled: bool,
    pub chunks_per_core: Vec<u64>,
    /// Total cycles per stage, all cores.
    pub stage_cycles: [u64; PROF_STAGE_COUNT],
    pub stage_dram_rd: [u64; PROF_STAGE_COUNT],
    pub stage_dram_wr: [u64; PROF_STAGE_COUNT],
    /// Nearest-rank per-chunk cycle quantiles per stage.
    pub chunk_cycles_p50: [u64; PROF_STAGE_COUNT],
    pub chunk_cycles_p99: [u64; PROF_STAGE_COUNT],
    pub chunk_samples: [u64; PROF_STAGE_COUNT],
    pub stalls: [u64; STALL_KIND_COUNT],
    pub dma_read_hit_bytes: u64,
    pub dma_read_dram_bytes: u64,
    pub encrypt_bytes: u64,
}

impl ProfReport {
    pub fn total_chunks(&self) -> u64 {
        self.chunks_per_core.iter().sum()
    }

    pub fn total_cycles(&self) -> u64 {
        self.stage_cycles.iter().sum()
    }

    pub fn stall(&self, kind: StallKind) -> u64 {
        self.stalls[kind as usize]
    }

    /// Fraction of device-DMA read bytes served from the LLC (DDIO
    /// kept the line hot). 1.0 when no DMA reads happened.
    pub fn llc_resident_dma_frac(&self) -> f64 {
        let total = self.dma_read_hit_bytes + self.dma_read_dram_bytes;
        if total == 0 {
            return 1.0;
        }
        self.dma_read_hit_bytes as f64 / total as f64
    }

    /// Fraction of encrypt-stage input that did *not* come back from
    /// DRAM — an approximation: DRAM reads charged while a core was
    /// in the encrypt section, over plaintext bytes encrypted.
    pub fn llc_resident_encrypt_frac(&self) -> f64 {
        if self.encrypt_bytes == 0 {
            return 1.0;
        }
        let miss =
            self.stage_dram_rd[ProfStage::Encrypt as usize] as f64 / self.encrypt_bytes as f64;
        (1.0 - miss).clamp(0.0, 1.0)
    }

    /// Publish as `prof.*` gauges into a registry.
    pub fn publish(&self, reg: &mut Registry) {
        for st in ProfStage::ALL {
            let i = st as usize;
            let g = reg.gauge(&format!("prof.cycles.{}", st.name()));
            reg.set(g, self.stage_cycles[i] as f64);
            let g = reg.gauge(&format!("prof.dram_rd_bytes.{}", st.name()));
            reg.set(g, self.stage_dram_rd[i] as f64);
            let g = reg.gauge(&format!("prof.dram_wr_bytes.{}", st.name()));
            reg.set(g, self.stage_dram_wr[i] as f64);
            let g = reg.gauge(&format!("prof.chunk_cycles_p50.{}", st.name()));
            reg.set(g, self.chunk_cycles_p50[i] as f64);
            let g = reg.gauge(&format!("prof.chunk_cycles_p99.{}", st.name()));
            reg.set(g, self.chunk_cycles_p99[i] as f64);
        }
        for k in StallKind::ALL {
            let g = reg.gauge(&format!("prof.stalls.{}", k.name()));
            reg.set(g, self.stalls[k as usize] as f64);
        }
        let g = reg.gauge("prof.chunks");
        reg.set(g, self.total_chunks() as f64);
        let g = reg.gauge("prof.llc_resident_dma_frac");
        reg.set(g, self.llc_resident_dma_frac());
        let g = reg.gauge("prof.llc_resident_encrypt_frac");
        reg.set(g, self.llc_resident_encrypt_frac());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = StageProfiler::disabled();
        p.set_context(0, ProfStage::Encrypt);
        p.on_cycles(0, 1000);
        p.on_dram(64, 64);
        p.chunk_sample(ProfStage::Encrypt, 500);
        p.chunk_done(0);
        p.stall(StallKind::PoolEmpty);
        let r = p.report();
        assert!(!r.enabled);
        assert_eq!(r.total_chunks(), 0);
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.chunk_samples, [0; PROF_STAGE_COUNT]);
    }

    #[test]
    fn cycles_and_dram_attribute_to_current_stage() {
        let mut p = StageProfiler::enabled(2);
        p.set_context(0, ProfStage::Fetch);
        p.on_cycles(0, 450);
        p.on_dram(4096, 0);
        p.set_context(1, ProfStage::Encrypt);
        p.on_cycles(1, 300_000);
        p.on_dram(0, 128);
        // Core 0's stage is remembered even after core 1 took over
        // the DRAM attribution context.
        p.on_cycles(0, 50);
        let r = p.report();
        assert_eq!(r.stage_cycles[ProfStage::Fetch as usize], 500);
        assert_eq!(r.stage_cycles[ProfStage::Encrypt as usize], 300_000);
        assert_eq!(r.stage_dram_rd[ProfStage::Fetch as usize], 4096);
        assert_eq!(r.stage_dram_wr[ProfStage::Encrypt as usize], 128);
    }

    #[test]
    fn chunk_quantiles_are_exact_nearest_rank() {
        let mut p = StageProfiler::enabled(1);
        for c in [100u64, 200, 300, 400, 500] {
            p.chunk_sample(ProfStage::Packetize, c);
        }
        let r = p.report();
        let i = ProfStage::Packetize as usize;
        assert_eq!(r.chunk_samples[i], 5);
        assert_eq!(r.chunk_cycles_p50[i], 300);
        assert_eq!(r.chunk_cycles_p99[i], 500);
        // Stages with no samples report zero, not garbage.
        assert_eq!(r.chunk_cycles_p50[ProfStage::Parse as usize], 0);
    }

    #[test]
    fn llc_fractions() {
        let mut p = StageProfiler::enabled(1);
        p.on_dma_read(300, 700); // 70% of DMA reads hit LLC
        p.set_context(0, ProfStage::Encrypt);
        p.on_dram(250, 0);
        p.add_encrypt_bytes(1000);
        let r = p.report();
        assert!((r.llc_resident_dma_frac() - 0.7).abs() < 1e-9);
        assert!((r.llc_resident_encrypt_frac() - 0.75).abs() < 1e-9);
        // Empty profiler: both fractions defined as 1.0.
        let empty = StageProfiler::enabled(1).report();
        assert_eq!(empty.llc_resident_dma_frac(), 1.0);
        assert_eq!(empty.llc_resident_encrypt_frac(), 1.0);
    }

    #[test]
    fn stalls_and_chunks_count() {
        let mut p = StageProfiler::enabled(2);
        p.stall(StallKind::CwndLimited);
        p.stall(StallKind::CwndLimited);
        p.stall(StallKind::NvmeWait);
        p.chunk_done(0);
        p.chunk_done(1);
        p.chunk_done(1);
        let r = p.report();
        assert_eq!(r.stall(StallKind::CwndLimited), 2);
        assert_eq!(r.stall(StallKind::NvmeWait), 1);
        assert_eq!(r.stall(StallKind::PoolEmpty), 0);
        assert_eq!(r.total_chunks(), 3);
        assert_eq!(r.chunks_per_core, vec![1, 2]);
    }

    #[test]
    fn publish_emits_prof_gauges() {
        let mut p = StageProfiler::enabled(1);
        p.set_context(0, ProfStage::Parse);
        p.on_cycles(0, 42);
        p.chunk_done(0);
        let mut reg = Registry::new();
        p.publish(&mut reg);
        assert_eq!(reg.find_gauge("prof.cycles.parse"), Some(42.0));
        assert_eq!(reg.find_gauge("prof.chunks"), Some(1.0));
        assert_eq!(reg.find_gauge("prof.llc_resident_dma_frac"), Some(1.0));
    }
}
