//! A unified metrics registry: named counters, gauges, and
//! histograms behind cheap integer handles.
//!
//! Naming scheme: `<subsystem>.<signal>`, with labels appended in
//! fixed order inside braces — e.g. `atlas.retransmit_fetches{core=2}`
//! or `tcp.rto_fired{core=0}`. Labels are baked into the metric name
//! at registration time (setup path, allocation fine); the hot path
//! is `inc`/`add`/`set`/`observe` on a `Vec` index — no hashing, no
//! allocation, no branching beyond bounds checks.

use dcn_simcore::Histogram;

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a last-value-wins gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a latency/value histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(u32);

/// Format a metric name with labels: `name{k1=v1,k2=v2}`.
pub fn labeled(name: &str, labels: &[(&str, u64)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut s = String::with_capacity(name.len() + 16 * labels.len());
    s.push_str(name);
    s.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(k);
        s.push('=');
        s.push_str(&v.to_string());
    }
    s.push('}');
    s
}

#[derive(Debug, Default)]
pub struct Registry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<f64>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------- registration

    /// Register (or re-find) a counter by exact name. Idempotent so
    /// components can register independently without coordination.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i as u32);
        }
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Register a per-core counter: `name{core=N}`.
    pub fn counter_core(&mut self, name: &str, core: usize) -> CounterId {
        self.counter(&labeled(name, &[("core", core as u64)]))
    }

    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i as u32);
        }
        self.gauge_names.push(name.to_string());
        self.gauges.push(0.0);
        GaugeId((self.gauges.len() - 1) as u32)
    }

    pub fn gauge_core(&mut self, name: &str, core: usize) -> GaugeId {
        self.gauge(&labeled(name, &[("core", core as u64)]))
    }

    pub fn histogram(&mut self, name: &str, lo: f64, hi: f64, buckets: usize) -> HistId {
        if let Some(i) = self.hist_names.iter().position(|n| n == name) {
            return HistId(i as u32);
        }
        self.hist_names.push(name.to_string());
        self.hists.push(Histogram::new(lo, hi, buckets));
        HistId((self.hists.len() - 1) as u32)
    }

    // ----------------------------------------------------- hot path

    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0 as usize] += 1;
    }

    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize] = v;
    }

    #[inline]
    pub fn observe(&mut self, id: HistId, v: f64) {
        self.hists[id.0 as usize].add(v);
    }

    // -------------------------------------------------------- reads

    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize]
    }

    pub fn hist_ref(&self, id: HistId) -> &Histogram {
        &self.hists[id.0 as usize]
    }

    /// Look a counter up by exact name (views / tests / exporters).
    pub fn find_counter(&self, name: &str) -> Option<u64> {
        self.counter_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.counters[i])
    }

    /// Sum of every counter whose name starts with `prefix` — the way
    /// views aggregate a per-core family (`tcp.rto_fired{core=*}`).
    pub fn sum_prefixed(&self, prefix: &str) -> u64 {
        self.counter_names
            .iter()
            .zip(&self.counters)
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Look a gauge up by exact name (views / tests / exporters).
    pub fn find_gauge(&self, name: &str) -> Option<f64> {
        self.gauge_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.gauges[i])
    }

    /// Sum of every gauge whose name starts with `prefix` —
    /// aggregates a per-core gauge family the way [`Self::sum_prefixed`]
    /// does for counters.
    pub fn sum_prefixed_gauge(&self, prefix: &str) -> f64 {
        self.gauge_names
            .iter()
            .zip(&self.gauges)
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .map(|s| s.as_str())
            .zip(self.counters.iter().copied())
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_names
            .iter()
            .map(|s| s.as_str())
            .zip(self.gauges.iter().copied())
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hist_names
            .iter()
            .map(|s| s.as_str())
            .zip(self.hists.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("atlas.responses");
        let b = r.counter("atlas.responses");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value(a), 3);
        assert_eq!(r.find_counter("atlas.responses"), Some(3));
        assert_eq!(r.find_counter("nope"), None);
    }

    #[test]
    fn per_core_labels_and_prefix_sum() {
        let mut r = Registry::new();
        let c0 = r.counter_core("tcp.rto_fired", 0);
        let c1 = r.counter_core("tcp.rto_fired", 1);
        assert_ne!(c0, c1);
        r.add(c0, 5);
        r.add(c1, 7);
        assert_eq!(r.find_counter("tcp.rto_fired{core=1}"), Some(7));
        assert_eq!(r.sum_prefixed("tcp.rto_fired"), 12);
    }

    #[test]
    fn gauges_and_histograms() {
        let mut r = Registry::new();
        let g = r.gauge_core("atlas.pool_free", 3);
        r.set(g, 128.0);
        assert_eq!(r.gauge_value(g), 128.0);
        let h = r.histogram("stage.encrypt_us", 0.0, 1000.0, 100);
        r.observe(h, 10.0);
        r.observe(h, 20.0);
        assert_eq!(r.hist_ref(h).count(), 2);
        assert_eq!(r.histograms().count(), 1);
    }

    #[test]
    fn labeled_formatting() {
        assert_eq!(labeled("a.b", &[]), "a.b");
        assert_eq!(
            labeled("a.b", &[("core", 2), ("conn", 9)]),
            "a.b{core=2,conn=9}"
        );
    }
}
