//! Chunk-lifecycle tracer.
//!
//! Each 300 KB chunk the server pumps is stamped, in virtual time, at
//! every pipeline stage it crosses. The trace answers the two
//! questions aggregate counters cannot: *which stage delayed this
//! chunk*, and *was the chunk's buffer still LLC-resident when the
//! CPU encrypted it / when the NIC DMA'd it out* (the paper's
//! Fig 12/14 classification, per chunk).
//!
//! Disabled (the default), every entry point is an inlined
//! early-return — no allocation, no map lookup, no branch beyond the
//! flag test — so Modeled-fidelity sweeps pay nothing.

use dcn_simcore::{Histogram, Nanos};
use std::collections::HashMap;

/// Pipeline stages, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Client ACK opened window; server pump considered the stream.
    AckArrival = 0,
    /// Low-watermark rule decided to fetch this chunk from disk.
    WatermarkTrigger = 1,
    /// NVMe command placed on the SQ (doorbell rung at next sqsync).
    NvmeSubmit = 2,
    /// Device firmware posted the completion (data now in host LLC
    /// via DDIO, or DRAM if the DDIO way-cap evicted it).
    FirmwareComplete = 3,
    /// CPU began the in-place AES-GCM pass over the buffer.
    EncryptStart = 4,
    /// In-place encrypt finished; chunk queued for TX.
    EncryptEnd = 5,
    /// TSO packetization: TCP handed the sg-list to the NIC ring.
    TsoPacketize = 6,
    /// NIC read the buffer over DMA at wire transmit time.
    NicTxDma = 7,
    /// TX completion collected; buffer returned to the pool (LIFO).
    BufferRecycle = 8,
}

pub const STAGE_COUNT: usize = 9;

impl Stage {
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::AckArrival,
        Stage::WatermarkTrigger,
        Stage::NvmeSubmit,
        Stage::FirmwareComplete,
        Stage::EncryptStart,
        Stage::EncryptEnd,
        Stage::TsoPacketize,
        Stage::NicTxDma,
        Stage::BufferRecycle,
    ];

    /// snake_case name used in JSONL keys and summary tables.
    pub fn name(self) -> &'static str {
        match self {
            Stage::AckArrival => "ack_arrival",
            Stage::WatermarkTrigger => "watermark_trigger",
            Stage::NvmeSubmit => "nvme_submit",
            Stage::FirmwareComplete => "firmware_complete",
            Stage::EncryptStart => "encrypt_start",
            Stage::EncryptEnd => "encrypt_end",
            Stage::TsoPacketize => "tso_packetize",
            Stage::NicTxDma => "nic_tx_dma",
            Stage::BufferRecycle => "buffer_recycle",
        }
    }
}

/// What kind of fetch produced this chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// First-time fetch driven by the watermark rule.
    Fresh,
    /// Re-fetch from disk to service a TCP retransmission (§3.2:
    /// Atlas keeps no payload in memory, so loss re-reads the disk).
    RetransmitFetch,
}

impl ChunkKind {
    pub fn name(self) -> &'static str {
        match self {
            ChunkKind::Fresh => "fresh",
            ChunkKind::RetransmitFetch => "retransmit_fetch",
        }
    }
}

const UNSET: u64 = u64::MAX;

/// One chunk's journey through the pipeline.
#[derive(Debug, Clone)]
pub struct ChunkTrace {
    /// Fetch token — the NVMe `user` cookie, unique per fetch.
    pub chunk: u64,
    pub conn: u64,
    pub core: u32,
    /// Stream offset of the chunk's first payload byte.
    pub offset: u64,
    pub len: u64,
    pub kind: ChunkKind,
    /// Virtual-time stamp per stage, nanos; `u64::MAX` = not reached.
    pub stamps: [u64; STAGE_COUNT],
    /// Buffer LLC-resident when the CPU started encrypting?
    pub llc_at_encrypt: Option<bool>,
    /// Buffer LLC-resident when the NIC DMA'd it at transmit?
    pub llc_at_nic_dma: Option<bool>,
}

impl ChunkTrace {
    pub fn stamp_of(&self, s: Stage) -> Option<Nanos> {
        let v = self.stamps[s as usize];
        (v != UNSET).then_some(Nanos::from_nanos(v))
    }

    /// Latency of `s` measured from the closest earlier stamped
    /// stage (stages can be legitimately skipped, e.g. a retransmit
    /// fetch has no watermark trigger).
    pub fn stage_latency(&self, s: Stage) -> Option<Nanos> {
        let i = s as usize;
        if self.stamps[i] == UNSET {
            return None;
        }
        let prev = self.stamps[..i].iter().rev().find(|&&v| v != UNSET)?;
        Some(Nanos::from_nanos(self.stamps[i].saturating_sub(*prev)))
    }

    /// End-to-end: first stamp to last stamp.
    pub fn total_latency(&self) -> Option<Nanos> {
        let first = self.stamps.iter().find(|&&v| v != UNSET)?;
        let last = self.stamps.iter().rev().find(|&&v| v != UNSET)?;
        Some(Nanos::from_nanos(last.saturating_sub(*first)))
    }
}

/// Histogram range for per-stage latencies: 0–50 ms in µs.
const STAGE_HIST_HI_US: f64 = 50_000.0;
const STAGE_HIST_BUCKETS: usize = 2_500;

#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    live: HashMap<u64, ChunkTrace>,
    /// TX completion token → chunk token (the server's tx token
    /// encodes (core, disk, buf), not the fetch that filled the buf).
    tx_map: HashMap<u64, u64>,
    done: Vec<ChunkTrace>,
    /// Per-stage latency histograms, µs. Empty when disabled.
    stage_hists: Vec<Histogram>,
}

impl Tracer {
    /// The default: every entry point is a no-op. `Vec::new` /
    /// `HashMap::new` do not allocate, so a disabled tracer is free.
    pub fn disabled() -> Self {
        Self::default()
    }

    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            stage_hists: (0..STAGE_COUNT)
                .map(|_| Histogram::new(0.0, STAGE_HIST_HI_US, STAGE_HIST_BUCKETS))
                .collect(),
            ..Self::default()
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a trace for a chunk at fetch-decision time.
    #[inline]
    pub fn begin(
        &mut self,
        chunk: u64,
        conn: u64,
        core: u32,
        offset: u64,
        len: u64,
        kind: ChunkKind,
    ) {
        if !self.enabled {
            return;
        }
        self.live.insert(
            chunk,
            ChunkTrace {
                chunk,
                conn,
                core,
                offset,
                len,
                kind,
                stamps: [UNSET; STAGE_COUNT],
                llc_at_encrypt: None,
                llc_at_nic_dma: None,
            },
        );
    }

    /// Stamp `stage` for a live chunk at virtual time `now`.
    #[inline]
    pub fn stamp(&mut self, chunk: u64, stage: Stage, now: Nanos) {
        if !self.enabled {
            return;
        }
        if let Some(t) = self.live.get_mut(&chunk) {
            t.stamps[stage as usize] = now.as_nanos();
        }
    }

    #[inline]
    pub fn llc_at_encrypt(&mut self, chunk: u64, resident: bool) {
        if !self.enabled {
            return;
        }
        if let Some(t) = self.live.get_mut(&chunk) {
            t.llc_at_encrypt = Some(resident);
        }
    }

    /// Bind the TX completion token the NIC will echo back to this
    /// chunk, so transmit-side stamps can find the trace.
    #[inline]
    pub fn map_tx(&mut self, tx_token: u64, chunk: u64) {
        if !self.enabled {
            return;
        }
        self.tx_map.insert(tx_token, chunk);
    }

    /// Stamp a transmit-side stage through the TX-token indirection.
    #[inline]
    pub fn stamp_tx(&mut self, tx_token: u64, stage: Stage, now: Nanos) {
        if !self.enabled {
            return;
        }
        if let Some(&chunk) = self.tx_map.get(&tx_token) {
            self.stamp(chunk, stage, now);
        }
    }

    #[inline]
    pub fn llc_at_nic_dma_tx(&mut self, tx_token: u64, resident: bool) {
        if !self.enabled {
            return;
        }
        if let Some(&chunk) = self.tx_map.get(&tx_token) {
            if let Some(t) = self.live.get_mut(&chunk) {
                t.llc_at_nic_dma = Some(resident);
            }
        }
    }

    /// Drop a live chunk without completing it (failed I/O, response
    /// pruned while the fetch was in flight).
    #[inline]
    pub fn discard(&mut self, chunk: u64) {
        if !self.enabled {
            return;
        }
        self.live.remove(&chunk);
    }

    /// Close a chunk's lifecycle at buffer-recycle time: stamp the
    /// final stage, fold its per-stage latencies into the histograms,
    /// and move it to the finished list.
    #[inline]
    pub fn finish_tx(&mut self, tx_token: u64, now: Nanos) {
        if !self.enabled {
            return;
        }
        let Some(chunk) = self.tx_map.remove(&tx_token) else {
            return;
        };
        let Some(mut t) = self.live.remove(&chunk) else {
            return;
        };
        t.stamps[Stage::BufferRecycle as usize] = now.as_nanos();
        for s in Stage::ALL {
            if let Some(lat) = t.stage_latency(s) {
                self.stage_hists[s as usize].add(lat.as_micros_f64());
            }
        }
        self.done.push(t);
    }

    // -------------------------------------------------------- reads

    /// Finished chunk traces, in completion order.
    pub fn finished(&self) -> &[ChunkTrace] {
        &self.done
    }

    /// Chunks still mid-pipeline (run ended before recycle).
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Per-stage latency histogram (µs). `None` when disabled.
    pub fn stage_hist(&self, s: Stage) -> Option<&Histogram> {
        self.stage_hists.get(s as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.begin(1, 0, 0, 0, 300_000, ChunkKind::Fresh);
        t.stamp(1, Stage::AckArrival, Nanos::from_micros(1));
        t.map_tx(99, 1);
        t.finish_tx(99, Nanos::from_micros(2));
        assert!(t.finished().is_empty());
        assert_eq!(t.live_count(), 0);
        assert!(t.stage_hist(Stage::AckArrival).is_none());
    }

    #[test]
    fn lifecycle_stamps_and_latencies() {
        let mut t = Tracer::enabled();
        t.begin(7, 3, 1, 600_000, 300_000, ChunkKind::Fresh);
        let us = Nanos::from_micros;
        t.stamp(7, Stage::AckArrival, us(10));
        t.stamp(7, Stage::WatermarkTrigger, us(10));
        t.stamp(7, Stage::NvmeSubmit, us(12));
        t.stamp(7, Stage::FirmwareComplete, us(112));
        t.stamp(7, Stage::EncryptStart, us(113));
        t.llc_at_encrypt(7, true);
        t.stamp(7, Stage::EncryptEnd, us(140));
        t.map_tx(0xBEEF, 7);
        t.stamp_tx(0xBEEF, Stage::TsoPacketize, us(150));
        t.stamp_tx(0xBEEF, Stage::NicTxDma, us(160));
        t.llc_at_nic_dma_tx(0xBEEF, true);
        t.finish_tx(0xBEEF, us(170));

        assert_eq!(t.finished().len(), 1);
        let tr = &t.finished()[0];
        assert_eq!(tr.kind, ChunkKind::Fresh);
        assert_eq!(tr.llc_at_encrypt, Some(true));
        assert_eq!(tr.llc_at_nic_dma, Some(true));
        assert_eq!(tr.stage_latency(Stage::FirmwareComplete), Some(us(100)));
        assert_eq!(tr.stage_latency(Stage::BufferRecycle), Some(us(10)));
        assert_eq!(tr.total_latency(), Some(us(160)));
        assert_eq!(t.stage_hist(Stage::FirmwareComplete).unwrap().count(), 1);
    }

    #[test]
    fn skipped_stage_latency_bridges_gap() {
        // A retransmit fetch never crosses WatermarkTrigger: the
        // NvmeSubmit latency must bridge back to AckArrival.
        let mut t = Tracer::enabled();
        t.begin(1, 0, 0, 0, 4096, ChunkKind::RetransmitFetch);
        let us = Nanos::from_micros;
        t.stamp(1, Stage::AckArrival, us(5));
        t.stamp(1, Stage::NvmeSubmit, us(9));
        t.map_tx(2, 1);
        t.finish_tx(2, us(20));
        let tr = &t.finished()[0];
        assert_eq!(tr.stage_latency(Stage::NvmeSubmit), Some(us(4)));
        assert_eq!(tr.stage_latency(Stage::WatermarkTrigger), None);
        assert_eq!(tr.kind, ChunkKind::RetransmitFetch);
    }
}
