//! Structured export: JSON-lines chunk traces and CSV metric
//! time-series. Hand-rolled emitters — the container builds offline,
//! and nothing here needs more than numbers, booleans, and fixed
//! snake_case keys.

use crate::registry::Registry;
use crate::trace::{ChunkTrace, Stage, Tracer};
use dcn_simcore::Nanos;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Serialize one chunk trace as a single JSON object (no newline).
pub fn chunk_to_json(t: &ChunkTrace) -> String {
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"chunk\":{},\"conn\":{},\"core\":{},\"offset\":{},\"len\":{},\"kind\":\"{}\"",
        t.chunk,
        t.conn,
        t.core,
        t.offset,
        t.len,
        t.kind.name()
    );
    s.push_str(",\"stages_ns\":{");
    let mut first = true;
    for st in Stage::ALL {
        let _ = match t.stamp_of(st) {
            Some(at) => write!(
                s,
                "{}\"{}\":{}",
                if first { "" } else { "," },
                st.name(),
                at.as_nanos()
            ),
            None => write!(s, "{}\"{}\":null", if first { "" } else { "," }, st.name()),
        };
        first = false;
    }
    s.push_str("},\"latency_ns\":{");
    let mut first = true;
    for st in Stage::ALL {
        let _ = match t.stage_latency(st) {
            Some(l) => write!(
                s,
                "{}\"{}\":{}",
                if first { "" } else { "," },
                st.name(),
                l.as_nanos()
            ),
            None => write!(s, "{}\"{}\":null", if first { "" } else { "," }, st.name()),
        };
        first = false;
    }
    s.push('}');
    let flag = |b: Option<bool>| match b {
        Some(true) => "true",
        Some(false) => "false",
        None => "null",
    };
    let _ = write!(
        s,
        ",\"llc_at_encrypt\":{},\"llc_at_nic_dma\":{}",
        flag(t.llc_at_encrypt),
        flag(t.llc_at_nic_dma)
    );
    if let Some(total) = t.total_latency() {
        let _ = write!(s, ",\"total_ns\":{}", total.as_nanos());
    } else {
        s.push_str(",\"total_ns\":null");
    }
    s.push('}');
    s
}

/// Write every finished chunk trace as JSON-lines.
pub fn write_trace_jsonl(path: &Path, tracer: &Tracer) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for t in tracer.finished() {
        writeln!(w, "{}", chunk_to_json(t))?;
    }
    w.flush()
}

/// Per-stage p50/p99 summary table, for run footers.
pub fn stage_summary(tracer: &Tracer) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<20} {:>8} {:>12} {:>12} {:>12}",
        "stage", "count", "p50_us", "p99_us", "max_us"
    );
    for st in Stage::ALL {
        if let Some(h) = tracer.stage_hist(st) {
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                s,
                "{:<20} {:>8} {:>12.1} {:>12.1} {:>12.1}",
                st.name(),
                h.count(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max()
            );
        }
    }
    s
}

/// A long-format CSV time-series of registry values, sampled at a
/// fixed virtual-time cadence by the run loop.
#[derive(Debug, Default)]
pub struct TimeSeries {
    rows: Vec<(u64, String, f64)>, // (t_ns, metric, value)
}

impl TimeSeries {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot every counter and gauge in `reg` at time `now`.
    pub fn sample(&mut self, now: Nanos, reg: &Registry) {
        for (name, v) in reg.counters() {
            self.rows.push((now.as_nanos(), name.to_string(), v as f64));
        }
        for (name, v) in reg.gauges() {
            self.rows.push((now.as_nanos(), name.to_string(), v));
        }
    }

    /// Snapshot every counter and gauge in `reg` with `prefix`
    /// prepended to each metric name (e.g. `s2.`): the cluster runner
    /// interleaves N per-server registries into one CSV this way.
    pub fn sample_labeled(&mut self, now: Nanos, reg: &Registry, prefix: &str) {
        for (name, v) in reg.counters() {
            self.rows
                .push((now.as_nanos(), format!("{prefix}{name}"), v as f64));
        }
        for (name, v) in reg.gauges() {
            self.rows
                .push((now.as_nanos(), format!("{prefix}{name}"), v));
        }
    }

    /// Append one ad-hoc row (cluster-level aggregates that live in
    /// no single server's registry).
    pub fn push_value(&mut self, now: Nanos, metric: &str, value: f64) {
        self.rows.push((now.as_nanos(), metric.to_string(), value));
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `t_ms,metric,value` rows, one line per sampled metric.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        writeln!(w, "t_ms,metric,value")?;
        for (t, name, v) in &self.rows {
            writeln!(w, "{:.3},{},{}", *t as f64 / 1e6, name, v)?;
        }
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ChunkKind;

    #[test]
    fn jsonl_has_all_stage_keys() {
        let mut t = Tracer::enabled();
        t.begin(1, 2, 0, 0, 300_000, ChunkKind::Fresh);
        t.stamp(1, Stage::AckArrival, Nanos::from_micros(3));
        t.llc_at_encrypt(1, true);
        t.map_tx(9, 1);
        t.finish_tx(9, Nanos::from_micros(40));
        let line = chunk_to_json(&t.finished()[0]);
        for st in Stage::ALL {
            assert!(
                line.contains(&format!("\"{}\":", st.name())),
                "missing {}",
                st.name()
            );
        }
        assert!(line.contains("\"llc_at_encrypt\":true"));
        assert!(line.contains("\"llc_at_nic_dma\":null"));
        assert!(line.contains("\"kind\":\"fresh\""));
        assert!(line.starts_with('{') && line.ends_with('}'));
    }

    #[test]
    fn timeseries_csv_shape() {
        let mut reg = Registry::new();
        let c = reg.counter("x.count");
        reg.inc(c);
        let mut ts = TimeSeries::new();
        ts.sample(Nanos::from_millis(5), &reg);
        assert!(!ts.is_empty());
        assert_eq!(ts.rows.len(), 1);
        assert_eq!(ts.rows[0], (5_000_000, "x.count".to_string(), 1.0));
    }

    #[test]
    fn labeled_samples_carry_server_prefix() {
        let mut reg = Registry::new();
        let c = reg.counter("atlas.responses");
        reg.inc(c);
        let mut ts = TimeSeries::new();
        ts.sample_labeled(Nanos::from_millis(1), &reg, "s3.");
        ts.push_value(Nanos::from_millis(1), "cluster.responses", 1.0);
        assert_eq!(ts.rows[0].1, "s3.atlas.responses");
        assert_eq!(ts.rows[1].1, "cluster.responses");
    }
}
