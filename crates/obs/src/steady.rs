//! Steady-state allocation accounting.
//!
//! The hot path of both servers is supposed to be allocation-free
//! once warm: per-chunk work reuses DMA buffers, inline scatter-
//! gather chunks, shared response headers, and per-server scratch
//! vectors whose capacity is established during warm-up. This module
//! is the audit trail for that claim: every *fallback* allocation on
//! a hot path — a scratch vector growing past its high-water mark, an
//! inline chunk overflowing to a heap `Vec` — calls [`note`], and the
//! tests assert the counter stays flat after warm-up.
//!
//! The counter is a thread-local (the simulator is single-threaded
//! per run; tests run one scenario per thread), costs one `Cell`
//! bump, and is entirely independent of tracing/profiling, so the
//! observability perturbation tests hold with it in place.

use std::cell::Cell;

thread_local! {
    static STEADY_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Record `n` hot-path fallback allocations.
pub fn note(n: u64) {
    STEADY_ALLOCS.with(|c| c.set(c.get() + n));
}

/// Record a scratch-capacity change: counts only if `after > before`
/// (i.e. the reuse discipline failed and the vector actually grew).
pub fn note_growth(before: usize, after: usize) {
    if after > before {
        note(1);
    }
}

/// Total hot-path fallback allocations on this thread so far.
#[must_use]
pub fn count() -> u64 {
    STEADY_ALLOCS.with(Cell::get)
}

/// Reset the counter (test setup).
pub fn reset() {
    STEADY_ALLOCS.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        reset();
        assert_eq!(count(), 0);
        note(2);
        note_growth(4, 8);
        note_growth(8, 8); // no growth: not a fallback
        note_growth(8, 4);
        assert_eq!(count(), 3);
        reset();
        assert_eq!(count(), 0);
    }
}
