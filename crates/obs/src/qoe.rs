//! Quality-of-experience accounting for adaptive streaming clients.
//!
//! A [`PlayoutSim`] models one viewer's playout buffer in virtual
//! time: downloaded segments credit buffered media, playback (once
//! started) drains it second-for-second, and an empty buffer is a
//! rebuffer event. Everything is exact arithmetic on [`Nanos`] — no
//! sampling — so the derived QoE metrics replay bit-identically with
//! the rest of the simulation.
//!
//! The metrics are the standard QoE quartet:
//!
//! * **startup delay** — first request → playback start;
//! * **rebuffer ratio** — stalled time / (played + stalled) time,
//!   with the convention that a session that requested media but
//!   never reached its startup threshold is *all* stall (ratio 1.0);
//! * **bitrate-switch count** — segment-to-segment rung changes;
//! * **time-weighted average bitrate** — ∫bitrate·dt over played
//!   time (what the viewer actually watched, not what was fetched).

use dcn_simcore::Nanos;

/// Playback state of one session.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PlayState {
    /// No media requested yet.
    Idle,
    /// Requested, buffering toward the startup threshold.
    Starting,
    /// Playing; buffer drains in real (virtual) time.
    Playing,
    /// Buffer hit empty mid-playback; refilling to the startup
    /// threshold.
    Rebuffering,
}

/// One viewer's virtual playout buffer + QoE accumulator.
#[derive(Clone, Debug)]
pub struct PlayoutSim {
    /// Buffered media ahead of the playhead.
    level: Nanos,
    /// Playback begins (and resumes after a stall) at this level.
    startup: Nanos,
    state: PlayState,
    /// When the first request was sent / the current state began.
    first_request: Option<Nanos>,
    state_since: Nanos,
    /// Accumulators (final values assembled by [`Self::finish`]).
    startup_delay: Option<Nanos>,
    play_time: Nanos,
    rebuffer_time: Nanos,
    rebuffer_events: u64,
    switches: u64,
    /// ∫ bitrate · dt over played time, in bit·seconds… dimensionally
    /// bits; divided by play time for the time-weighted average.
    bitrate_dt: f64,
    /// Bitrate currently at the playhead (of the most recently
    /// *consumed* segment; segment granularity is fine at our segment
    /// durations).
    playing_bps: f64,
    last_rung: Option<usize>,
}

/// Finished per-session QoE readout.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QoeStats {
    /// None ⇒ playback never started.
    pub startup_delay: Option<Nanos>,
    pub play_time: Nanos,
    pub rebuffer_time: Nanos,
    pub rebuffer_events: u64,
    pub switches: u64,
    /// Time-weighted average bitrate over played time (bps). 0 when
    /// nothing played.
    pub avg_bitrate_bps: f64,
    /// Stall fraction; see module docs for the never-started edge.
    pub rebuffer_ratio: f64,
}

impl PlayoutSim {
    #[must_use]
    pub fn new(startup: Nanos) -> Self {
        assert!(startup > Nanos::ZERO);
        PlayoutSim {
            level: Nanos::ZERO,
            startup,
            state: PlayState::Idle,
            first_request: None,
            state_since: Nanos::ZERO,
            startup_delay: None,
            play_time: Nanos::ZERO,
            rebuffer_time: Nanos::ZERO,
            rebuffer_events: 0,
            switches: 0,
            bitrate_dt: 0.0,
            playing_bps: 0.0,
            last_rung: None,
        }
    }

    /// The session's first request left at `now`: the startup-delay
    /// clock starts here.
    pub fn on_first_request(&mut self, now: Nanos) {
        if self.first_request.is_none() {
            self.first_request = Some(now);
            self.state = PlayState::Starting;
            self.state_since = now;
        }
    }

    /// Advance the playhead to `now`: drain the buffer over elapsed
    /// time, booking play/rebuffer time and any stall transition that
    /// happened in between.
    fn advance(&mut self, now: Nanos) {
        debug_assert_eq!(self.state, PlayState::Playing);
        let elapsed = now.saturating_sub(self.state_since);
        if elapsed <= self.level {
            self.level = self.level.saturating_sub(elapsed);
            self.play_time += elapsed;
            self.bitrate_dt += self.playing_bps * elapsed.as_secs_f64();
            self.state_since = now;
            return;
        }
        // Ran dry mid-interval: played `level`, then stalled.
        let played = self.level;
        self.play_time += played;
        self.bitrate_dt += self.playing_bps * played.as_secs_f64();
        self.level = Nanos::ZERO;
        self.state = PlayState::Rebuffering;
        self.rebuffer_events += 1;
        self.state_since += played;
        let stalled = now.saturating_sub(self.state_since);
        self.rebuffer_time += stalled;
        self.state_since = now;
    }

    /// A whole segment of `duration` playout at `bitrate_bps` (rung
    /// index `rung`) finished downloading at `now`.
    pub fn on_segment(&mut self, now: Nanos, duration: Nanos, bitrate_bps: f64, rung: usize) {
        self.advance_clock(now);
        if let Some(prev) = self.last_rung {
            if prev != rung {
                self.switches += 1;
            }
        }
        self.last_rung = Some(rung);
        self.level += duration;
        // Segment-granular playhead bitrate: good enough, and keeps
        // the accounting O(1) per segment.
        self.playing_bps = bitrate_bps;
        match self.state {
            PlayState::Starting if self.level >= self.startup => {
                self.startup_delay =
                    Some(now.saturating_sub(self.first_request.unwrap_or(Nanos::ZERO)));
                self.state = PlayState::Playing;
                self.state_since = now;
            }
            PlayState::Rebuffering if self.level >= self.startup => {
                self.state = PlayState::Playing;
                self.state_since = now;
            }
            _ => {}
        }
    }

    /// Book elapsed play/rebuffer time up to `now` (public so pacing
    /// decisions can read a current buffer level).
    pub fn advance_clock(&mut self, now: Nanos) {
        match self.state {
            PlayState::Playing => self.advance(now),
            PlayState::Rebuffering => {
                // Post-start stall: dead air, booked as rebuffering.
                self.rebuffer_time += now.saturating_sub(self.state_since);
                self.state_since = now;
            }
            PlayState::Starting => {
                // Pre-start wait is startup delay (measured from the
                // first request when playback begins), not rebuffer.
                self.state_since = now;
            }
            PlayState::Idle => {}
        }
    }

    /// Current buffered media at `now`.
    #[must_use]
    pub fn level_at(&mut self, now: Nanos) -> Nanos {
        self.advance_clock(now);
        self.level
    }

    /// Is the session currently stalled (started once, buffer dry)?
    #[must_use]
    pub fn is_rebuffering(&self) -> bool {
        self.state == PlayState::Rebuffering
    }

    /// Has playback started at least once?
    #[must_use]
    pub fn started(&self) -> bool {
        self.startup_delay.is_some()
    }

    /// Close the session at `now` and read out its QoE.
    #[must_use]
    pub fn finish(mut self, now: Nanos) -> QoeStats {
        self.advance_clock(now);
        let started = self.startup_delay.is_some();
        let requested = self.first_request.is_some();
        let watched = self.play_time + self.rebuffer_time;
        let rebuffer_ratio = if !requested {
            0.0
        } else if !started {
            // Viewer stared at a spinner for the whole session.
            1.0
        } else if watched == Nanos::ZERO {
            0.0
        } else {
            self.rebuffer_time.as_secs_f64() / watched.as_secs_f64()
        };
        let avg_bitrate_bps = if self.play_time > Nanos::ZERO {
            self.bitrate_dt / self.play_time.as_secs_f64()
        } else {
            0.0
        };
        QoeStats {
            startup_delay: self.startup_delay,
            play_time: self.play_time,
            rebuffer_time: self.rebuffer_time,
            rebuffer_events: self.rebuffer_events,
            switches: self.switches,
            avg_bitrate_bps,
            rebuffer_ratio,
        }
    }
}

/// Fleet-wide QoE aggregate (the `qoe.*` registry family and the
/// `RunMetrics::qoe` field).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QoeSummary {
    pub sessions: u64,
    /// Sessions whose playback started.
    pub started: u64,
    /// Mean startup delay over started sessions, ms.
    pub startup_ms_mean: f64,
    /// Worst startup delay, ms.
    pub startup_ms_max: f64,
    /// Σ rebuffer / Σ (play + rebuffer) over started sessions, plus
    /// never-started sessions counted as all-stall.
    pub rebuffer_ratio: f64,
    pub rebuffer_events: u64,
    pub switches: u64,
    /// Play-time-weighted average bitrate across the fleet, Mbps.
    pub avg_bitrate_mbps: f64,
}

impl QoeSummary {
    /// Aggregate per-session stats. `horizon` is the session span
    /// used to weigh never-started sessions as all-stall.
    #[must_use]
    pub fn aggregate(stats: &[QoeStats], horizon: Nanos) -> QoeSummary {
        let mut s = QoeSummary {
            sessions: stats.len() as u64,
            ..QoeSummary::default()
        };
        let mut startup_sum_ms = 0.0;
        let mut play = 0.0;
        let mut stall = 0.0;
        let mut bitrate_dt = 0.0;
        for q in stats {
            if let Some(d) = q.startup_delay {
                s.started += 1;
                let ms = d.as_millis_f64();
                startup_sum_ms += ms;
                s.startup_ms_max = s.startup_ms_max.max(ms);
                play += q.play_time.as_secs_f64();
                stall += q.rebuffer_time.as_secs_f64();
            } else {
                stall += horizon.as_secs_f64();
            }
            s.rebuffer_events += q.rebuffer_events;
            s.switches += q.switches;
            bitrate_dt += q.avg_bitrate_bps * q.play_time.as_secs_f64();
        }
        if s.started > 0 {
            s.startup_ms_mean = startup_sum_ms / s.started as f64;
        }
        if play + stall > 0.0 {
            s.rebuffer_ratio = stall / (play + stall);
        }
        if play > 0.0 {
            s.avg_bitrate_mbps = bitrate_dt / play / 1e6;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    /// Hand-computed: startup threshold 150 ms, two 100 ms segments
    /// arrive at t=40 ms and t=60 ms (start at 60 ms, level 200 ms),
    /// playback then drains undisturbed until the close at t=200 ms.
    /// No rebuffering anywhere.
    #[test]
    fn zero_rebuffer_fixture() {
        let mut p = PlayoutSim::new(Nanos(150 * MS));
        p.on_first_request(Nanos(10 * MS));
        p.on_segment(Nanos(40 * MS), Nanos(100 * MS), 1e6, 0);
        assert!(!p.started(), "one segment is below the startup level");
        p.on_segment(Nanos(60 * MS), Nanos(100 * MS), 1e6, 0);
        assert!(p.started());
        let q = p.finish(Nanos(200 * MS));
        assert_eq!(q.startup_delay, Some(Nanos(50 * MS)), "10 ms → 60 ms");
        assert_eq!(q.play_time, Nanos(140 * MS), "60 ms → 200 ms");
        assert_eq!(q.rebuffer_time, Nanos::ZERO);
        assert_eq!(q.rebuffer_events, 0);
        assert_eq!(q.rebuffer_ratio, 0.0);
        assert_eq!(q.switches, 0);
        assert!((q.avg_bitrate_bps - 1e6).abs() < 1e-6);
    }

    /// Hand-computed rebuffer: start with exactly the startup level
    /// (100 ms) at t=0, then the next segment only lands at t=250 ms.
    /// The buffer runs dry at t=100 ms ⇒ 150 ms of stall; the refill
    /// (100 ms < startup… two segments needed) resumes at t=260 ms.
    #[test]
    fn rebuffer_interval_is_exact() {
        let mut p = PlayoutSim::new(Nanos(100 * MS));
        p.on_first_request(Nanos::ZERO);
        p.on_segment(Nanos::ZERO, Nanos(100 * MS), 2e6, 1);
        assert!(p.started());
        p.on_segment(Nanos(250 * MS), Nanos(50 * MS), 1e6, 0);
        assert!(p.is_rebuffering(), "50 ms refill < 100 ms startup");
        p.on_segment(Nanos(260 * MS), Nanos(50 * MS), 1e6, 0);
        assert!(!p.is_rebuffering());
        let q = p.finish(Nanos(300 * MS));
        assert_eq!(q.rebuffer_events, 1);
        // Stall from t=100 ms to t=260 ms.
        assert_eq!(q.rebuffer_time, Nanos(160 * MS));
        // Played 0→100 and 260→300.
        assert_eq!(q.play_time, Nanos(140 * MS));
        let want = 160.0 / (160.0 + 140.0);
        assert!((q.rebuffer_ratio - want).abs() < 1e-12);
        assert_eq!(q.switches, 1, "rung 1 → rung 0");
    }

    /// Never-started edge: media was requested but the buffer never
    /// reached the startup threshold — all spinner, ratio 1.0.
    #[test]
    fn never_started_is_all_stall() {
        let mut p = PlayoutSim::new(Nanos(100 * MS));
        p.on_first_request(Nanos::ZERO);
        p.on_segment(Nanos(50 * MS), Nanos(40 * MS), 1e6, 0);
        let q = p.finish(Nanos(500 * MS));
        assert_eq!(q.startup_delay, None);
        assert_eq!(q.rebuffer_ratio, 1.0);
        assert_eq!(q.play_time, Nanos::ZERO);
        assert_eq!(q.avg_bitrate_bps, 0.0);
    }

    /// A session that never even requested media is not penalized.
    #[test]
    fn idle_session_has_zero_ratio() {
        let p = PlayoutSim::new(Nanos(100 * MS));
        let q = p.finish(Nanos(500 * MS));
        assert_eq!(q.rebuffer_ratio, 0.0);
        assert_eq!(q.startup_delay, None);
    }

    #[test]
    fn aggregate_weighs_never_started_as_stall() {
        let horizon = Nanos(1_000 * MS);
        let started = QoeStats {
            startup_delay: Some(Nanos(100 * MS)),
            play_time: Nanos(900 * MS),
            rebuffer_time: Nanos(100 * MS),
            rebuffer_events: 1,
            switches: 2,
            avg_bitrate_bps: 4e6,
            rebuffer_ratio: 0.1,
        };
        let spinner = QoeStats {
            rebuffer_ratio: 1.0,
            ..QoeStats::default()
        };
        let s = QoeSummary::aggregate(&[started, spinner], horizon);
        assert_eq!(s.sessions, 2);
        assert_eq!(s.started, 1);
        assert!((s.startup_ms_mean - 100.0).abs() < 1e-9);
        // stall = 0.1 s + 1.0 s horizon; play = 0.9 s.
        let want = 1.1 / 2.0;
        assert!((s.rebuffer_ratio - want).abs() < 1e-12);
        assert!((s.avg_bitrate_mbps - 4.0).abs() < 1e-9);
        assert_eq!(s.switches, 2);
    }
}
