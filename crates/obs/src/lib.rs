//! # dcn-obs — cross-stack observability for the Disk|Crypt|Net stack
//!
//! Zero-overhead-when-disabled instrumentation, in four pieces:
//!
//! * [`Tracer`] — a chunk-lifecycle tracer that stamps every 300 KB
//!   chunk at each pipeline stage (ACK arrival → watermark trigger →
//!   NVMe submit → firmware completion → encrypt start/end → TSO
//!   packetize → NIC TX DMA → buffer recycle) in virtual time, and
//!   records whether the chunk's buffer was still LLC-resident when
//!   the CPU encrypted it and when the NIC DMA'd it out (the paper's
//!   Fig 12/14 "sub-optimal memory access pattern" classification,
//!   per chunk instead of inferred from aggregate counters).
//! * [`StageProfiler`] — aggregate per-stage cycle and DRAM-traffic
//!   attribution: the sweep loops declare a current stage per core,
//!   and the CPU/memory models report every cycle charge and DRAM
//!   byte into it, yielding chunks/sec/core, cycles/chunk quantiles,
//!   DRAM-bytes-per-net-byte, and stall attribution for the
//!   `perf_baseline` regression gate.
//! * [`Registry`] — named counters / gauges / histograms behind cheap
//!   integer handles. Registration (naming, labelling) allocates;
//!   the hot path is a `Vec` index increment. All stack components
//!   publish into one registry per server so experiments query a
//!   single surface.
//! * [`export`] — hand-rolled JSON-lines and CSV emitters (the
//!   container builds offline; no serde), wired into the workload
//!   runner and `fig*` binaries behind `--trace-out`/`--metrics-out`.
//!
//! Everything here is *observational*: with tracing enabled or
//! disabled, the simulation makes bit-identical decisions (LLC
//! residency queries use the non-mutating [`probe`] path), so a seed
//! produces the same figures either way.
//!
//! [`probe`]: https://en.wikipedia.org/wiki/Cache_placement_policies

pub mod export;
pub mod profile;
pub mod qoe;
pub mod registry;
pub mod steady;
pub mod trace;

pub use profile::{
    ProfHandle, ProfReport, ProfStage, StageProfiler, StallKind, PROF_STAGE_COUNT, STALL_KIND_COUNT,
};
pub use qoe::{PlayoutSim, QoeStats, QoeSummary};
pub use registry::{CounterId, GaugeId, HistId, Registry};
pub use trace::{ChunkKind, ChunkTrace, Stage, Tracer, STAGE_COUNT};
