//! The diskmap kernel module.
//!
//! Owns the NVMe devices, detaches datapath queue pairs from the
//! in-kernel stack, pre-allocates the shared non-pageable memory
//! (queues + buffers), programs the per-device IOMMU domain, and
//! exposes the two privileged operations libnvme needs: the attach
//! ioctl and the doorbell syscall. Administrative queue pairs stay
//! kernel-side (device reset / format keep working), exactly as
//! described in §3.1.2.

use crate::bufpool::BufPool;
use crate::iommu::IommuDomain;
use dcn_mem::{HostMem, MemSystem, PhysAlloc};
use dcn_nvme::{NvmeCommand, NvmeDevice};
use dcn_simcore::{earliest, Nanos};

/// Index of a disk within the kernel's device table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DiskId(pub usize);

/// Errors surfaced to userspace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskmapError {
    /// Queue pair already attached to another consumer.
    Busy,
    /// No such disk / queue pair.
    NoEntry,
    /// A command referenced memory outside the IOMMU domain.
    IommuFault,
    /// Submission queue full.
    QueueFull,
}

impl std::fmt::Display for DiskmapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DiskmapError::Busy => "queue pair busy",
            DiskmapError::NoEntry => "no such disk or queue pair",
            DiskmapError::IommuFault => "DMA outside IOMMU domain",
            DiskmapError::QueueFull => "submission queue full",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DiskmapError {}

struct Attachment {
    disk: DiskId,
    qid: u16,
    domain: IommuDomain,
}

/// The kernel side of diskmap.
pub struct DiskmapKernel {
    disks: Vec<NvmeDevice>,
    attachments: Vec<Attachment>,
    /// Syscall count (the paper's batching argument, §3.1.4, is about
    /// amortizing exactly these).
    pub syscalls: u64,
}

impl DiskmapKernel {
    #[must_use]
    pub fn new(disks: Vec<NvmeDevice>) -> Self {
        DiskmapKernel {
            disks,
            attachments: Vec::new(),
            syscalls: 0,
        }
    }

    #[must_use]
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// Publish kernel-side storage counters into a dcn-obs registry
    /// under `diskmap.*` (sample/report points, not the I/O path).
    pub fn publish_metrics(&self, reg: &mut dcn_obs::Registry) {
        let g = reg.gauge("diskmap.syscalls");
        reg.set(g, self.syscalls as f64);
        let g = reg.gauge("diskmap.disks");
        reg.set(g, self.disks.len() as f64);
        let g = reg.gauge("diskmap.attachments");
        reg.set(g, self.attachments.len() as f64);
    }

    pub fn disk(&mut self, id: DiskId) -> &mut NvmeDevice {
        &mut self.disks[id.0]
    }

    /// The attach ioctl: detach `(disk, qid)` from the in-kernel
    /// stack, allocate `buf_count` DMA buffers of `buf_size` bytes,
    /// and program the IOMMU with the queue + buffer memory. Returns
    /// the buffer pool (the userspace mapping of the shared memory).
    pub fn attach(
        &mut self,
        disk: DiskId,
        qid: u16,
        buf_count: u32,
        buf_size: u64,
        phys: &mut PhysAlloc,
        enforce_iommu: bool,
    ) -> Result<(BufPool, usize), DiskmapError> {
        if disk.0 >= self.disks.len() || qid >= self.disks[disk.0].config().num_qpairs {
            return Err(DiskmapError::NoEntry);
        }
        if self
            .attachments
            .iter()
            .any(|a| a.disk == disk && a.qid == qid)
        {
            return Err(DiskmapError::Busy);
        }
        let pool = BufPool::new(buf_count, buf_size, phys);
        let mut domain = if enforce_iommu {
            IommuDomain::new()
        } else {
            IommuDomain::passthrough()
        };
        for r in pool.all_regions() {
            domain.map(r);
        }
        self.attachments.push(Attachment { disk, qid, domain });
        let token = self.attachments.len() - 1;
        Ok((pool, token))
    }

    /// The doorbell syscall: validate `cmds` against the attachment's
    /// IOMMU domain, push them into the device SQ, and ring the SQ
    /// tail doorbell. All-or-nothing per call. Returns the number of
    /// commands admitted.
    pub fn sqsync(
        &mut self,
        token: usize,
        now: Nanos,
        cmds: &mut Vec<NvmeCommand>,
    ) -> Result<usize, DiskmapError> {
        self.syscalls += 1;
        let att = self.attachments.get(token).ok_or(DiskmapError::NoEntry)?;
        for cmd in cmds.iter() {
            for prp in &cmd.prp {
                if !att.domain.check(*prp) {
                    return Err(DiskmapError::IommuFault);
                }
            }
        }
        let dev = &mut self.disks[att.disk.0];
        let qp = dev.qpair(att.qid);
        let mut admitted = 0;
        for cmd in cmds.drain(..) {
            if !qp.sq_push(cmd) {
                // SQ full: stop; caller retries the rest later.
                dev.ring_sq_doorbell(now, att.qid);
                return Err(DiskmapError::QueueFull);
            }
            admitted += 1;
        }
        dev.ring_sq_doorbell(now, att.qid);
        Ok(admitted)
    }

    /// Userspace-visible completion consumption (CQ is mapped shared
    /// memory; no syscall). The CQ head doorbell write is folded into
    /// the next `sqsync`.
    pub fn consume(
        &mut self,
        token: usize,
        max: usize,
    ) -> Result<Vec<dcn_nvme::CompletionEntry>, DiskmapError> {
        let att = self.attachments.get(token).ok_or(DiskmapError::NoEntry)?;
        let dev = &mut self.disks[att.disk.0];
        Ok(dev.qpair(att.qid).cq_consume(max))
    }

    /// Earliest instant any disk has a completion to post.
    #[must_use]
    pub fn poll_at(&self) -> Option<Nanos> {
        self.disks
            .iter()
            .fold(None, |acc, d| earliest(acc, d.poll_at()))
    }

    /// Advance all devices to `now` (DMA through the memory model).
    pub fn advance(&mut self, now: Nanos, mem: &mut MemSystem, host: &mut HostMem) -> usize {
        self.disks
            .iter_mut()
            .map(|d| d.advance(now, mem, host))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_mem::{CostParams, LlcConfig, PhysRegion};
    use dcn_nvme::{NvmeConfig, Opcode, SyntheticBacking};

    fn kernel(n_disks: usize) -> DiskmapKernel {
        let disks = (0..n_disks)
            .map(|i| {
                NvmeDevice::new(
                    NvmeConfig::default(),
                    Box::new(SyntheticBacking::new(7 + i as u64)),
                    100 + i as u64,
                )
            })
            .collect();
        DiskmapKernel::new(disks)
    }

    fn mem() -> (MemSystem, HostMem, PhysAlloc) {
        (
            MemSystem::new(
                LlcConfig::xeon_e5_2667v3(),
                CostParams::default(),
                Nanos::from_millis(1),
            ),
            HostMem::new(),
            PhysAlloc::new(),
        )
    }

    fn read_into(buf: PhysRegion, cid: u16, slba: u64, len: u64) -> NvmeCommand {
        let mut prp = Vec::new();
        let mut off = 0;
        while off < len {
            let n = (len - off).min(4096);
            prp.push(buf.slice(off, n));
            off += n;
        }
        NvmeCommand {
            opcode: Opcode::Read,
            cid,
            nsid: 1,
            slba,
            nlb: (len / 512) as u32,
            prp,
        }
    }

    #[test]
    fn attach_then_io_round_trip() {
        let (mut m, mut h, mut pa) = mem();
        let mut k = kernel(1);
        let (mut pool, tok) = k.attach(DiskId(0), 0, 8, 16384, &mut pa, true).unwrap();
        let b = pool.alloc().unwrap();
        let mut cmds = vec![read_into(pool.region(b), 1, 0, 16384)];
        k.sqsync(tok, Nanos::ZERO, &mut cmds).unwrap();
        let mut n = 0;
        while let Some(t) = k.poll_at() {
            n += k.advance(t, &mut m, &mut h);
        }
        assert_eq!(n, 1);
        let entries = k.consume(tok, 16).unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn double_attach_is_busy() {
        let mut pa = PhysAlloc::new();
        let mut k = kernel(1);
        k.attach(DiskId(0), 0, 4, 4096, &mut pa, true).unwrap();
        assert!(matches!(
            k.attach(DiskId(0), 0, 4, 4096, &mut pa, true),
            Err(DiskmapError::Busy)
        ));
        // A different queue pair of the same disk is fine (share-free
        // multi-core design).
        assert!(k.attach(DiskId(0), 1, 4, 4096, &mut pa, true).is_ok());
    }

    #[test]
    fn attach_bad_ids_fail() {
        let mut pa = PhysAlloc::new();
        let mut k = kernel(1);
        assert!(matches!(
            k.attach(DiskId(3), 0, 4, 4096, &mut pa, true),
            Err(DiskmapError::NoEntry)
        ));
        assert!(matches!(
            k.attach(DiskId(0), 99, 4, 4096, &mut pa, true),
            Err(DiskmapError::NoEntry)
        ));
    }

    #[test]
    fn iommu_blocks_stray_dma() {
        let (_m, _h, mut pa) = mem();
        let mut k = kernel(1);
        let (_pool, tok) = k.attach(DiskId(0), 0, 4, 16384, &mut pa, true).unwrap();
        // A buffer the kernel never mapped (e.g. arbitrary userspace
        // address) must be rejected at the syscall boundary.
        let stray = pa.alloc(16384);
        let mut cmds = vec![read_into(stray, 1, 0, 16384)];
        assert!(matches!(
            k.sqsync(tok, Nanos::ZERO, &mut cmds),
            Err(DiskmapError::IommuFault)
        ));
    }

    #[test]
    fn syscall_counter_tracks_batching() {
        let (_m, _h, mut pa) = mem();
        let mut k = kernel(1);
        let (mut pool, tok) = k.attach(DiskId(0), 0, 64, 16384, &mut pa, true).unwrap();
        // 32 commands in one sqsync = 1 syscall.
        let mut cmds: Vec<NvmeCommand> = (0..32u16)
            .map(|i| {
                let b = pool.alloc().unwrap();
                read_into(pool.region(b), i, u64::from(i) * 32, 16384)
            })
            .collect();
        k.sqsync(tok, Nanos::ZERO, &mut cmds).unwrap();
        assert_eq!(k.syscalls, 1);
    }

    #[test]
    fn multiple_disks_complete_independently() {
        let (mut m, mut h, mut pa) = mem();
        let mut k = kernel(4);
        let mut toks = Vec::new();
        for d in 0..4 {
            let (mut pool, tok) = k.attach(DiskId(d), 0, 4, 16384, &mut pa, true).unwrap();
            let b = pool.alloc().unwrap();
            let mut cmds = vec![read_into(pool.region(b), 1, 64, 16384)];
            k.sqsync(tok, Nanos::ZERO, &mut cmds).unwrap();
            toks.push(tok);
        }
        while let Some(t) = k.poll_at() {
            k.advance(t, &mut m, &mut h);
        }
        for tok in toks {
            assert_eq!(k.consume(tok, 8).unwrap().len(), 1);
        }
    }
}
