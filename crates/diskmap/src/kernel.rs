//! The diskmap kernel module.
//!
//! Owns the NVMe devices, detaches datapath queue pairs from the
//! in-kernel stack, pre-allocates the shared non-pageable memory
//! (queues + buffers), programs the per-device IOMMU domain, and
//! exposes the two privileged operations libnvme needs: the attach
//! ioctl and the doorbell syscall. Administrative queue pairs stay
//! kernel-side (device reset / format keep working), exactly as
//! described in §3.1.2.

use crate::bufpool::BufPool;
use crate::iommu::IommuDomain;
use dcn_mem::{HostMem, MemSystem, PhysAlloc};
use dcn_nvme::{NvmeCommand, NvmeDevice};
use dcn_simcore::{earliest, Nanos};

/// Index of a disk within the kernel's device table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DiskId(pub usize);

/// Errors surfaced to userspace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskmapError {
    /// Queue pair already attached to another consumer.
    Busy,
    /// No such disk / queue pair.
    NoEntry,
    /// A command referenced memory outside the IOMMU domain.
    IommuFault,
    /// Submission queue full.
    QueueFull,
}

impl std::fmt::Display for DiskmapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DiskmapError::Busy => "queue pair busy",
            DiskmapError::NoEntry => "no such disk or queue pair",
            DiskmapError::IommuFault => "DMA outside IOMMU domain",
            DiskmapError::QueueFull => "submission queue full",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DiskmapError {}

struct Attachment {
    disk: DiskId,
    qid: u16,
    domain: IommuDomain,
}

/// The kernel side of diskmap.
pub struct DiskmapKernel {
    disks: Vec<NvmeDevice>,
    attachments: Vec<Attachment>,
    /// Syscall count (the paper's batching argument, §3.1.4, is about
    /// amortizing exactly these).
    pub syscalls: u64,
    /// Seeded submission-queue reject injection (`None` = never).
    sq_faults: Option<dcn_faults::SqFaultInjector>,
}

impl DiskmapKernel {
    #[must_use]
    pub fn new(disks: Vec<NvmeDevice>) -> Self {
        DiskmapKernel {
            disks,
            attachments: Vec::new(),
            syscalls: 0,
            sq_faults: None,
        }
    }

    /// Arm seeded SQ-reject injection: each non-empty `sqsync` is
    /// refused with probability `reject_p` (reported `QueueFull`,
    /// commands left staged).
    pub fn set_sq_faults(&mut self, reject_p: f64, seed: u64) {
        let inj = dcn_faults::SqFaultInjector::new(reject_p, seed);
        self.sq_faults = if inj.is_active() { Some(inj) } else { None };
    }

    /// Number of injected SQ rejects fired so far.
    #[must_use]
    pub fn sq_rejects(&self) -> u64 {
        self.sq_faults.as_ref().map_or(0, |i| i.rejects)
    }

    #[must_use]
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// Publish kernel-side storage counters into a dcn-obs registry
    /// under `diskmap.*` (sample/report points, not the I/O path).
    pub fn publish_metrics(&self, reg: &mut dcn_obs::Registry) {
        let g = reg.gauge("diskmap.syscalls");
        reg.set(g, self.syscalls as f64);
        let g = reg.gauge("diskmap.disks");
        reg.set(g, self.disks.len() as f64);
        let g = reg.gauge("diskmap.attachments");
        reg.set(g, self.attachments.len() as f64);
        let g = reg.gauge("faults.sq_rejects");
        reg.set(g, self.sq_rejects() as f64);
        let (errors, spikes) = self.disks.iter().fold((0, 0), |(e, s), d| {
            d.fault_injector()
                .map_or((e, s), |i| (e + i.read_errors, s + i.latency_spikes))
        });
        let g = reg.gauge("faults.nvme_read_errors");
        reg.set(g, errors as f64);
        let g = reg.gauge("faults.nvme_latency_spikes");
        reg.set(g, spikes as f64);
    }

    pub fn disk(&mut self, id: DiskId) -> &mut NvmeDevice {
        &mut self.disks[id.0]
    }

    /// The attach ioctl: detach `(disk, qid)` from the in-kernel
    /// stack, allocate `buf_count` DMA buffers of `buf_size` bytes,
    /// and program the IOMMU with the queue + buffer memory. Returns
    /// the buffer pool (the userspace mapping of the shared memory).
    pub fn attach(
        &mut self,
        disk: DiskId,
        qid: u16,
        buf_count: u32,
        buf_size: u64,
        phys: &mut PhysAlloc,
        enforce_iommu: bool,
    ) -> Result<(BufPool, usize), DiskmapError> {
        if disk.0 >= self.disks.len() || qid >= self.disks[disk.0].config().num_qpairs {
            return Err(DiskmapError::NoEntry);
        }
        if self
            .attachments
            .iter()
            .any(|a| a.disk == disk && a.qid == qid)
        {
            return Err(DiskmapError::Busy);
        }
        let pool = BufPool::new(buf_count, buf_size, phys);
        let mut domain = if enforce_iommu {
            IommuDomain::new()
        } else {
            IommuDomain::passthrough()
        };
        for r in pool.all_regions() {
            domain.map(r);
        }
        self.attachments.push(Attachment { disk, qid, domain });
        let token = self.attachments.len() - 1;
        Ok((pool, token))
    }

    /// The doorbell syscall: validate `cmds` against the attachment's
    /// IOMMU domain, push them into the device SQ, and ring the SQ
    /// tail doorbell. Admission is a prefix: on a full SQ (real or
    /// fault-injected) the admitted commands are removed from `cmds`,
    /// the rest are **left in place** for the caller to resubmit, and
    /// the call reports `QueueFull`.
    pub fn sqsync(
        &mut self,
        token: usize,
        now: Nanos,
        cmds: &mut Vec<NvmeCommand>,
    ) -> Result<usize, DiskmapError> {
        self.syscalls += 1;
        let att = self.attachments.get(token).ok_or(DiskmapError::NoEntry)?;
        for cmd in cmds.iter() {
            for prp in &cmd.prp {
                if !att.domain.check(*prp) {
                    return Err(DiskmapError::IommuFault);
                }
            }
        }
        // Fault injection: the device momentarily refuses admission,
        // exactly as if the SQ were full. Nothing is lost — the whole
        // batch stays staged in `cmds`.
        if let Some(inj) = &mut self.sq_faults {
            if !cmds.is_empty() && inj.reject() {
                return Err(DiskmapError::QueueFull);
            }
        }
        let dev = &mut self.disks[att.disk.0];
        let qp = dev.qpair(att.qid);
        let mut admitted = 0;
        for cmd in cmds.iter() {
            if !qp.sq_push(cmd.clone()) {
                break;
            }
            admitted += 1;
        }
        if admitted > 0 {
            dev.ring_sq_doorbell(now, att.qid);
        }
        if admitted < cmds.len() {
            // SQ full mid-batch: keep the unadmitted tail staged.
            cmds.drain(..admitted);
            return Err(DiskmapError::QueueFull);
        }
        cmds.clear();
        Ok(admitted)
    }

    /// Userspace-visible completion consumption (CQ is mapped shared
    /// memory; no syscall). The CQ head doorbell write is folded into
    /// the next `sqsync`.
    pub fn consume(
        &mut self,
        token: usize,
        max: usize,
    ) -> Result<Vec<dcn_nvme::CompletionEntry>, DiskmapError> {
        let att = self.attachments.get(token).ok_or(DiskmapError::NoEntry)?;
        let dev = &mut self.disks[att.disk.0];
        Ok(dev.qpair(att.qid).cq_consume(max))
    }

    /// Earliest instant any disk has a completion to post.
    #[must_use]
    pub fn poll_at(&self) -> Option<Nanos> {
        self.disks
            .iter()
            .fold(None, |acc, d| earliest(acc, d.poll_at()))
    }

    /// Advance all devices to `now` (DMA through the memory model).
    pub fn advance(&mut self, now: Nanos, mem: &mut MemSystem, host: &mut HostMem) -> usize {
        self.disks
            .iter_mut()
            .map(|d| d.advance(now, mem, host))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_mem::{CostParams, LlcConfig, PhysRegion};
    use dcn_nvme::{NvmeConfig, Opcode, SyntheticBacking};

    fn kernel(n_disks: usize) -> DiskmapKernel {
        let disks = (0..n_disks)
            .map(|i| {
                NvmeDevice::new(
                    NvmeConfig::default(),
                    Box::new(SyntheticBacking::new(7 + i as u64)),
                    100 + i as u64,
                )
            })
            .collect();
        DiskmapKernel::new(disks)
    }

    fn mem() -> (MemSystem, HostMem, PhysAlloc) {
        (
            MemSystem::new(
                LlcConfig::xeon_e5_2667v3(),
                CostParams::default(),
                Nanos::from_millis(1),
            ),
            HostMem::new(),
            PhysAlloc::new(),
        )
    }

    fn read_into(buf: PhysRegion, cid: u16, slba: u64, len: u64) -> NvmeCommand {
        let mut prp = Vec::new();
        let mut off = 0;
        while off < len {
            let n = (len - off).min(4096);
            prp.push(buf.slice(off, n));
            off += n;
        }
        NvmeCommand {
            opcode: Opcode::Read,
            cid,
            nsid: 1,
            slba,
            nlb: (len / 512) as u32,
            prp,
        }
    }

    #[test]
    fn attach_then_io_round_trip() {
        let (mut m, mut h, mut pa) = mem();
        let mut k = kernel(1);
        let (mut pool, tok) = k.attach(DiskId(0), 0, 8, 16384, &mut pa, true).unwrap();
        let b = pool.alloc().unwrap();
        let mut cmds = vec![read_into(pool.region(b), 1, 0, 16384)];
        k.sqsync(tok, Nanos::ZERO, &mut cmds).unwrap();
        let mut n = 0;
        while let Some(t) = k.poll_at() {
            n += k.advance(t, &mut m, &mut h);
        }
        assert_eq!(n, 1);
        let entries = k.consume(tok, 16).unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn double_attach_is_busy() {
        let mut pa = PhysAlloc::new();
        let mut k = kernel(1);
        k.attach(DiskId(0), 0, 4, 4096, &mut pa, true).unwrap();
        assert!(matches!(
            k.attach(DiskId(0), 0, 4, 4096, &mut pa, true),
            Err(DiskmapError::Busy)
        ));
        // A different queue pair of the same disk is fine (share-free
        // multi-core design).
        assert!(k.attach(DiskId(0), 1, 4, 4096, &mut pa, true).is_ok());
    }

    #[test]
    fn attach_bad_ids_fail() {
        let mut pa = PhysAlloc::new();
        let mut k = kernel(1);
        assert!(matches!(
            k.attach(DiskId(3), 0, 4, 4096, &mut pa, true),
            Err(DiskmapError::NoEntry)
        ));
        assert!(matches!(
            k.attach(DiskId(0), 99, 4, 4096, &mut pa, true),
            Err(DiskmapError::NoEntry)
        ));
    }

    #[test]
    fn iommu_blocks_stray_dma() {
        let (_m, _h, mut pa) = mem();
        let mut k = kernel(1);
        let (_pool, tok) = k.attach(DiskId(0), 0, 4, 16384, &mut pa, true).unwrap();
        // A buffer the kernel never mapped (e.g. arbitrary userspace
        // address) must be rejected at the syscall boundary.
        let stray = pa.alloc(16384);
        let mut cmds = vec![read_into(stray, 1, 0, 16384)];
        assert!(matches!(
            k.sqsync(tok, Nanos::ZERO, &mut cmds),
            Err(DiskmapError::IommuFault)
        ));
    }

    #[test]
    fn syscall_counter_tracks_batching() {
        let (_m, _h, mut pa) = mem();
        let mut k = kernel(1);
        let (mut pool, tok) = k.attach(DiskId(0), 0, 64, 16384, &mut pa, true).unwrap();
        // 32 commands in one sqsync = 1 syscall.
        let mut cmds: Vec<NvmeCommand> = (0..32u16)
            .map(|i| {
                let b = pool.alloc().unwrap();
                read_into(pool.region(b), i, u64::from(i) * 32, 16384)
            })
            .collect();
        k.sqsync(tok, Nanos::ZERO, &mut cmds).unwrap();
        assert_eq!(k.syscalls, 1);
    }

    #[test]
    fn full_sq_admits_prefix_and_preserves_tail() {
        let (mut m, mut h, mut pa) = mem();
        // Tiny SQ so a batch overflows it: depth 8 admits 7.
        let disks = vec![NvmeDevice::new(
            NvmeConfig {
                queue_depth: 8,
                ..NvmeConfig::default()
            },
            Box::new(SyntheticBacking::new(7)),
            100,
        )];
        let mut k = DiskmapKernel::new(disks);
        let (mut pool, tok) = k.attach(DiskId(0), 0, 16, 16384, &mut pa, true).unwrap();
        let mut cmds: Vec<NvmeCommand> = (0..12u16)
            .map(|i| {
                let b = pool.alloc().unwrap();
                read_into(pool.region(b), i, u64::from(i) * 32, 16384)
            })
            .collect();
        assert!(matches!(
            k.sqsync(tok, Nanos::ZERO, &mut cmds),
            Err(DiskmapError::QueueFull)
        ));
        let admitted_first = 12 - cmds.len();
        assert!(admitted_first > 0, "a prefix must be admitted");
        assert!(!cmds.is_empty(), "the tail must survive for resubmission");
        // The unadmitted tail keeps its identity (no silent loss).
        assert_eq!(cmds[0].cid, admitted_first as u16);
        // Drain the device, resubmit the tail: every command
        // eventually completes exactly once.
        let mut completed = Vec::new();
        loop {
            while let Some(t) = k.poll_at() {
                k.advance(t, &mut m, &mut h);
            }
            completed.extend(k.consume(tok, 16).unwrap());
            if cmds.is_empty() {
                break;
            }
            let _ = k.sqsync(tok, Nanos::from_millis(1), &mut cmds);
        }
        while k.poll_at().is_some() {
            let t = k.poll_at().unwrap();
            k.advance(t, &mut m, &mut h);
        }
        completed.extend(k.consume(tok, 16).unwrap());
        let mut cids: Vec<u16> = completed.iter().map(|e| e.cid).collect();
        cids.sort_unstable();
        assert_eq!(cids, (0..12u16).collect::<Vec<_>>());
    }

    #[test]
    fn injected_sq_rejects_keep_commands_staged() {
        let (mut m, mut h, mut pa) = mem();
        let mut k = kernel(1);
        let (mut pool, tok) = k.attach(DiskId(0), 0, 8, 16384, &mut pa, true).unwrap();
        k.set_sq_faults(1.0, 42);
        let b = pool.alloc().unwrap();
        let mut cmds = vec![read_into(pool.region(b), 1, 0, 16384)];
        assert!(matches!(
            k.sqsync(tok, Nanos::ZERO, &mut cmds),
            Err(DiskmapError::QueueFull)
        ));
        assert_eq!(cmds.len(), 1, "rejected batch stays staged");
        assert_eq!(k.sq_rejects(), 1);
        // Disarm and resubmit: the same command goes through.
        k.set_sq_faults(0.0, 42);
        k.sqsync(tok, Nanos::from_micros(1), &mut cmds).unwrap();
        assert!(cmds.is_empty());
        while let Some(t) = k.poll_at() {
            k.advance(t, &mut m, &mut h);
        }
        assert_eq!(k.consume(tok, 16).unwrap().len(), 1);
    }

    #[test]
    fn multiple_disks_complete_independently() {
        let (mut m, mut h, mut pa) = mem();
        let mut k = kernel(4);
        let mut toks = Vec::new();
        for d in 0..4 {
            let (mut pool, tok) = k.attach(DiskId(d), 0, 4, 16384, &mut pa, true).unwrap();
            let b = pool.alloc().unwrap();
            let mut cmds = vec![read_into(pool.region(b), 1, 64, 16384)];
            k.sqsync(tok, Nanos::ZERO, &mut cmds).unwrap();
            toks.push(tok);
        }
        while let Some(t) = k.poll_at() {
            k.advance(t, &mut m, &mut h);
        }
        for tok in toks {
            assert_eq!(k.consume(tok, 8).unwrap().len(), 1);
        }
    }
}
