//! # dcn-diskmap — kernel-bypass NVMe storage framework
//!
//! Reimplementation of the paper's first contribution (§3.1.2): a
//! netmap-inspired service that maps NVMe datapath queue pairs and
//! pre-allocated DMA buffer memory into userspace, with the OS
//! mediating only privileged operations (attach, doorbell writes)
//! and the IOMMU enforcing memory safety.
//!
//! The crate has two halves, mirroring the paper's architecture
//! (Fig 7):
//!
//! * [`kernel`] — the *diskmap kernel module*: detaches datapath
//!   queue pairs from the in-kernel stack, pre-allocates non-pageable
//!   buffer memory, programs the IOMMU domain, and exposes the thin
//!   doorbell syscall.
//! * [`libnvme`] — the *userspace driver library* with the paper's
//!   Table 1 API:
//!
//! | function | role |
//! |---|---|
//! | [`libnvme::NvmeQueue::nvme_open`] | configure, initialize and attach to a disk's queue pair |
//! | [`libnvme::NvmeQueue::nvme_read`] | craft + enqueue a READ for (namespace, offset, length, buffer) |
//! | [`libnvme::NvmeQueue::nvme_write`] | craft + enqueue a WRITE |
//! | [`libnvme::NvmeQueue::nvme_sqsync`] | doorbell ioctl: start processing pending commands |
//! | [`libnvme::NvmeQueue::nvme_consume_completions`] | consume completions (handles out-of-order), surface per-request results |
//!
//! [`baseline`] adds the two conventional storage paths the paper
//! compares against in Figs 8/9: blocking `pread(2)` through the
//! buffer cache, and `aio(4)` batched asynchronous I/O with
//! kqueue/interrupt completion.

pub mod baseline;
pub mod bufpool;
pub mod iommu;
pub mod kernel;
pub mod libnvme;

pub use bufpool::{BufId, BufPool};
pub use iommu::IommuDomain;
pub use kernel::{DiskId, DiskmapError, DiskmapKernel};
pub use libnvme::{CompletedIo, IoDesc, IoStatus, NvmeQueue};
