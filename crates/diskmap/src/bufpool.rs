//! Diskmap DMA buffer pool.
//!
//! All buffers are pre-allocated, non-pageable, and shared between
//! the NVMe hardware and the application (§3.1.2). Each buffer
//! descriptor carries the metadata the paper lists: a unique index,
//! the current length, and the physical address libnvme uses when
//! constructing commands.
//!
//! The free list is a **LIFO stack** on purpose: §4.1 argues that
//! strict LIFO recycling of DMA buffers minimizes the stack's working
//! set and maximizes DDIO efficacy (the most-recently-freed buffer is
//! the one most likely still resident in the LLC).

use dcn_mem::{PhysAlloc, PhysRegion};

/// Index of a diskmap buffer within its pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BufId(pub u32);

#[derive(Clone, Copy, Debug)]
struct BufDesc {
    region: PhysRegion,
    len: u64,
    in_use: bool,
}

/// Fixed-size pool of equal-sized DMA buffers.
pub struct BufPool {
    bufs: Vec<BufDesc>,
    free: Vec<u32>, // LIFO
    buf_size: u64,
}

impl BufPool {
    /// Pre-allocate `count` buffers of `buf_size` bytes from the
    /// simulated physical address space.
    #[must_use]
    pub fn new(count: u32, buf_size: u64, phys: &mut PhysAlloc) -> Self {
        let bufs: Vec<BufDesc> = (0..count)
            .map(|_| BufDesc {
                region: phys.alloc(buf_size),
                len: 0,
                in_use: false,
            })
            .collect();
        // LIFO: lowest index on top initially (pop order 0,1,2...).
        let free: Vec<u32> = (0..count).rev().collect();
        BufPool {
            bufs,
            free,
            buf_size,
        }
    }

    #[must_use]
    pub fn buf_size(&self) -> u64 {
        self.buf_size
    }
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.bufs.len() as u32
    }
    #[must_use]
    pub fn available(&self) -> u32 {
        self.free.len() as u32
    }

    /// Pop the most-recently-freed buffer (LIFO).
    pub fn alloc(&mut self) -> Option<BufId> {
        let idx = self.free.pop()?;
        let d = &mut self.bufs[idx as usize];
        debug_assert!(!d.in_use);
        d.in_use = true;
        d.len = 0;
        Some(BufId(idx))
    }

    /// Return a buffer to the pool.
    pub fn free(&mut self, id: BufId) {
        let d = &mut self.bufs[id.0 as usize];
        assert!(d.in_use, "double free of diskmap buffer {id:?}");
        d.in_use = false;
        self.free.push(id.0);
    }

    /// The buffer's whole physical region.
    #[must_use]
    pub fn region(&self, id: BufId) -> PhysRegion {
        self.bufs[id.0 as usize].region
    }

    /// Current valid-data length (set by completed reads).
    #[must_use]
    pub fn len(&self, id: BufId) -> u64 {
        self.bufs[id.0 as usize].len
    }

    pub fn set_len(&mut self, id: BufId, len: u64) {
        assert!(len <= self.buf_size);
        self.bufs[id.0 as usize].len = len;
    }

    /// All regions (for IOMMU domain programming at attach time).
    #[must_use]
    pub fn all_regions(&self) -> Vec<PhysRegion> {
        self.bufs.iter().map(|b| b.region).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_lifo_order() {
        let mut phys = PhysAlloc::new();
        let mut p = BufPool::new(4, 16384, &mut phys);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_ne!(a, b);
        p.free(a);
        p.free(b);
        // LIFO: b comes back first.
        assert_eq!(p.alloc().unwrap(), b);
        assert_eq!(p.alloc().unwrap(), a);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut phys = PhysAlloc::new();
        let mut p = BufPool::new(2, 4096, &mut phys);
        assert!(p.alloc().is_some());
        assert!(p.alloc().is_some());
        assert!(p.alloc().is_none());
        assert_eq!(p.available(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut phys = PhysAlloc::new();
        let mut p = BufPool::new(2, 4096, &mut phys);
        let a = p.alloc().unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    fn regions_are_disjoint_and_sized() {
        let mut phys = PhysAlloc::new();
        let p = BufPool::new(8, 16384, &mut phys);
        let regions = p.all_regions();
        for (i, r) in regions.iter().enumerate() {
            assert_eq!(r.len, 16384);
            for other in &regions[i + 1..] {
                assert!(r.end() <= other.addr.0 || other.end() <= r.addr.0);
            }
        }
    }

    #[test]
    fn len_tracking() {
        let mut phys = PhysAlloc::new();
        let mut p = BufPool::new(1, 16384, &mut phys);
        let a = p.alloc().unwrap();
        p.set_len(a, 300);
        assert_eq!(p.len(a), 300);
        p.free(a);
        let b = p.alloc().unwrap();
        assert_eq!(p.len(b), 0, "len resets on alloc");
    }
}
