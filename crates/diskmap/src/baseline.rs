//! Conventional storage paths: `pread(2)` and FreeBSD `aio(4)`.
//!
//! These are the baselines of the paper's Figs 8 and 9. Both go
//! through the in-kernel NVMe stack: interrupt-driven completion,
//! per-I/O kernel cost, and (for pread) a copyout from kernel buffer
//! to user buffer. They run against the same simulated devices as
//! diskmap, so every difference in the figures comes from the path,
//! not the hardware.

use crate::kernel::{DiskId, DiskmapKernel};
use dcn_mem::{CostParams, HostMem, MemSystem, PhysAlloc, PhysRegion};
use dcn_nvme::{NvmeCommand, Opcode, LBA_SIZE};
use dcn_simcore::Nanos;

fn prp_pages(buf: PhysRegion, len: u64) -> Vec<PhysRegion> {
    let mut prp = Vec::new();
    let mut off = 0;
    while off < len {
        let n = (len - off).min(4096);
        prp.push(buf.slice(off, n));
        off += n;
    }
    prp
}

/// Blocking positional read through the conventional stack.
///
/// Timeline modeled: syscall entry → kernel I/O setup → device
/// service → completion interrupt → kernel completion + copyout to
/// the user buffer → syscall return. The calling thread is blocked
/// throughout (this is why Fig 8's pread curve is latency-bound).
pub struct PreadFile {
    pub disk: DiskId,
    pub qid: u16,
    kbuf: PhysRegion,
    next_cid: u16,
}

/// Result of one blocking read.
#[derive(Clone, Copy, Debug)]
pub struct SyncReadResult {
    /// When the syscall returns (thread runnable again).
    pub done_at: Nanos,
    /// CPU cycles consumed (kernel work + copy; the blocked wait is
    /// not CPU time).
    pub cpu_cycles: u64,
}

impl PreadFile {
    pub fn open(disk: DiskId, qid: u16, phys: &mut PhysAlloc) -> Self {
        PreadFile {
            disk,
            qid,
            kbuf: phys.alloc(crate::libnvme::MDTS_BYTES),
            next_cid: 0,
        }
    }

    /// `pread(fd, user_buf, len, offset)` — blocking. Drives the
    /// device model forward internally until this I/O completes
    /// (nothing else can run on the calling thread anyway).
    #[allow(clippy::too_many_arguments)]
    pub fn pread(
        &mut self,
        kernel: &mut DiskmapKernel,
        now: Nanos,
        nsid: u32,
        offset: u64,
        len: u64,
        user_buf: PhysRegion,
        mem: &mut MemSystem,
        host: &mut HostMem,
        costs: &CostParams,
    ) -> SyncReadResult {
        assert!(len <= crate::libnvme::MDTS_BYTES && len.is_multiple_of(LBA_SIZE));
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        // Syscall + kernel setup happen before the command reaches
        // the device.
        let setup_cycles = costs.syscall_cycles + costs.kernel_io_cycles;
        let submit_at = now + Nanos::from_nanos(costs.cycles_to_ns(setup_cycles));
        let dev = kernel.disk(self.disk);
        let cmd = NvmeCommand {
            opcode: Opcode::Read,
            cid,
            nsid,
            slba: offset / LBA_SIZE,
            nlb: (len / LBA_SIZE) as u32,
            prp: prp_pages(self.kbuf, len),
        };
        assert!(dev.qpair(self.qid).sq_push(cmd), "pread never overlaps I/O");
        dev.ring_sq_doorbell(submit_at, self.qid);
        // Wait for the completion (and its interrupt).
        let mut done_at;
        loop {
            let t = kernel.disk(self.disk).poll_at().expect("I/O in flight");
            kernel.advance(t, mem, host);
            let entries = kernel.disk(self.disk).qpair(self.qid).cq_consume(1);
            if !entries.is_empty() {
                done_at = t;
                break;
            }
        }
        // Interrupt delivery + handler, completion processing, then
        // copyout kernel buffer → user buffer.
        done_at += Nanos::from_nanos(u64::from(costs.interrupt_latency_ns as u32));
        let copy = mem.cpu_read(done_at, self.kbuf.slice(0, len));
        let copy_w = mem.cpu_write(done_at, user_buf.slice(0, len.min(user_buf.len)));
        if host.resident_pages() > 0 {
            host.copy(self.kbuf.addr, user_buf.addr, len.min(user_buf.len));
        }
        let cpu = setup_cycles
            + costs.interrupt_cycles
            + (len as f64 * costs.memcpy_cycles_per_byte) as u64
            + copy.stall_cycles
            + copy_w.stall_cycles;
        let tail = costs.interrupt_cycles
            + (len as f64 * costs.memcpy_cycles_per_byte) as u64
            + copy.stall_cycles
            + copy_w.stall_cycles;
        done_at += Nanos::from_nanos(costs.cycles_to_ns(tail));
        SyncReadResult {
            done_at,
            cpu_cycles: cpu,
        }
    }
}

/// FreeBSD `aio(4)`-style asynchronous reads with kqueue completion.
///
/// Batched submission (one `lio_listio`-style syscall for many
/// requests); completions become visible to userspace only after the
/// device interrupt fires and a `kevent` call drains them. Per-I/O
/// kernel cost is higher than diskmap's but the data path is direct
/// (no copy — O_DIRECT semantics, as in the paper's comparison).
pub struct AioContext {
    pub disk: DiskId,
    pub qid: u16,
    next_cid: u16,
    inflight: std::collections::HashMap<u16, (u64, Nanos)>,
    /// Completions seen by the kernel but not yet delivered to
    /// userspace (kevent not called / interrupt not fired).
    kernel_done: Vec<(u64, Nanos, Nanos)>, // (user, submitted, hw done)
}

/// A completed aio request.
#[derive(Clone, Copy, Debug)]
pub struct AioCompletion {
    pub user: u64,
    pub submitted_at: Nanos,
    pub completed_at: Nanos,
}

impl AioContext {
    #[must_use]
    pub fn new(disk: DiskId, qid: u16) -> Self {
        AioContext {
            disk,
            qid,
            next_cid: 0,
            inflight: std::collections::HashMap::new(),
            kernel_done: Vec::new(),
        }
    }

    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.len() + self.kernel_done.len()
    }

    /// Submit a batch of reads with one syscall. Returns cycles to
    /// charge the submitting thread.
    pub fn submit_reads(
        &mut self,
        kernel: &mut DiskmapKernel,
        now: Nanos,
        reads: &[(u64, u32, u64, u64, PhysRegion)], // (user, nsid, offset, len, buf)
        costs: &CostParams,
    ) -> u64 {
        let dev = kernel.disk(self.disk);
        for &(user, nsid, offset, len, buf) in reads {
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            let cmd = NvmeCommand {
                opcode: Opcode::Read,
                cid,
                nsid,
                slba: offset / LBA_SIZE,
                nlb: (len / LBA_SIZE) as u32,
                prp: prp_pages(buf, len),
            };
            assert!(dev.qpair(self.qid).sq_push(cmd), "aio queue overflow");
            self.inflight.insert(cid, (user, now));
        }
        dev.ring_sq_doorbell(now, self.qid);
        costs.syscall_cycles + reads.len() as u64 * costs.aio_io_cycles
    }

    /// The device-side harvest: called when the completion interrupt
    /// fires; moves finished I/Os into the kernel-done set (kqueue).
    /// Charges interrupt cycles.
    pub fn on_interrupt(
        &mut self,
        kernel: &mut DiskmapKernel,
        now: Nanos,
        costs: &CostParams,
    ) -> u64 {
        let entries = kernel
            .disk(self.disk)
            .qpair(self.qid)
            .cq_consume(usize::MAX >> 1);
        let n = entries.len();
        for e in entries {
            let (user, submitted) = self
                .inflight
                .remove(&e.cid)
                .expect("aio completion for unknown cid");
            self.kernel_done.push((user, submitted, now));
        }
        if n > 0 {
            costs.interrupt_cycles + n as u64 * 400
        } else {
            costs.interrupt_cycles
        }
    }

    /// `kevent()`: deliver kernel-done completions to userspace.
    /// Returns the completions and cycles to charge (one syscall).
    pub fn kevent(&mut self, now: Nanos, costs: &CostParams) -> (Vec<AioCompletion>, u64) {
        let out: Vec<AioCompletion> = self
            .kernel_done
            .drain(..)
            .map(|(user, submitted_at, _hw)| AioCompletion {
                user,
                submitted_at,
                completed_at: now,
            })
            .collect();
        (out, costs.syscall_cycles)
    }
}

/// Convenience: the interrupt-then-kevent delivery latency for aio —
/// the earliest a userspace thread can observe a completion that the
/// hardware finished at `hw_done`.
#[must_use]
pub fn aio_visibility_delay(costs: &CostParams) -> Nanos {
    Nanos::from_nanos(costs.interrupt_latency_ns)
        + Nanos::from_nanos(costs.cycles_to_ns(costs.interrupt_cycles + costs.syscall_cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_mem::LlcConfig;
    use dcn_nvme::{NvmeConfig, NvmeDevice, SyntheticBacking};

    fn setup() -> (DiskmapKernel, MemSystem, HostMem, PhysAlloc, CostParams) {
        let disks = vec![NvmeDevice::new(
            NvmeConfig::default(),
            Box::new(SyntheticBacking::new(7)),
            100,
        )];
        (
            DiskmapKernel::new(disks),
            MemSystem::new(
                LlcConfig::xeon_e5_2667v3(),
                CostParams::default(),
                Nanos::from_millis(1),
            ),
            HostMem::new(),
            PhysAlloc::new(),
            CostParams::default(),
        )
    }

    #[test]
    fn pread_blocks_for_device_latency_plus_overheads() {
        let (mut k, mut m, mut h, mut pa, costs) = setup();
        let mut f = PreadFile::open(DiskId(0), 0, &mut pa);
        let ubuf = pa.alloc(16384);
        let r = f.pread(
            &mut k,
            Nanos::ZERO,
            1,
            0,
            16384,
            ubuf,
            &mut m,
            &mut h,
            &costs,
        );
        let us = r.done_at.as_micros_f64();
        // Must exceed raw device latency (~90us) by the kernel path.
        assert!(us > 95.0, "pread too fast: {us}us");
        assert!(us < 500.0, "pread too slow: {us}us");
        assert!(r.cpu_cycles > costs.syscall_cycles);
        // Data really arrived in the user buffer.
        let got = h.read_region(ubuf);
        let mut want = vec![0u8; 16384];
        SyntheticBacking::new(7).expected(1, 0, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn pread_serial_throughput_is_latency_bound() {
        let (mut k, mut m, mut h, mut pa, costs) = setup();
        let mut f = PreadFile::open(DiskId(0), 0, &mut pa);
        let ubuf = pa.alloc(16384);
        let mut now = Nanos::ZERO;
        let n = 20;
        for i in 0..n {
            let r = f.pread(
                &mut k,
                now,
                1,
                i * 16384,
                16384,
                ubuf,
                &mut m,
                &mut h,
                &costs,
            );
            assert!(r.done_at > now);
            now = r.done_at;
        }
        let gbps = (n * 16384) as f64 * 8.0 / now.as_secs_f64() / 1e9;
        assert!(
            gbps < 3.0,
            "pread must stay far below device limit, got {gbps}"
        );
    }

    #[test]
    fn aio_batch_completes_all() {
        let (mut k, mut m, mut h, mut pa, costs) = setup();
        let mut aio = AioContext::new(DiskId(0), 0);
        let reads: Vec<_> = (0..16u64)
            .map(|i| (i, 1u32, i * 16384, 16384u64, pa.alloc(16384)))
            .collect();
        let cyc = aio.submit_reads(&mut k, Nanos::ZERO, &reads, &costs);
        assert!(cyc >= costs.syscall_cycles + 16 * costs.aio_io_cycles);
        assert_eq!(aio.inflight(), 16);
        // Drive hardware, take interrupts, kevent.
        let mut got = Vec::new();
        while aio.inflight() > 0 {
            let Some(t) = k.poll_at() else { break };
            k.advance(t, &mut m, &mut h);
            aio.on_interrupt(&mut k, t + aio_visibility_delay(&costs), &costs);
            let (done, _) = aio.kevent(t + aio_visibility_delay(&costs), &costs);
            got.extend(done);
        }
        assert_eq!(got.len(), 16);
        let mut users: Vec<u64> = got.iter().map(|c| c.user).collect();
        users.sort_unstable();
        assert_eq!(users, (0..16u64).collect::<Vec<_>>());
        // Latency includes the visibility delay.
        for c in &got {
            assert!(c.completed_at > c.submitted_at);
        }
    }

    #[test]
    fn aio_latency_exceeds_diskmap_latency() {
        // The structural claim behind Fig 9: same hardware, but aio
        // completions are visible later than polled diskmap ones.
        let costs = CostParams::default();
        let delay = aio_visibility_delay(&costs);
        assert!(delay >= Nanos::from_micros(6), "delay {delay:?}");
    }
}
