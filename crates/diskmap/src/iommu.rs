//! IOMMU protection domain.
//!
//! Diskmap's memory safety story (§3.1.2): at attach time the kernel
//! maps exactly the pre-allocated queue and buffer memory into the
//! PCIe device's IOMMU page table. Because the set is static there
//! are no transient map/unmap operations on the datapath (which would
//! devastate performance — the paper cites vIOMMU and the
//! copy-vs-zero-copy IOMMU work). A DMA request that falls outside
//! the domain faults instead of corrupting memory.

use dcn_mem::PhysRegion;
use std::collections::HashSet;

/// A device's set of DMA-permitted pages.
#[derive(Default, Debug, Clone)]
pub struct IommuDomain {
    pages: HashSet<u64>,
    enabled: bool,
}

impl IommuDomain {
    /// An enforcing domain with nothing mapped.
    #[must_use]
    pub fn new() -> Self {
        IommuDomain {
            pages: HashSet::new(),
            enabled: true,
        }
    }

    /// A pass-through domain (the paper notes diskmap can run unsafely
    /// with direct physical addresses when the IOMMU is disabled; the
    /// API is unchanged either way).
    #[must_use]
    pub fn passthrough() -> Self {
        IommuDomain {
            pages: HashSet::new(),
            enabled: false,
        }
    }

    #[must_use]
    pub fn is_enforcing(&self) -> bool {
        self.enabled
    }

    /// Map a region (page-granular, as IOMMUs are).
    pub fn map(&mut self, region: PhysRegion) {
        for page in region.chunks() {
            self.pages.insert(page);
        }
    }

    /// Number of mapped pages (diagnostics).
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Would a DMA touching `region` be allowed?
    #[must_use]
    pub fn check(&self, region: PhysRegion) -> bool {
        if !self.enabled {
            return true;
        }
        region.chunks().all(|p| self.pages.contains(&p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_mem::{PhysAddr, CHUNK_SIZE};

    #[test]
    fn mapped_region_passes_unmapped_faults() {
        let mut d = IommuDomain::new();
        let r = PhysRegion::new(PhysAddr(CHUNK_SIZE * 10), CHUNK_SIZE * 2);
        d.map(r);
        assert!(d.check(r));
        assert!(d.check(r.slice(100, 1000)));
        // A region one page past the mapping faults.
        let stray = PhysRegion::new(PhysAddr(CHUNK_SIZE * 12), 64);
        assert!(!d.check(stray));
        // A region straddling the boundary faults too.
        let straddle = PhysRegion::new(PhysAddr(CHUNK_SIZE * 11 + 100), CHUNK_SIZE);
        assert!(!d.check(straddle));
    }

    #[test]
    fn passthrough_allows_everything() {
        let d = IommuDomain::passthrough();
        assert!(d.check(PhysRegion::new(PhysAddr(0xDEAD_0000), 4096)));
        assert!(!d.is_enforcing());
    }

    #[test]
    fn mapping_is_page_granular() {
        let mut d = IommuDomain::new();
        d.map(PhysRegion::new(PhysAddr(CHUNK_SIZE + 100), 8));
        // The whole containing page is mapped (hardware granularity).
        assert!(d.check(PhysRegion::new(PhysAddr(CHUNK_SIZE), CHUNK_SIZE)));
        assert_eq!(d.mapped_pages(), 1);
    }
}
