//! libnvme — the userspace NVMe driver library (paper Table 1).
//!
//! Non-blocking, event-driven: the application enqueues I/O
//! descriptors with [`NvmeQueue::nvme_read`]/[`NvmeQueue::nvme_write`],
//! kicks the device with one [`NvmeQueue::nvme_sqsync`] syscall
//! (batching any number of requests, §3.1.4), and later harvests
//! results with [`NvmeQueue::nvme_consume_completions`].
//!
//! A high-level request larger than the device's MDTS is split into
//! several NVMe commands; libnvme hides the resulting out-of-order
//! completion and surfaces exactly one completion per request, after
//! all of its commands have finished (§3.1.2).

use crate::bufpool::{BufId, BufPool};
use crate::kernel::{DiskId, DiskmapError, DiskmapKernel};
use dcn_mem::{PhysAlloc, PhysRegion};
use dcn_nvme::{NvmeCommand, NvmeStatus, Opcode, LBA_SIZE};
use dcn_simcore::Nanos;
use std::collections::HashMap;

/// Maximum data transfer size per NVMe command (MDTS). 128 KiB is the
/// P3700's advertised limit.
pub const MDTS_BYTES: u64 = 128 * 1024;

/// Per-request status surfaced to the application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoStatus {
    Ok,
    /// Any constituent command failed. The paper treats failed video
    /// I/O as irrecoverable for the connection; the application layer
    /// decides what to do.
    Failed,
}

/// A high-level I/O description block (`struct iodesc` in the paper).
#[derive(Clone, Copy, Debug)]
pub struct IoDesc {
    /// Application token returned in the completion (connection id,
    /// request id...).
    pub user: u64,
    /// Target buffer.
    pub buf: BufId,
    /// Namespace (disk-local).
    pub nsid: u32,
    /// Byte offset on the namespace (must be LBA-aligned).
    pub offset: u64,
    /// Transfer length in bytes (LBA multiple, ≤ buffer size).
    pub len: u64,
}

/// A completed high-level request.
#[derive(Clone, Copy, Debug)]
pub struct CompletedIo {
    pub user: u64,
    pub buf: BufId,
    pub len: u64,
    pub status: IoStatus,
    /// When the request was submitted (sqsync time) — latency
    /// measurements (Fig 9) read `completed_at - submitted_at`.
    pub submitted_at: Nanos,
    pub completed_at: Nanos,
}

struct Pending {
    desc: IoDesc,
    cmds_left: u32,
    failed: bool,
    submitted_at: Nanos,
}

/// Userspace handle to one attached (disk, queue pair): the I/O qpair
/// control block of `nvme_open()`.
pub struct NvmeQueue {
    pub disk: DiskId,
    pub qid: u16,
    token: usize,
    pool: BufPool,
    /// Commands staged by nvme_read/nvme_write, waiting for sqsync.
    staged: Vec<NvmeCommand>,
    /// Staged descriptors not yet stamped with a submit time.
    staged_descs: Vec<(u16, IoDesc, u32)>, // (first cid, desc, n_cmds)
    pending: HashMap<u16, u64>, // cid -> pending key
    pending_reqs: HashMap<u64, Pending>,
    next_cid: u16,
    next_req: u64,
    /// CPU cycles accrued by driver work since last take (submit +
    /// completion crafting); the event loop charges these to a core.
    accrued_cycles: u64,
}

impl NvmeQueue {
    /// `nvme_open()`: configure, initialize and attach to an NVMe
    /// disk's queue pair, allocating `buf_count × buf_size` of shared
    /// DMA buffer memory.
    pub fn nvme_open(
        kernel: &mut DiskmapKernel,
        disk: DiskId,
        qid: u16,
        buf_count: u32,
        buf_size: u64,
        phys: &mut PhysAlloc,
    ) -> Result<NvmeQueue, DiskmapError> {
        let (pool, token) = kernel.attach(disk, qid, buf_count, buf_size, phys, true)?;
        Ok(NvmeQueue {
            disk,
            qid,
            token,
            pool,
            staged: Vec::new(),
            staged_descs: Vec::new(),
            pending: HashMap::new(),
            pending_reqs: HashMap::new(),
            next_cid: 0,
            next_req: 0,
            accrued_cycles: 0,
        })
    }

    /// Access the buffer pool (alloc/free diskmap buffers).
    pub fn pool(&mut self) -> &mut BufPool {
        &mut self.pool
    }
    #[must_use]
    pub fn pool_ref(&self) -> &BufPool {
        &self.pool
    }

    /// Physical region backing `(buf, 0..len)` — what the application
    /// hands to the crypto and network layers (zero-copy).
    #[must_use]
    pub fn buf_region(&self, buf: BufId, len: u64) -> PhysRegion {
        self.pool_ref().region(buf).slice(0, len)
    }

    /// `nvme_read()`: craft and stage READ command(s) for the request.
    /// Splits at MDTS and builds a PRP-style page list per command.
    pub fn nvme_read(&mut self, desc: IoDesc, costs: &dcn_mem::CostParams) {
        self.stage(desc, Opcode::Read, costs);
    }

    /// `nvme_write()`: craft and stage WRITE command(s).
    pub fn nvme_write(&mut self, desc: IoDesc, costs: &dcn_mem::CostParams) {
        self.stage(desc, Opcode::Write, costs);
    }

    fn stage(&mut self, desc: IoDesc, opcode: Opcode, costs: &dcn_mem::CostParams) {
        assert!(desc.len > 0, "zero-length I/O");
        assert_eq!(desc.offset % LBA_SIZE, 0, "offset must be LBA-aligned");
        assert_eq!(desc.len % LBA_SIZE, 0, "length must be an LBA multiple");
        assert!(
            desc.len <= self.pool.buf_size(),
            "request exceeds buffer size"
        );
        let buf_region = self.pool.region(desc.buf);
        let n_cmds = desc.len.div_ceil(MDTS_BYTES) as u32;
        let first_cid = self.next_cid;
        let mut done = 0u64;
        while done < desc.len {
            let chunk = (desc.len - done).min(MDTS_BYTES);
            // PRP list: 4 KiB pages of the target buffer.
            let mut prp = Vec::new();
            let mut off = 0u64;
            while off < chunk {
                let n = (chunk - off).min(4096);
                prp.push(buf_region.slice(done + off, n));
                off += n;
            }
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            self.staged.push(NvmeCommand {
                opcode,
                cid,
                nsid: desc.nsid,
                slba: (desc.offset + done) / LBA_SIZE,
                nlb: (chunk / LBA_SIZE) as u32,
                prp,
            });
            self.accrued_cycles += costs.nvme_submit_cycles;
            done += chunk;
        }
        self.staged_descs.push((first_cid, desc, n_cmds));
    }

    /// Number of staged-but-not-synced commands.
    #[must_use]
    pub fn staged_count(&self) -> usize {
        self.staged.len()
    }

    /// In-flight high-level requests.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.pending_reqs.len()
    }

    /// `nvme_sqsync()`: one syscall that pushes all staged commands to
    /// the device and rings the doorbell. Returns the syscall +
    /// driver cycles to charge.
    pub fn nvme_sqsync(
        &mut self,
        kernel: &mut DiskmapKernel,
        now: Nanos,
        costs: &dcn_mem::CostParams,
    ) -> Result<u64, DiskmapError> {
        if self.staged.is_empty() {
            return Ok(0);
        }
        // Register pending bookkeeping first (completion may be polled
        // immediately after).
        for (first_cid, desc, n_cmds) in self.staged_descs.drain(..) {
            let key = self.next_req;
            self.next_req += 1;
            for i in 0..n_cmds {
                self.pending.insert(first_cid.wrapping_add(i as u16), key);
            }
            self.pending_reqs.insert(
                key,
                Pending {
                    desc,
                    cmds_left: n_cmds,
                    failed: false,
                    submitted_at: now,
                },
            );
        }
        match kernel.sqsync(self.token, now, &mut self.staged) {
            Ok(_) => {}
            // Backpressure (real SQ exhaustion or an injected reject)
            // is not an error to the library: the kernel admitted a
            // prefix and left the rest staged; the caller re-syncs
            // later. Pending bookkeeping above is keyed by CID and
            // already registered, so a retried sqsync never
            // double-registers (staged_descs is empty by then).
            Err(DiskmapError::QueueFull) => {}
            Err(e) => return Err(e),
        }
        let cycles = costs.syscall_cycles + self.accrued_cycles;
        self.accrued_cycles = 0;
        Ok(cycles)
    }

    /// `nvme_consume_completions()`: consume up to `max` *command*
    /// completions from the CQ (no syscall — the CQ is shared
    /// memory), aggregate out-of-order completions, and return the
    /// high-level requests that fully finished. Also returns cycles
    /// to charge.
    pub fn nvme_consume_completions(
        &mut self,
        kernel: &mut DiskmapKernel,
        now: Nanos,
        max: usize,
        costs: &dcn_mem::CostParams,
    ) -> Result<(Vec<CompletedIo>, u64), DiskmapError> {
        let mut out = Vec::new();
        let cycles = self.nvme_consume_completions_into(kernel, now, max, costs, &mut out)?;
        Ok((out, cycles))
    }

    /// Allocation-free variant of [`nvme_consume_completions`]:
    /// appends finished requests to a caller-owned scratch vector so
    /// steady-state sweeps reuse one buffer instead of allocating per
    /// poll.
    ///
    /// [`nvme_consume_completions`]: Self::nvme_consume_completions
    pub fn nvme_consume_completions_into(
        &mut self,
        kernel: &mut DiskmapKernel,
        now: Nanos,
        max: usize,
        costs: &dcn_mem::CostParams,
        out: &mut Vec<CompletedIo>,
    ) -> Result<u64, DiskmapError> {
        let entries = kernel.consume(self.token, max)?;
        let mut cycles = 0u64;
        for e in entries {
            cycles += costs.nvme_complete_cycles;
            let key = self
                .pending
                .remove(&e.cid)
                .expect("completion for unknown cid — device/driver bug");
            let p = self
                .pending_reqs
                .get_mut(&key)
                .expect("pending map out of sync");
            if e.status != NvmeStatus::Success {
                p.failed = true;
            }
            p.cmds_left -= 1;
            if p.cmds_left == 0 {
                let p = self.pending_reqs.remove(&key).expect("just seen");
                self.pool.set_len(p.desc.buf, p.desc.len);
                out.push(CompletedIo {
                    user: p.desc.user,
                    buf: p.desc.buf,
                    len: p.desc.len,
                    status: if p.failed {
                        IoStatus::Failed
                    } else {
                        IoStatus::Ok
                    },
                    submitted_at: p.submitted_at,
                    completed_at: now,
                });
            }
        }
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_mem::{CostParams, HostMem, LlcConfig, MemSystem};
    use dcn_nvme::{NvmeConfig, NvmeDevice, SyntheticBacking};

    fn setup() -> (DiskmapKernel, MemSystem, HostMem, PhysAlloc, CostParams) {
        setup_with(Box::new(SyntheticBacking::new(7)))
    }

    fn setup_with(
        backing: Box<dyn dcn_nvme::BlockBacking>,
    ) -> (DiskmapKernel, MemSystem, HostMem, PhysAlloc, CostParams) {
        let disks = vec![NvmeDevice::new(NvmeConfig::default(), backing, 100)];
        (
            DiskmapKernel::new(disks),
            MemSystem::new(
                LlcConfig::xeon_e5_2667v3(),
                CostParams::default(),
                Nanos::from_millis(1),
            ),
            HostMem::new(),
            PhysAlloc::new(),
            CostParams::default(),
        )
    }

    fn drive(k: &mut DiskmapKernel, m: &mut MemSystem, h: &mut HostMem) -> Nanos {
        let mut last = Nanos::ZERO;
        while let Some(t) = k.poll_at() {
            k.advance(t, m, h);
            last = t;
        }
        last
    }

    #[test]
    fn read_completes_with_data_and_latency() {
        let (mut k, mut m, mut h, mut pa, costs) = setup();
        let mut q = NvmeQueue::nvme_open(&mut k, DiskId(0), 0, 8, 16384, &mut pa).unwrap();
        let b = q.pool().alloc().unwrap();
        q.nvme_read(
            IoDesc {
                user: 42,
                buf: b,
                nsid: 1,
                offset: 512 * 100,
                len: 16384,
            },
            &costs,
        );
        assert_eq!(q.staged_count(), 1);
        let cyc = q.nvme_sqsync(&mut k, Nanos::ZERO, &costs).unwrap();
        assert!(cyc >= costs.syscall_cycles);
        let t = drive(&mut k, &mut m, &mut h);
        let (done, _) = q.nvme_consume_completions(&mut k, t, 64, &costs).unwrap();
        assert_eq!(done.len(), 1);
        let io = done[0];
        assert_eq!(io.user, 42);
        assert_eq!(io.status, IoStatus::Ok);
        assert_eq!(io.len, 16384);
        let lat_us = (io.completed_at - io.submitted_at).as_micros_f64();
        assert!((50.0..400.0).contains(&lat_us), "latency {lat_us}us");
        // Data is the synthetic content at that offset.
        let got = h.read_region(q.buf_region(b, 16384));
        let mut want = vec![0u8; 16384];
        SyntheticBacking::new(7).expected(1, 512 * 100, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn large_request_splits_and_aggregates() {
        let (mut k, mut m, mut h, mut pa, costs) = setup();
        let mut q = NvmeQueue::nvme_open(&mut k, DiskId(0), 0, 4, 512 * 1024, &mut pa).unwrap();
        let b = q.pool().alloc().unwrap();
        // 512 KiB = 4 commands at 128 KiB MDTS.
        q.nvme_read(
            IoDesc {
                user: 1,
                buf: b,
                nsid: 1,
                offset: 0,
                len: 512 * 1024,
            },
            &costs,
        );
        assert_eq!(q.staged_count(), 4);
        q.nvme_sqsync(&mut k, Nanos::ZERO, &costs).unwrap();
        // Consume in small bites: exactly one aggregated completion
        // emerges, only after all 4 commands are done.
        let mut all = Vec::new();
        while let Some(t) = k.poll_at() {
            k.advance(t, &mut m, &mut h);
            let (done, _) = q.nvme_consume_completions(&mut k, t, 1, &costs).unwrap();
            all.extend(done);
        }
        // Drain any remaining CQ entries.
        loop {
            let (done, _) = q
                .nvme_consume_completions(&mut k, Nanos::from_secs(1), 1, &costs)
                .unwrap();
            if done.is_empty() {
                break;
            }
            all.extend(done);
        }
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].len, 512 * 1024);
        assert_eq!(q.inflight(), 0);
    }

    #[test]
    fn many_outstanding_interleaved_requests() {
        let (mut k, mut m, mut h, mut pa, costs) = setup();
        let mut q = NvmeQueue::nvme_open(&mut k, DiskId(0), 0, 64, 16384, &mut pa).unwrap();
        let mut bufs = Vec::new();
        for i in 0..32u64 {
            let b = q.pool().alloc().unwrap();
            q.nvme_read(
                IoDesc {
                    user: i,
                    buf: b,
                    nsid: 1,
                    offset: i * 16384,
                    len: 16384,
                },
                &costs,
            );
            bufs.push(b);
        }
        q.nvme_sqsync(&mut k, Nanos::ZERO, &costs).unwrap();
        let mut users = Vec::new();
        while let Some(t) = k.poll_at() {
            k.advance(t, &mut m, &mut h);
            let (done, _) = q.nvme_consume_completions(&mut k, t, 64, &costs).unwrap();
            users.extend(done.iter().map(|d| d.user));
        }
        users.sort_unstable();
        assert_eq!(users, (0..32u64).collect::<Vec<_>>());
        // Free everything back (LIFO) — pool fully restored.
        for b in bufs {
            q.pool().free(b);
        }
        assert_eq!(q.pool_ref().available(), 64);
    }

    #[test]
    #[should_panic(expected = "LBA-aligned")]
    fn unaligned_offset_asserts() {
        let (mut k, _m, _h, mut pa, costs) = setup();
        let mut q = NvmeQueue::nvme_open(&mut k, DiskId(0), 0, 4, 16384, &mut pa).unwrap();
        let b = q.pool().alloc().unwrap();
        q.nvme_read(
            IoDesc {
                user: 0,
                buf: b,
                nsid: 1,
                offset: 100,
                len: 512,
            },
            &costs,
        );
    }

    #[test]
    fn write_path_stages_write_commands() {
        // Use a sparse backing so writes are legal.
        let (mut k, mut m, mut h, mut pa, costs) =
            setup_with(Box::new(dcn_nvme::SparseBacking::new(7)));
        let mut q = NvmeQueue::nvme_open(&mut k, DiskId(0), 0, 4, 16384, &mut pa).unwrap();
        let b = q.pool().alloc().unwrap();
        let payload = vec![0x5Au8; 4096];
        h.write(q.buf_region(b, 4096).addr, &payload);
        q.nvme_write(
            IoDesc {
                user: 9,
                buf: b,
                nsid: 1,
                offset: 0,
                len: 4096,
            },
            &costs,
        );
        q.nvme_sqsync(&mut k, Nanos::ZERO, &costs).unwrap();
        let t = drive(&mut k, &mut m, &mut h);
        let (done, _) = q.nvme_consume_completions(&mut k, t, 8, &costs).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, IoStatus::Ok);
        // Read it back through a fresh request.
        let b2 = q.pool().alloc().unwrap();
        q.nvme_read(
            IoDesc {
                user: 10,
                buf: b2,
                nsid: 1,
                offset: 0,
                len: 4096,
            },
            &costs,
        );
        q.nvme_sqsync(&mut k, t, &costs).unwrap();
        let t2 = drive(&mut k, &mut m, &mut h);
        let (done, _) = q.nvme_consume_completions(&mut k, t2, 8, &costs).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(h.read_region(q.buf_region(b2, 4096)), payload);
    }
}
